#!/usr/bin/env python3
"""Export a simulated page visit as a HAR 1.2-style JSON document.

The paper's raw data unit is the Chrome-HAR file; this example shows
that the simulated browser produces the same artifact, so existing
HAR tooling (waterfalls, analyzers) can consume simulation output.

Run:  python examples/export_har.py [output.har]
"""

import json
import random
import sys

from repro.browser import Browser, BrowserConfig
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "visit.har"
    universe = TopSitesGenerator(GeneratorConfig(n_sites=6)).generate(seed=4)
    page = universe.pages[5]

    loop = EventLoop()
    farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(), rng=random.Random(1))
    farm.warm_caches([page])
    browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(2))
    visit = browser.visit(page)

    document = visit.har.to_dict()
    with open(out_path, "w") as handle:
        json.dump(document, handle, indent=2)

    entries = document["log"]["entries"]
    print(f"wrote {out_path}: {len(entries)} entries, "
          f"onLoad {document['log']['pages'][0]['pageTimings']['onLoad']:.0f} ms")
    cdn = sum(1 for e in entries if e["_cdn"]["isCdn"])
    print(f"CDN entries: {cdn}/{len(entries)}; "
          f"protocols: {sorted({e['response']['httpVersion'] for e in entries})}")


if __name__ == "__main__":
    main()
