#!/usr/bin/env python3
"""The adaptive protocol advisor — the paper's 'Researchers' implication.

Section VII suggests an adaptive protocol-selection tool.  This example
runs the rule-based advisor distilled from the paper's takeaways over a
cohort of pages under different network conditions, then empirically
validates one recommendation by actually loading the page both ways.

Run:  python examples/protocol_advisor.py
"""

import random

from repro.browser import Browser, BrowserConfig
from repro.core.advisor import advise
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


def measure(universe, page, mode, loss=0.0, seed=1):
    loop = EventLoop()
    farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(loss_rate=loss),
                      rng=random.Random(seed))
    farm.warm_caches([page])
    browser = Browser(loop, farm, BrowserConfig(protocol_mode=mode),
                      rng=random.Random(seed + 1))
    return browser.visit(page).plt_ms


def main() -> None:
    universe = TopSitesGenerator(GeneratorConfig(n_sites=12)).generate(seed=21)

    print("Advisor recommendations across conditions:\n")
    conditions = [
        ("clean network, single page", ProbeNetProfile(), False),
        ("1% loss", ProbeNetProfile(loss_rate=0.01), False),
        ("consecutive browsing", ProbeNetProfile(), True),
    ]
    for label, network, browsing in conditions:
        h3_votes = 0
        for page in universe.pages:
            advice = advise(page, universe, network=network,
                            consecutive_browsing=browsing)
            h3_votes += advice.protocol == "h3"
        print(f"  {label:30s} -> H3 recommended for "
              f"{h3_votes}/{len(universe.pages)} pages")

    page = max(universe.pages, key=lambda p: len(p.cdn_resources))
    advice = advise(page, universe, network=ProbeNetProfile(loss_rate=0.01))
    print(f"\nDeep dive: {page.origin_host} under 1% loss -> {advice.protocol.upper()}"
          f" (score {advice.score:+.1f})")
    for reason in advice.reasons:
        print(f"  - {reason}")

    print("\nEmpirical check (mean of 3 seeds):")
    h2 = sum(measure(universe, page, "h2-only", loss=0.01, seed=s) for s in (1, 2, 3)) / 3
    h3 = sum(measure(universe, page, "h3-enabled", loss=0.01, seed=s) for s in (1, 2, 3)) / 3
    winner = "h3" if h3 < h2 else "h2"
    verdict = "advice confirmed" if winner == advice.protocol else (
        f"{winner.upper()} won this draw (loss is noisy; advice was "
        f"{advice.protocol.upper()})"
    )
    print(f"  H2 PLT {h2:.0f} ms vs H3-enabled PLT {h3:.0f} ms -> {verdict}")


if __name__ == "__main__":
    main()
