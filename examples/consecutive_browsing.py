#!/usr/bin/env python3
"""Consecutive browsing: shared CDN providers accelerate the next page.

Reproduces the paper's Section VI-D scenario (Takeaway 3) at demo
scale: a user browses a sequence of pages; connections are torn down
and caches cleared between pages, but TLS session tickets survive.
Pages that share giant CDN providers with earlier pages resume
connections — H3 at 0-RTT — and load faster than under H2.

Run:  python examples/consecutive_browsing.py
"""

from repro.core.sharing import giant_provider_count
from repro.measurement import ConsecutivePlan, execute
from repro.web import GeneratorConfig, TopSitesGenerator


def main() -> None:
    universe = TopSitesGenerator(GeneratorConfig(n_sites=12)).generate(seed=9)
    pages = list(universe.pages)
    print(f"Browsing {len(pages)} pages consecutively "
          "(tickets persist, connections/caches do not)\n")

    h2_run, h3_run = execute(ConsecutivePlan(
        universe=universe, pages=tuple(pages), seed=9
    ))

    header = f"{'page':34s} {'giants':>6s} {'resumed':>7s} {'H2 PLT':>8s} {'H3 PLT':>8s} {'reduction':>9s}"
    print(header)
    print("-" * len(header))
    for page, h2_visit, h3_visit in zip(pages, h2_run.visits, h3_run.visits):
        resumed = h3_visit.har.resumed_connection_count()
        reduction = h2_visit.plt_ms - h3_visit.plt_ms
        print(f"{page.origin_host:34s} {giant_provider_count(page):6d} "
              f"{resumed:7d} {h2_visit.plt_ms:7.0f}m {h3_visit.plt_ms:7.0f}m "
              f"{reduction:+8.0f}m")

    total_h2 = sum(v.plt_ms for v in h2_run.visits)
    total_h3 = sum(v.plt_ms for v in h3_run.visits)
    print(f"\nwhole walk: H2 {total_h2:.0f} ms vs H3 {total_h3:.0f} ms "
          f"({total_h2 - total_h3:+.0f} ms; first page resumes nothing, "
          "later pages ride earlier pages' tickets)")


if __name__ == "__main__":
    main()
