#!/usr/bin/env python3
"""Lossy networks: H3's stream multiplexing vs TCP head-of-line blocking.

Reproduces the paper's Section VI-E scenario (Takeaway 4) at demo
scale.  Two experiments:

1. A controlled two-stream transfer with one injected packet loss,
   showing the *mechanism*: on TCP the unrelated stream stalls behind
   the gap; on QUIC it sails through.
2. A full page load under 0 %, 0.5 % and 1 % ``tc netem``-style loss,
   showing the *effect*: the H2→H3 PLT reduction grows with loss.

Run:  python examples/lossy_network.py
"""

import random

from repro.events import EventLoop
from repro.measurement import CampaignConfig, CampaignPlan, execute
from repro.netsim import NetemProfile, NetworkPath, PacketKind
from repro.transport import QuicConnection, TcpConnection
from repro.web import GeneratorConfig, TopSitesGenerator


def mechanism_demo() -> None:
    print("1) Mechanism: one lost packet, two streams, same connection")
    for cls in (TcpConnection, QuicConnection):
        loop = EventLoop()
        path = NetworkPath(loop, NetemProfile(delay_ms=15.0, rate_mbps=None),
                           rng=random.Random(0))
        state = {"dropped": False}

        def drop_first_stream1_packet(pkt):
            if (not state["dropped"] and pkt.kind is PacketKind.DATA
                    and pkt.chunks and pkt.chunks[0].stream_id == 1):
                state["dropped"] = True
                return True
            return False

        path.downlink.drop_filter = drop_first_stream1_packet
        conn = cls(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        s1 = conn.request(400, 5000)  # suffers the loss
        s2 = conn.request(400, 5000)  # logically unrelated
        loop.run_until(lambda: s1.complete and s2.complete)
        print(f"   {cls.__name__:15s} lossy stream: {s1.t_complete - s1.opened_at:6.1f} ms,"
              f"  unrelated stream: {s2.t_complete - s2.opened_at:6.1f} ms")
    print("   -> TCP delays the unrelated stream (HoL); QUIC does not.\n")


def page_load_demo() -> None:
    print("2) Effect: page-level PLT reduction under increasing loss")
    universe = TopSitesGenerator(GeneratorConfig(n_sites=12)).generate(seed=3)
    pages = universe.pages
    for loss in (0.0, 0.005, 0.01):
        # Two repetitions per loss rate: loss realizations are noisy.
        reductions, h2_plts = [], []
        for seed in (3, 4):
            result = execute(CampaignPlan(
                universe=universe,
                sim=CampaignConfig(seed=seed, loss_rate=loss),
                pages=pages,
            ))
            reductions += [pv.plt_reduction_ms for pv in result.paired_visits]
            h2_plts += [pv.h2.plt_ms for pv in result.paired_visits]
        mean_reduction = sum(reductions) / len(reductions)
        mean_h2 = sum(h2_plts) / len(h2_plts)
        print(f"   loss={loss:.1%}: mean H2 PLT {mean_h2:7.0f} ms, "
              f"mean PLT reduction {mean_reduction:+7.1f} ms")
    print("   -> loss inflates PLTs and (on average, over enough pages) widens")
    print("      H3's advantage; run `repro-h3cdn --experiments fig9` at a")
    print("      larger scale for the paper's slope comparison.")


def main() -> None:
    mechanism_demo()
    page_load_demo()


if __name__ == "__main__":
    main()
