#!/usr/bin/env python3
"""Run the entire reproduction study through the one-stop API.

`H3CdnStudy` is the library's top-level entry point: configure the
scale once, then every table and figure of the paper is a method call.
This example runs a compact study and prints a digest of each result,
with bootstrap confidence intervals on the headline group means.

Run:  python examples/full_study.py        (about a minute)
"""

from repro.analysis.bootstrap import bootstrap_ci
from repro.core import H3CdnStudy, StudyConfig
from repro.core.groups import group_pages_by_h3_adoption


def main() -> None:
    study = H3CdnStudy(
        StudyConfig(n_sites=40, seed=7, max_loss_sweep_pages=16)
    )
    print(f"Study: {study.config.n_sites} sites, seed {study.config.seed}\n")

    table2 = study.table2()
    print(f"Table II : {table2.total_requests} requests; "
          f"CDN {table2.cdn_share:.1%} (paper 67.0%), "
          f"H3 {table2.h3_share:.1%} (paper 32.6%)")

    shares = {row.provider: row for row in study.fig2()[:2]}
    top = ", ".join(f"{name} {row.h3_fraction:.0%} H3" for name, row in shares.items())
    print(f"Fig. 2   : top providers: {top}")

    print(f"Fig. 3   : {study.fig3().ccdf(0.5):.1%} of pages majority-CDN (paper 75%)")
    print(f"Fig. 4   : {sum(1 for p in study.universe.pages if p.provider_count >= 2) / len(study.universe.pages):.1%} of pages use >=2 providers (paper 94.8%)")

    print("Fig. 6(a): PLT reduction by group, with 95% bootstrap CIs:")
    groups = group_pages_by_h3_adoption(study.campaign_result)
    for label, pairs in groups.items():
        ci = bootstrap_ci([pv.plt_reduction_ms for pv in pairs], seed=1)
        print(f"           {label:12s} {ci}")

    medians = {k: d.median for k, d in study.fig6b().items()}
    print(f"Fig. 6(b): medians conn={medians['connection']:+.2f} "
          f"wait={medians['wait']:+.2f} recv={medians['receive']:+.2f} ms "
          "(paper: +, -, ~0)")

    reuse = study.fig7a()
    print(f"Fig. 7   : reuse Low {reuse[0].mean_reused_h2:.0f} -> High "
          f"{reuse[-1].mean_reused_h2:.0f} per page; H2-H3 gap "
          f"{reuse[-1].mean_difference:+.1f} in High")

    resumed = study.fig8b()
    lo, hi = min(resumed), max(resumed)
    print(f"Fig. 8(b): resumed connections {resumed[lo]:.0f} @ {lo} providers "
          f"-> {resumed[hi]:.0f} @ {hi} providers")

    t3 = study.table3()
    print(f"Table III: C_H {t3.high.avg_shared_providers:.2f} providers / "
          f"{t3.high.avg_resumed_connections:.1f} resumed / "
          f"{t3.high.plt_reduction_ms:+.1f} ms vs "
          f"C_L {t3.low.avg_shared_providers:.2f} / "
          f"{t3.low.avg_resumed_connections:.1f} / {t3.low.plt_reduction_ms:+.1f} ms")

    print("Fig. 9   : slopes (ms per CDN resource):")
    for series in study.fig9():
        print(f"           {series.loss_rate:.1%} loss -> {series.slope:+.2f}")


if __name__ == "__main__":
    main()
