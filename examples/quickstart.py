#!/usr/bin/env python3
"""Quickstart: load one page over H2 and over H3 and compare.

This is the smallest end-to-end tour of the library:

1. generate a calibrated synthetic top-site universe,
2. stand up a server farm (edges + origins) for one probe,
3. visit a page with an H2-only browser and an H3-enabled browser,
4. inspect the HAR entries and the PLT reduction.

Run:  python examples/quickstart.py
"""

import random

from repro.browser import Browser, BrowserConfig
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


def main() -> None:
    # A small universe is enough for a demo; the paper's scale is 325.
    universe = TopSitesGenerator(GeneratorConfig(n_sites=10)).generate(seed=42)
    page = universe.pages[0]  # youtube.com: fully H3-capable
    print(f"Visiting {page.url}: {page.total_requests} requests, "
          f"{page.cdn_fraction:.0%} CDN, providers={sorted(page.providers)}")

    visits = {}
    for mode in ("h2-only", "h3-enabled"):
        # Each protocol gets its own browser instance (the paper uses
        # separate Chrome user-data directories) on a fresh farm.
        loop = EventLoop()
        farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(),
                          rng=random.Random(1))
        farm.warm_caches([page])  # popular objects already at the edges
        browser = Browser(loop, farm, BrowserConfig(protocol_mode=mode),
                          rng=random.Random(2))
        visits[mode] = browser.visit(page)

    for mode, visit in visits.items():
        protocols = {}
        for entry in visit.entries:
            protocols[entry.protocol] = protocols.get(entry.protocol, 0) + 1
        print(f"\n[{mode}] PLT = {visit.plt_ms:.0f} ms, protocols: {protocols}")
        print(f"  reused connections: {visit.har.reused_connection_count()}")
        slowest = max(visit.entries, key=lambda e: e.time_ms)
        t = slowest.timings
        print(f"  slowest entry: {slowest.url.split('/')[-1]} "
              f"({slowest.protocol}) connect={t.connect:.0f} wait={t.wait:.0f} "
              f"receive={t.receive:.0f} ms")

    reduction = visits["h2-only"].plt_ms - visits["h3-enabled"].plt_ms
    print(f"\nPLT reduction (PLT_H2 - PLT_H3): {reduction:.0f} ms "
          f"({'H3 wins' if reduction > 0 else 'H2 wins'})")


if __name__ == "__main__":
    main()
