"""Tests for the CDN substrate: providers, edges, caches, classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn import (
    GIANT_PROVIDERS,
    DictClassifier,
    EdgeServer,
    LruCache,
    OriginServer,
    classify_response,
    default_providers,
    get_provider,
)


class TestProviderRegistry:
    def test_market_shares_sum_to_one(self):
        total = sum(p.market_share for p in default_providers())
        assert total == pytest.approx(1.0)

    def test_the_paper_six_giants_present(self):
        assert set(GIANT_PROVIDERS) == {
            "amazon", "akamai", "cloudflare", "fastly", "google", "microsoft",
        }

    def test_table1_release_years(self):
        """The paper's Table I release years, verbatim."""
        expected = {
            "cloudflare": 2019,
            "google": 2021,
            "fastly": 2021,
            "quic_cloud": 2021,
            "amazon": 2022,
            "meta": 2022,
            "akamai": 2023,
        }
        for name, year in expected.items():
            assert get_provider(name).h3_release_year == year

    def test_google_has_highest_h3_adoption_among_giants(self):
        """'Google's CDN services have almost entirely shifted towards
        H3 access' (paper Section IV-B)."""
        google = get_provider("google")
        for name in GIANT_PROVIDERS:
            if name != "google":
                assert get_provider(name).h3_adoption < google.h3_adoption
        assert google.h3_adoption >= 0.85

    def test_cloudflare_h3_comparable_to_h2(self):
        """'its proportions of H3 and H2 are comparable' (Section IV-B).

        ``h3_adoption`` is *host-level*; the generator weights traffic
        towards H3-capable hosts (2.5×), so the request-level share is
        ``2.5p / (2.5p + (1-p))`` — comparable to H2 means the host
        parameter sits lower, around 0.25–0.45.
        """
        p = get_provider("cloudflare").h3_adoption
        request_level = 2.5 * p / (2.5 * p + (1 - p))
        assert 0.35 <= request_level <= 0.60

    def test_expected_h3_share_of_cdn_requests(self):
        """Calibration: sum(share*adoption) ~ 38.4% (9280/24153 in Table II)."""
        expected = sum(p.market_share * p.h3_adoption for p in default_providers())
        assert 0.33 <= expected <= 0.44

    def test_fifty_eight_shared_domains(self):
        """The paper's case study extracts 58 cross-page domains."""
        domains = [d for p in default_providers() for d in p.shared_domains]
        assert len(domains) == 58
        assert len(set(domains)) == 58  # no duplicates across providers

    def test_unknown_provider_raises(self):
        with pytest.raises(KeyError, match="unknown CDN provider"):
            get_provider("does-not-exist")

    def test_lookup_is_case_insensitive(self):
        assert get_provider("GOOGLE").name == "google"


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache(capacity_bytes=1000)
        assert not cache.lookup("a")
        cache.insert("a", 100)
        assert cache.lookup("a")
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = LruCache(capacity_bytes=250)
        cache.insert("a", 100)
        cache.insert("b", 100)
        cache.insert("c", 100)  # evicts "a"
        assert not cache.lookup("a")
        assert cache.lookup("b") and cache.lookup("c")
        assert cache.evictions == 1

    def test_lru_order_respects_recency(self):
        cache = LruCache(capacity_bytes=250)
        cache.insert("a", 100)
        cache.insert("b", 100)
        cache.lookup("a")  # touch "a" so "b" is now LRU
        cache.insert("c", 100)
        assert cache.lookup("a")
        assert not cache.lookup("b")

    def test_reinsert_updates_size(self):
        cache = LruCache(capacity_bytes=300)
        cache.insert("a", 100)
        cache.insert("a", 200)
        assert cache.used_bytes == 200
        assert len(cache) == 1

    def test_oversized_object_not_cached(self):
        cache = LruCache(capacity_bytes=100)
        cache.insert("huge", 500)
        assert "huge" not in cache
        assert cache.used_bytes == 0

    def test_oversized_insert_leaves_cache_intact(self):
        """Regression: an object that can never fit must be rejected
        without flushing everything else out on the way."""
        cache = LruCache(capacity_bytes=250)
        cache.insert("a", 100)
        cache.insert("b", 100)
        cache.insert("huge", 500)
        assert "huge" not in cache
        assert "a" in cache and "b" in cache
        assert cache.used_bytes == 200
        assert cache.evictions == 0

    def test_reinsert_oversized_drops_old_entry_cleanly(self):
        """A cached object re-inserted at an uncacheable size is simply
        dropped; the byte accounting must follow."""
        cache = LruCache(capacity_bytes=250)
        cache.insert("a", 100)
        cache.insert("b", 100)
        cache.insert("a", 500)
        assert "a" not in cache
        assert "b" in cache
        assert cache.used_bytes == 100
        assert cache.evictions == 0

    def test_reinsert_shrink_frees_bytes(self):
        cache = LruCache(capacity_bytes=300)
        cache.insert("a", 200)
        cache.insert("a", 50)
        assert cache.used_bytes == 50
        cache.insert("b", 250)  # fits exactly because "a" shrank
        assert "a" in cache and "b" in cache
        assert cache.evictions == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LruCache(capacity_bytes=0)
        cache = LruCache(100)
        with pytest.raises(ValueError):
            cache.insert("x", 0)

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(min_value=1, max_value=60)),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_used_bytes_never_exceeds_capacity(self, ops):
        cache = LruCache(capacity_bytes=100)
        for key, size in ops:
            cache.insert(key, size)
            assert cache.used_bytes <= 100


class TestEdgeServer:
    def make_edge(self, **kwargs):
        return EdgeServer("cdnjs.cloudflare.com", get_provider("cloudflare"), **kwargs)

    def test_cold_request_pays_origin_fetch(self):
        edge = self.make_edge(base_think_ms=8.0, origin_fetch_ms=60.0)
        decision = edge.serve("res1", 10_000, "h2")
        assert not decision.cache_hit
        assert decision.think_ms == pytest.approx(68.0)

    def test_second_request_is_a_hit(self):
        edge = self.make_edge(base_think_ms=8.0, origin_fetch_ms=60.0)
        edge.serve("res1", 10_000, "h2")
        decision = edge.serve("res1", 10_000, "h2")
        assert decision.cache_hit
        assert decision.think_ms == pytest.approx(8.0)

    def test_h3_adds_compute_overhead(self):
        edge = self.make_edge(base_think_ms=8.0, h3_think_overhead_ms=4.0)
        edge.warm("res1", 10_000)
        h2 = edge.serve("res1", 10_000, "h2")
        h3 = edge.serve("res1", 10_000, "h3")
        assert h3.think_ms - h2.think_ms == pytest.approx(4.0)

    def test_h3_on_unsupported_edge_rejected(self):
        edge = self.make_edge(supports_h3=False)
        with pytest.raises(ValueError, match="does not support H3"):
            edge.serve("res1", 1000, "h3")

    def test_headers_identify_provider(self):
        edge = self.make_edge()
        decision = edge.serve("res1", 1000, "h2")
        assert decision.headers["server"] == "cloudflare"
        assert decision.headers["x-cache"] == "MISS"

    def test_warm_preseeds_cache(self):
        edge = self.make_edge()
        edge.warm("res1", 1000)
        assert edge.serve("res1", 1000, "h2").cache_hit


class TestOriginServer:
    def test_h1_only_origin_rejects_h2(self):
        origin = OriginServer("old.example.com", supports_h2=False)
        with pytest.raises(ValueError, match="HTTP/1.x only"):
            origin.serve("res", 1000, "h2")

    def test_h3_origin_serves_h3(self):
        origin = OriginServer("modern.example.com", supports_h3=True)
        decision = origin.serve("res", 1000, "h3")
        assert decision.protocol == "h3"

    def test_h3_only_origin_is_invalid(self):
        with pytest.raises(ValueError):
            OriginServer("weird.example.com", supports_h2=False, supports_h3=True)

    def test_origin_has_no_provider(self):
        origin = OriginServer("www.example.com")
        assert origin.provider is None
        assert origin.kind == "origin"


class TestClassifier:
    def test_classifies_by_server_header(self):
        result = classify_response("random-customer-host.example", {"Server": "cloudflare"})
        assert result.is_cdn
        assert result.provider_name == "cloudflare"
        assert result.matched_by == "header"

    def test_classifies_by_via_header(self):
        result = classify_response("images.shop.example", {"via": "1.1 varnish (Fastly)"})
        assert result.provider_name == "fastly"

    def test_classifies_by_shared_domain(self):
        result = classify_response("fonts.gstatic.com")
        assert result.is_cdn
        assert result.provider_name == "google"
        assert result.matched_by == "domain"

    def test_classifies_by_domain_pattern(self):
        result = classify_response("d111111abcdef8.cloudfront.net")
        assert result.provider_name == "amazon"
        assert result.matched_by == "pattern"

    def test_unknown_host_is_non_cdn(self):
        result = classify_response("www.myblog.example", {"server": "nginx"})
        assert not result.is_cdn
        assert result.provider_name is None

    def test_all_registry_shared_domains_classify_to_their_provider(self):
        """Round trip: every shared domain must classify back to its owner."""
        for provider in default_providers():
            for domain in provider.shared_domains:
                result = classify_response(domain)
                assert result.is_cdn, domain
                assert result.provider_name == provider.name, domain

    def test_edge_headers_classify_to_their_provider(self):
        """Round trip via headers, as LocEdge does with live traffic."""
        for provider in default_providers():
            edge = EdgeServer("edge.example", provider)
            decision = edge.serve("r", 1000, "h2")
            result = classify_response("edge.example", decision.headers)
            assert result.provider_name == provider.name

    def test_header_lookup_case_insensitive(self):
        result = classify_response("x.example", {"SERVER": "CloudFlare"})
        assert result.provider_name == "cloudflare"

    def test_mixed_case_via_header_and_host(self):
        result = classify_response(
            "Images.Shop.EXAMPLE", {"VIA": "1.1 Varnish (Fastly)"}
        )
        assert result.provider_name == "fastly"
        assert result.matched_by == "header"

    def test_header_wins_over_colliding_domain_pattern(self):
        """A customer CNAME can carry another provider's name in its
        hostname; the header fingerprint is the more reliable signal
        and must win."""
        result = classify_response(
            "assets.cloudfront.net", {"server": "cloudflare"}
        )
        assert result.provider_name == "cloudflare"
        assert result.matched_by == "header"

    def test_pattern_matches_mid_label_substring(self):
        """``classify_response`` patterns are plain substrings — a
        hostname merely *containing* a provider domain matches.  That
        permissiveness is exactly what :class:`DictClassifier`'s
        label-boundary matching tightens up (see TestDictClassifier)."""
        result = classify_response("evil-fastly.net.attacker.example")
        assert result.is_cdn
        assert result.provider_name == "fastly"
        assert result.matched_by == "pattern"


class TestDictClassifier:
    def test_matches_on_label_boundaries(self):
        verdict = DictClassifier().classify("cdn.fastly.net")
        assert verdict.is_cdn
        assert verdict.provider_name == "fastly"
        assert verdict.matched_by == "dict"

    def test_rejects_mid_label_substrings(self):
        """``myfastly.network.example`` contains the string
        ``fastly.net`` but no suffix of its label sequence equals it."""
        assert not DictClassifier().classify("myfastly.network.example").is_cdn

    def test_deep_subdomains_still_match(self):
        verdict = DictClassifier().classify("a.b.c.cloudfront.net")
        assert verdict.provider_name == "amazon"

    def test_case_and_trailing_dot_insensitive(self):
        verdict = DictClassifier().classify("Fonts.GStatic.COM.")
        assert verdict.provider_name == "google"

    def test_bare_tld_never_matches(self):
        assert not DictClassifier().classify("net").is_cdn
        assert not DictClassifier().classify("example.unknown-host.test").is_cdn

    def test_custom_table(self):
        classifier = DictClassifier({"my-cdn.example": "mycdn"})
        assert classifier.classify("edge1.my-cdn.example").provider_name == "mycdn"
        assert not classifier.classify("cdn.fastly.net").is_cdn

    def test_knows_nothing_of_headers(self):
        """The realism gap the manifest's disagreement rate measures: a
        customer-owned hostname whose only CDN signal is the response
        headers is invisible to the dictionary."""
        host = "www.customer-shop.example"
        header_verdict = classify_response(host, {"server": "AkamaiGHost"})
        assert header_verdict.is_cdn
        assert not DictClassifier().classify(host).is_cdn
