"""Tests for the HTTP connection pool: reuse, resumption, H1 queueing."""

import random

import pytest

from repro.cdn import EdgeServer, OriginServer, get_provider
from repro.events import EventLoop
from repro.http import ConnectionPool, HttpProtocol
from repro.netsim import NetemProfile, NetworkPath
from repro.tls import SessionTicketCache

RTT = 30.0


@pytest.fixture()
def loop():
    return EventLoop()


def make_path(loop):
    return NetworkPath(loop, NetemProfile(delay_ms=RTT / 2, rate_mbps=None),
                       rng=random.Random(0))


def make_edge(hostname="cdnjs.cloudflare.com", **kwargs):
    kwargs.setdefault("base_think_ms", 10.0)
    kwargs.setdefault("origin_fetch_ms", 50.0)
    # Deterministic resumption in unit tests (the default 0.75 models
    # ticket-key rotation across a load-balanced fleet).
    kwargs.setdefault("resumption_rate", 1.0)
    return EdgeServer(hostname, get_provider("cloudflare"), **kwargs)


def fetch_all(pool, loop, server, path, protocol, n, response_bytes=5000):
    records = []
    for i in range(n):
        pool.fetch(
            server=server,
            path=path,
            protocol=protocol,
            url=f"https://{server.hostname}/r{i}",
            request_bytes=400,
            response_bytes=response_bytes,
            on_complete=records.append,
        )
    loop.run_until(lambda: len(records) == n)
    return records


class TestMultiplexedReuse:
    def test_single_connection_for_many_requests(self, loop):
        pool = ConnectionPool(loop)
        server, path = make_edge(), make_path(loop)
        records = fetch_all(pool, loop, server, path, HttpProtocol.H2, 5)
        assert pool.stats.connections_created == 1
        assert pool.stats.reused_requests == 4
        openers = [r for r in records if not r.reused]
        assert len(openers) == 1
        assert openers[0].timing.connect > 0

    def test_reused_requests_have_zero_connect(self, loop):
        """The paper's reuse criterion: connect time == 0."""
        pool = ConnectionPool(loop)
        records = fetch_all(pool, loop, make_edge(), make_path(loop), HttpProtocol.H2, 4)
        reused = [r for r in records if r.reused]
        assert len(reused) == 3
        for record in reused:
            assert record.timing.connect == 0.0

    def test_h2_and_h3_use_separate_connections(self, loop):
        pool = ConnectionPool(loop)
        server, path = make_edge(), make_path(loop)
        fetch_all(pool, loop, server, path, HttpProtocol.H2, 2)
        fetch_all(pool, loop, server, path, HttpProtocol.H3, 2)
        assert pool.stats.connections_created == 2

    def test_h3_connect_faster_than_h2(self, loop):
        # Separate pools with separate ticket caches: both handshakes
        # are full (a shared cache would legitimately let H3 resume).
        server, path = make_edge(), make_path(loop)
        pool_h2 = ConnectionPool(loop, session_cache=SessionTicketCache())
        pool_h3 = ConnectionPool(loop, session_cache=SessionTicketCache())
        (h2_opener,) = fetch_all(pool_h2, loop, server, path, HttpProtocol.H2, 1)
        (h3_opener,) = fetch_all(pool_h3, loop, server, path, HttpProtocol.H3, 1)
        # TLS1.3: H2 pays 2 RTT, H3 pays 1 RTT.
        assert h2_opener.timing.connect == pytest.approx(2 * RTT)
        assert h3_opener.timing.connect == pytest.approx(RTT)

    def test_requests_during_handshake_wait_and_report_blocked(self, loop):
        pool = ConnectionPool(loop)
        server, path = make_edge(), make_path(loop)
        records = []
        for i in range(3):
            pool.fetch(server, path, HttpProtocol.H2, f"https://x/r{i}", 400, 2000,
                       records.append)
        loop.run_until(lambda: len(records) == 3)
        followers = [r for r in records if r.reused]
        assert len(followers) == 2
        for record in followers:
            assert record.timing.blocked == pytest.approx(2 * RTT)  # handshake wait


class TestSessionResumption:
    def test_ticket_stored_after_handshake(self, loop):
        cache = SessionTicketCache()
        pool = ConnectionPool(loop, session_cache=cache)
        server, path = make_edge(), make_path(loop)
        fetch_all(pool, loop, server, path, HttpProtocol.H3, 1)
        assert server.hostname in cache

    def test_second_pool_resumes_with_zero_rtt(self, loop):
        """Fresh pool (new page), same ticket cache: H3 resumes 0-RTT."""
        cache = SessionTicketCache()
        server, path = make_edge(), make_path(loop)
        pool1 = ConnectionPool(loop, session_cache=cache)
        fetch_all(pool1, loop, server, path, HttpProtocol.H3, 1)
        pool1.close()
        pool2 = ConnectionPool(loop, session_cache=cache)
        records = fetch_all(pool2, loop, server, path, HttpProtocol.H3, 1)
        assert records[0].resumed
        assert records[0].timing.connect == 0.0
        assert pool2.stats.resumed_connections == 1
        assert pool2.stats.zero_rtt_connections == 1

    def test_h2_resumption_saves_no_round_trip(self, loop):
        """Resumed H2 still pays TCP + TLS1.3 round trips (browsers
        send no TCP early data); only H3 resumption removes latency —
        the paper's Section VI-D asymmetry."""
        cache = SessionTicketCache()
        server, path = make_edge(), make_path(loop)
        pool1 = ConnectionPool(loop, session_cache=cache)
        fetch_all(pool1, loop, server, path, HttpProtocol.H2, 1)
        pool1.close()
        pool2 = ConnectionPool(loop, session_cache=cache)
        records = fetch_all(pool2, loop, server, path, HttpProtocol.H2, 1)
        assert records[0].resumed
        assert records[0].timing.connect == pytest.approx(2 * RTT)

    def test_tickets_disabled_never_resumes(self, loop):
        cache = SessionTicketCache()
        server, path = make_edge(), make_path(loop)
        pool1 = ConnectionPool(loop, session_cache=cache, use_session_tickets=False)
        fetch_all(pool1, loop, server, path, HttpProtocol.H3, 1)
        assert server.hostname not in cache
        pool2 = ConnectionPool(loop, session_cache=cache, use_session_tickets=False)
        records = fetch_all(pool2, loop, server, path, HttpProtocol.H3, 1)
        assert not records[0].resumed

    def test_server_without_tickets_never_stores(self, loop):
        cache = SessionTicketCache()
        server = make_edge(issues_tickets=False)
        pool = ConnectionPool(loop, session_cache=cache)
        fetch_all(pool, loop, server, make_path(loop), HttpProtocol.H3, 1)
        assert server.hostname not in cache


class TestH1Semantics:
    def test_h1_opens_parallel_connections_up_to_six(self, loop):
        origin = OriginServer("old.example.com", supports_h2=False, base_think_ms=10.0)
        pool = ConnectionPool(loop)
        path = make_path(loop)
        fetch_all(pool, loop, origin, path, HttpProtocol.H1, 8)
        assert pool.stats.connections_created == 6
        assert pool.stats.reused_requests == 2

    def test_h1_serializes_per_connection(self, loop):
        origin = OriginServer("old.example.com", supports_h2=False, base_think_ms=10.0)
        pool = ConnectionPool(loop)
        path = make_path(loop)
        records = fetch_all(pool, loop, origin, path, HttpProtocol.H1, 7)
        # The 7th request had to wait for one of the six connections.
        queued = [r for r in records if r.reused]
        assert len(queued) == 1
        assert queued[0].timing.blocked > 0

    def test_h1_reuses_idle_connection(self, loop):
        origin = OriginServer("old.example.com", supports_h2=False, base_think_ms=5.0)
        pool = ConnectionPool(loop)
        path = make_path(loop)
        fetch_all(pool, loop, origin, path, HttpProtocol.H1, 1)
        records = fetch_all(pool, loop, origin, path, HttpProtocol.H1, 1)
        assert pool.stats.connections_created == 1
        assert records[0].reused


class TestPoolLifecycle:
    def test_cache_hit_flag_propagates(self, loop):
        server, path = make_edge(), make_path(loop)
        server.warm("https://cdnjs.cloudflare.com/r0", 5000)
        pool = ConnectionPool(loop)
        records = fetch_all(pool, loop, server, path, HttpProtocol.H2, 1)
        assert records[0].cache_hit

    def test_wait_time_includes_think(self, loop):
        server = make_edge(base_think_ms=25.0, tls_setup_cpu_ms=0.0)
        server.warm("https://cdnjs.cloudflare.com/r0", 5000)
        pool = ConnectionPool(loop)
        records = fetch_all(pool, loop, server, make_path(loop), HttpProtocol.H2, 1)
        assert records[0].timing.wait == pytest.approx(RTT + 25.0)

    def test_opener_wait_includes_tls_setup_cpu(self, loop):
        server = make_edge(base_think_ms=25.0, tls_setup_cpu_ms=9.0)
        server.warm("https://cdnjs.cloudflare.com/r0", 5000)
        server.warm("https://cdnjs.cloudflare.com/r1", 5000)
        pool = ConnectionPool(loop)
        records = fetch_all(pool, loop, server, make_path(loop), HttpProtocol.H2, 2)
        opener = [r for r in records if not r.reused][0]
        follower = [r for r in records if r.reused][0]
        assert opener.timing.wait == pytest.approx(RTT + 25.0 + 9.0)
        assert follower.timing.wait == pytest.approx(RTT + 25.0)

    def test_closed_pool_rejects_fetches(self, loop):
        pool = ConnectionPool(loop)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.fetch(make_edge(), make_path(loop), HttpProtocol.H2,
                       "https://x/", 400, 100, lambda r: None)

    def test_stats_merge(self, loop):
        from repro.http import PoolStats

        a = PoolStats(requests=2, connections_created=1)
        b = PoolStats(requests=3, reused_requests=2)
        merged = a.merged_with(b)
        assert merged.requests == 5
        assert merged.connections_created == 1
        assert merged.reused_requests == 2
