"""Data-transfer behaviour: reliability, pacing, loss recovery, HoL.

The decisive test here is `TestHeadOfLineBlocking`: with an identical
single-packet loss injected into a two-stream transfer, the *unrelated*
stream must stall on TCP but sail through on QUIC.  This is the causal
mechanism behind the paper's Fig. 9.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventLoop
from repro.netsim import NetemProfile, NetworkPath, PacketKind
from repro.transport import QuicConnection, TcpConnection, TransportConfig

RTT = 30.0


def make_path(loop, loss=0.0, seed=0, rate_mbps=None):
    profile = NetemProfile(delay_ms=RTT / 2, loss_rate=loss, rate_mbps=rate_mbps)
    return NetworkPath(loop, profile, rng=random.Random(seed))


def connect(conn, loop):
    done = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    return done[0]


def fetch(conn, loop, response_bytes, request_bytes=400, think_ms=0.0):
    stream = conn.request(request_bytes, response_bytes, think_ms=think_ms)
    loop.run_until(lambda: stream.complete)
    return stream


class TestBasicTransfer:
    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_small_response_delivered(self, conn_cls):
        loop = EventLoop()
        conn = conn_cls(loop, make_path(loop))
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=1000)
        assert stream.received == 1000
        assert stream.t_first_byte is not None
        assert stream.t_complete is not None

    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_wait_time_is_rtt_plus_think(self, conn_cls):
        loop = EventLoop()
        conn = conn_cls(loop, make_path(loop))
        connect(conn, loop)
        think = 20.0
        start = loop.now
        stream = fetch(conn, loop, response_bytes=1000, think_ms=think)
        wait = stream.t_first_byte - start
        assert wait == pytest.approx(RTT + think)

    def test_multi_packet_response(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=50_000)
        assert stream.received == 50_000
        assert conn.stats.data_packets_sent >= 35  # ceil(50000/1460)

    def test_large_transfer_needs_multiple_windows(self):
        """200 KB exceeds the 10-packet initial window, so the transfer
        must take multiple round trips while cwnd grows."""
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        connect(conn, loop)
        start = loop.now
        stream = fetch(conn, loop, response_bytes=200_000)
        duration = stream.t_complete - start
        assert duration > 2 * RTT  # request RTT + at least one more window

    def test_bandwidth_bound_transfer(self):
        """At 8 Mbps, 100 KB of payload needs >= 100 ms of serialization."""
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop, rate_mbps=8.0))
        connect(conn, loop)
        start = loop.now
        stream = fetch(conn, loop, response_bytes=100_000)
        assert stream.t_complete - start >= 100.0

    def test_concurrent_streams_interleave(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        connect(conn, loop)
        streams = [conn.request(400, 30_000) for _ in range(3)]
        loop.run_until(lambda: all(s.complete for s in streams))
        completes = [s.t_complete for s in streams]
        # Round-robin scheduling should finish them close together, not
        # strictly sequentially.
        assert max(completes) - min(completes) < 20.0

    def test_request_sizes_validated(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop), resumed=True)
        conn.connect(lambda r: None)
        with pytest.raises(ValueError):
            conn.request(0, 100)
        with pytest.raises(ValueError):
            conn.request(100, -1)

    def test_zero_rtt_first_byte_after_one_rtt(self):
        """0-RTT: the request leaves immediately, so the first response
        byte arrives a single RTT after connect."""
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop), resumed=True)
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=1000)
        assert stream.t_first_byte == pytest.approx(RTT)


class TestLossRecovery:
    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_transfer_completes_under_loss(self, conn_cls):
        loop = EventLoop()
        conn = conn_cls(loop, make_path(loop, loss=0.05, seed=123))
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=100_000)
        assert stream.received == 100_000
        assert conn.stats.retransmissions > 0

    def test_loss_slows_transfer_down(self):
        def run(loss, seed):
            loop = EventLoop()
            conn = TcpConnection(loop, make_path(loop, loss=loss, seed=seed))
            connect(conn, loop)
            start = loop.now
            stream = fetch(conn, loop, response_bytes=150_000)
            return stream.t_complete - start

        clean = run(0.0, 1)
        lossy = sum(run(0.05, seed) for seed in range(5)) / 5
        assert lossy > clean

    def test_single_loss_recovers_via_fast_retransmit(self):
        loop = EventLoop()
        path = make_path(loop)
        state = {"dropped": False}

        def drop_first_data(pkt):
            if pkt.kind is PacketKind.DATA and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        path.downlink.drop_filter = drop_first_data
        conn = QuicConnection(loop, path)
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=30_000)
        assert stream.received == 30_000
        assert conn.stats.data_packets_lost == 1
        assert conn.stats.retransmissions == 1
        assert conn.stats.rto_events == 0  # packet-threshold, not timeout

    def test_tail_loss_recovers_via_pto(self):
        """If the *last* packet is lost there are no later acks to
        trigger the packet threshold; only the PTO can recover."""
        loop = EventLoop()
        path = make_path(loop)
        total = 14_600  # exactly 10 MSS -> fits in the initial window
        state = {"seen": 0}

        def drop_last(pkt):
            if pkt.kind is PacketKind.DATA:
                state["seen"] += 1
                if state["seen"] == 10:
                    return True
            return False

        path.downlink.drop_filter = drop_last
        conn = QuicConnection(loop, path)
        connect(conn, loop)
        stream = fetch(conn, loop, response_bytes=total)
        assert stream.received == total
        assert conn.stats.rto_events >= 1

    def test_cwnd_shrinks_on_loss(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop, loss=0.05, seed=42))
        connect(conn, loop)
        fetch(conn, loop, response_bytes=200_000)
        assert conn.cc.loss_events > 0


class TestHeadOfLineBlocking:
    """The decisive H2-vs-H3 difference, isolated."""

    @staticmethod
    def run_two_streams(conn_cls, inject_loss):
        loop = EventLoop()
        path = make_path(loop)
        state = {"dropped": False}

        def drop_first_stream1_data(pkt):
            if (
                inject_loss
                and not state["dropped"]
                and pkt.kind is PacketKind.DATA
                and pkt.chunks
                and pkt.chunks[0].stream_id == 1
            ):
                state["dropped"] = True
                return True
            return False

        path.downlink.drop_filter = drop_first_stream1_data
        conn = conn_cls(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        # Both streams fit inside the initial congestion window, so in
        # the clean case everything arrives in one flight and the HoL
        # delay (if any) is visible on the completion times.
        s1 = conn.request(400, 5_000)
        s2 = conn.request(400, 5_000)
        loop.run_until(lambda: s1.complete and s2.complete)
        return s1, s2

    def test_tcp_loss_blocks_unrelated_stream(self):
        s1_clean, s2_clean = self.run_two_streams(TcpConnection, inject_loss=False)
        s1_lossy, s2_lossy = self.run_two_streams(TcpConnection, inject_loss=True)
        # The loss was on stream 1, but stream 2 is delayed too: HoL.
        assert s2_lossy.t_complete > s2_clean.t_complete + RTT / 2
        assert s1_lossy.t_complete > s1_clean.t_complete

    def test_quic_loss_does_not_block_unrelated_stream(self):
        __, s2_clean = self.run_two_streams(QuicConnection, inject_loss=False)
        s1_lossy, s2_lossy = self.run_two_streams(QuicConnection, inject_loss=True)
        # Stream 2 finishes essentially on schedule despite stream 1's loss.
        assert s2_lossy.t_complete <= s2_clean.t_complete + 1.0
        assert s1_lossy.received == 5_000

    def test_quic_beats_tcp_for_the_unaffected_stream(self):
        __, s2_tcp = self.run_two_streams(TcpConnection, inject_loss=True)
        __, s2_quic = self.run_two_streams(QuicConnection, inject_loss=True)
        assert s2_quic.t_complete < s2_tcp.t_complete

    def test_tcp_counts_hol_blocked_chunks(self):
        loop = EventLoop()
        path = make_path(loop)
        state = {"dropped": False}

        def drop_first_data(pkt):
            if pkt.kind is PacketKind.DATA and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        path.downlink.drop_filter = drop_first_data
        conn = TcpConnection(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 20_000)
        loop.run_until(lambda: stream.complete)
        assert conn.stats.hol_blocked_chunks > 0


class TestDeliveryInvariants:
    """Property-based: whatever the loss pattern, every stream delivers
    exactly its bytes, exactly once, in order."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.sampled_from([0.0, 0.02, 0.08, 0.2]),
        sizes=st.lists(st.integers(min_value=1, max_value=40_000), min_size=1, max_size=5),
        conn_kind=st.sampled_from(["tcp", "quic"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_bytes_delivered_exactly_once(self, seed, loss, sizes, conn_kind):
        loop = EventLoop()
        path = make_path(loop, loss=loss, seed=seed)
        cls = TcpConnection if conn_kind == "tcp" else QuicConnection
        conn = cls(loop, path, config=TransportConfig(max_request_retries=30,
                                                      max_handshake_retries=30))
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        streams = [conn.request(300, size) for size in sizes]
        loop.run_until(lambda: all(s.complete for s in streams))
        for stream, size in zip(streams, sizes):
            assert stream.received == size
            assert stream.t_first_byte <= stream.t_complete

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_first_byte_never_before_request_rtt(self, seed):
        loop = EventLoop()
        path = make_path(loop, loss=0.05, seed=seed)
        conn = QuicConnection(loop, path, resumed=True)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 5000)
        loop.run_until(lambda: stream.complete)
        assert stream.t_first_byte >= RTT  # physics: one RTT minimum
