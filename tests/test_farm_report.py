"""Direct coverage for the server farm and report internals.

``ServerFarm`` was previously exercised only through full campaigns;
these tests pin its cache-warming, cache-clearing and traffic-accounting
behavior in isolation, plus the report's win-rate arithmetic and a
golden rendering (the report is parsed by people and smoke scripts, so
its shape is part of the contract).
"""

import random

import pytest

from repro.cdn.edge import EdgeServer
from repro.events import EventLoop
from repro.measurement import Campaign, CampaignConfig, campaign_report
from repro.measurement.farm import ProbeNetProfile, ServerFarm
from repro.measurement.report import CampaignReport, ModeSummary
from repro.analysis.bootstrap import ConfidenceInterval
from repro.store.store import StoreStats
from repro.web.topsites import GeneratorConfig, cached_universe

SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


def make_farm(universe, profile=None):
    return ServerFarm(
        EventLoop(), universe.hosts, net_profile=profile, rng=random.Random(0)
    )


class TestProbeNetProfile:
    def test_netem_scales_and_offsets_rtt(self):
        universe = small_universe()
        host = next(iter(universe.hosts.values()))
        profile = ProbeNetProfile(rtt_scale=2.0, extra_delay_ms=10.0)
        netem = profile.netem_for(host)
        assert netem.delay_ms == pytest.approx(host.base_rtt_ms + 10.0)
        assert netem.rate_mbps == profile.rate_mbps

    def test_impairments_pass_through(self):
        universe = small_universe()
        host = next(iter(universe.hosts.values()))
        netem = ProbeNetProfile(
            loss_rate=0.02, jitter_ms=3.0, bursty_loss=True, rate_mbps=None
        ).netem_for(host)
        assert netem.loss_rate == 0.02
        assert netem.jitter_ms == 3.0
        assert netem.bursty_loss
        assert netem.rate_mbps is None


class TestServerFarm:
    def test_warm_caches_seeds_popular_cdn_objects(self):
        universe = small_universe()
        farm = make_farm(universe)
        farm.warm_caches(universe.pages)
        popular = [
            resource
            for page in universe.pages
            for resource in page.cdn_resources
            if resource.popular
        ]
        assert popular, "cohort must have popular CDN objects"
        for resource in popular:
            server = farm.server(resource.host)
            assert isinstance(server, EdgeServer)
            assert resource.url in server.cache

    def test_warm_skips_unpopular_objects(self):
        universe = small_universe()
        farm = make_farm(universe)
        farm.warm_caches(universe.pages)
        unpopular = [
            resource
            for page in universe.pages
            for resource in page.cdn_resources
            if not resource.popular
        ]
        for resource in unpopular:
            server = farm.server(resource.host)
            if isinstance(server, EdgeServer):
                assert resource.url not in server.cache

    def test_clear_caches_reinstantiates_edges(self):
        universe = small_universe()
        farm = make_farm(universe)
        farm.warm_caches(universe.pages)
        warmed = [
            hostname
            for hostname, server in farm._servers.items()
            if isinstance(server, EdgeServer) and len(server.cache) > 0
        ]
        assert warmed
        farm.clear_caches()
        for hostname in warmed:
            assert len(farm.server(hostname).cache) == 0

    def test_total_bytes_starts_at_zero_and_counts_paths(self):
        universe = small_universe()
        farm = make_farm(universe)
        assert farm.total_bytes_transferred() == 0
        # Paths are lazy: touching one registers it in the accounting.
        hostname = next(iter(universe.hosts))
        farm.path(hostname)
        assert farm.total_bytes_transferred() == 0

    def test_campaign_reports_nonzero_traffic(self):
        universe = small_universe()
        result = Campaign(universe, CampaignConfig(seed=3)).run(universe.pages[:2])
        report = campaign_report(result)
        assert report.h2.bytes_transferred > 0

    def test_repr_is_informative(self):
        universe = small_universe()
        farm = make_farm(universe)
        assert "ServerFarm" in repr(farm)
        assert f"hosts={len(universe.hosts)}" in repr(farm)


def _mode_summary(mode: str) -> ModeSummary:
    return ModeSummary(
        mode=mode,
        pages=4,
        requests=40,
        mean_plt_ms=1234.5,
        median_plt_ms=1100.0,
        p90_plt_ms=2000.0,
        reused_requests=12,
        resumed_requests=3,
        bytes_transferred=5_000_000,
    )


def _report(**overrides) -> CampaignReport:
    fields = dict(
        pages_measured=4,
        total_requests=80,
        h2=_mode_summary("h2-only"),
        h3=_mode_summary("h3-enabled"),
        plt_reduction_ci=ConfidenceInterval(
            point=50.0, low=20.0, high=80.0, confidence=0.95, resamples=1000
        ),
        pages_h3_wins=3,
    )
    fields.update(overrides)
    return CampaignReport(**fields)


class TestReportRendering:
    def test_h3_win_rate(self):
        assert _report().h3_win_rate == 0.75
        assert _report(pages_measured=0, pages_h3_wins=0).h3_win_rate == 0.0

    def test_render_golden(self):
        expected = "\n".join(
            [
                "campaign: 4 paired page measurements, 80 requests",
                "  h2-only     PLT mean  1234.5 ms "
                "(median  1100.0, p90  2000.0); "
                "12 reused / 3 resumed requests; 5.0 MB",
                "  h3-enabled  PLT mean  1234.5 ms "
                "(median  1100.0, p90  2000.0); "
                "12 reused / 3 resumed requests; 5.0 MB",
                "  PLT reduction: 50.00 [20.00, 80.00] ms; "
                "H3 wins on 75% of pages",
            ]
        )
        assert _report().render() == expected

    def test_render_with_store_stats(self):
        report = _report(
            store=StoreStats(hits=3, misses=1, writes=1, resumed=2)
        )
        rendered = report.render()
        assert rendered.endswith(
            "  store: 3 hits / 1 misses (75% hit rate), 2 resumed, 1 written"
        )
        assert report.render(include_store=False) == _report().render()

    def test_render_without_store_has_no_store_line(self):
        assert "store:" not in _report().render()
