"""Tests for the fault-injection subsystem and graceful degradation.

The two headline properties:

* **Dormancy** — with no fault profile (or an empty one), every result
  is bit-identical to a fault-free build: same visits, same traces,
  same counters.
* **Determinism under faults** — with an active profile, the same seed
  produces identical results for any worker count, including the new
  ``fault:``/``recovery:`` telemetry.
"""

import json
import math

import pytest

from repro.events import EventLoop
from repro.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    RetryPolicy,
    stable_host_fraction,
    udp_blackhole_profile,
)
from repro.measurement.campaign import CampaignConfig
from repro.measurement.outcome import VisitOutcome
from repro.measurement.parallel import run_campaigns
from repro.web.topsites import GeneratorConfig, cached_universe


@pytest.fixture(scope="module")
def universe():
    return cached_universe(GeneratorConfig(n_sites=10), seed=11)


def result_fingerprint(result) -> str:
    """A canonical, byte-exact rendering of everything a campaign made."""
    return json.dumps(
        {
            "visits": [
                (pv.probe_name, pv.page.url, pv.h2.to_dict(), pv.h3.to_dict())
                for pv in result.paired_visits
            ],
            "failures": [
                (f.page_url, f.probe_name, f.error) for f in result.failures
            ],
        },
        sort_keys=True,
    )


class TestProfile:
    def test_fault_kinds_closed_set(self):
        assert "udp_blackhole" in FAULT_KINDS
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="blackout", start_ms=100.0, end_ms=50.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="blackout", host_fraction=1.5)

    def test_active_window_is_half_open(self):
        event = FaultEvent(kind="blackout", start_ms=100.0, end_ms=200.0)
        assert not event.active_at(99.9)
        assert event.active_at(100.0)
        assert event.active_at(199.9)
        assert not event.active_at(200.0)

    def test_host_targeting_explicit_list(self):
        event = FaultEvent(kind="dns_failure", hosts=frozenset({"a.example"}))
        assert event.targets("a.example")
        assert not event.targets("b.example")

    def test_stable_host_fraction_is_deterministic(self):
        a = stable_host_fraction(7, "cdn.example")
        assert a == stable_host_fraction(7, "cdn.example")
        assert 0.0 <= a < 1.0
        assert a != stable_host_fraction(8, "cdn.example")

    def test_fraction_targeting_is_nested_across_intensities(self):
        """The sweep's monotonicity precondition: hosts blackholed at
        intensity f are a subset of those blackholed at f' > f."""
        hosts = [f"host{i}.example" for i in range(200)]
        salt = 0x5EED
        selected = {
            f: {h for h in hosts if stable_host_fraction(salt, h) < f}
            for f in (0.25, 0.5, 0.75)
        }
        assert selected[0.25] <= selected[0.5] <= selected[0.75]

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base_ms=100.0, backoff_cap_ms=350.0)
        assert policy.backoff_ms(0) == 100.0
        assert policy.backoff_ms(1) == 200.0
        assert policy.backoff_ms(2) == 350.0  # capped, not 400
        assert policy.backoff_ms(10) == 350.0

    def test_presets_registry(self):
        assert set(FAULT_PROFILES) >= {
            "udp-blocked", "flaky-link", "edge-outage",
            "dns-flaky", "reset-storm", "no-0rtt",
        }
        for name, profile in FAULT_PROFILES.items():
            assert isinstance(profile, FaultProfile)
            assert not profile.is_empty, name
            assert profile.kinds() <= FAULT_KINDS


class TestInjector:
    def test_windows_are_visit_relative(self):
        loop = EventLoop()
        profile = FaultProfile(
            events=(FaultEvent(kind="blackout", start_ms=0.0, end_ms=100.0),)
        )
        injector = FaultInjector(profile, loop)
        injector.begin_visit()
        assert injector.blackout("x.example")
        loop.call_later(150.0, lambda: None)
        loop.run()
        assert not injector.blackout("x.example")
        injector.begin_visit()  # re-anchor: window reopens
        assert injector.blackout("x.example")

    def test_udp_blackhole_hits_quic_only(self):
        loop = EventLoop()
        injector = FaultInjector(udp_blackhole_profile(1.0), loop)
        injector.begin_visit()
        assert injector.packet_dropped("x.example", quic=True)
        assert not injector.packet_dropped("x.example", quic=False)

    def test_connection_reset_at_earliest_pending_window(self):
        loop = EventLoop()
        profile = FaultProfile(
            events=(
                FaultEvent(kind="connection_reset", start_ms=500.0, end_ms=600.0),
                FaultEvent(kind="connection_reset", start_ms=200.0, end_ms=300.0),
            )
        )
        injector = FaultInjector(profile, loop)
        injector.begin_visit()
        assert injector.connection_reset_at("x.example") == 200.0
        loop.call_later(250.0, lambda: None)
        loop.run()
        assert injector.connection_reset_at("x.example") == 250.0  # now
        loop.call_later(200.0, lambda: None)
        loop.run()  # now 450: first window closed, second pending
        assert injector.connection_reset_at("x.example") == 500.0

    def test_empty_profile_answers_falsy(self):
        injector = FaultInjector(FaultProfile(), EventLoop())
        injector.begin_visit()
        assert not injector.blackout("x.example")
        assert not injector.udp_blackholed("x.example")
        assert injector.connection_reset_at("x.example") is None


class TestOutcome:
    def test_round_trip(self):
        outcome = VisitOutcome.from_error(3, "SimulationError: stalled")
        again = VisitOutcome.from_dict(outcome.to_dict())
        assert again == outcome

    def test_status_validation(self):
        with pytest.raises(ValueError, match="status"):
            VisitOutcome(page_index=0, status="sideways")
        with pytest.raises(ValueError, match="carries no visits"):
            VisitOutcome(page_index=0, status="failed", error="x", h2=object())
        with pytest.raises(ValueError, match="needs both visits"):
            VisitOutcome(page_index=0, status="ok")

    def test_format_check(self):
        with pytest.raises(ValueError, match="format"):
            VisitOutcome.from_dict({"format": "something/9"})


class TestDormancy:
    """No profile active ⇒ bit-identical to a fault-free build."""

    def test_empty_profile_matches_none(self, universe):
        pages = universe.pages[:3]
        configs = {
            "none": CampaignConfig(seed=3, collect_counters=True, trace=True),
            "empty": CampaignConfig(
                seed=3, collect_counters=True, trace=True,
                fault_profile=FaultProfile(name="empty"),
            ),
        }
        results = run_campaigns(universe, configs, pages=pages)
        assert result_fingerprint(results["none"]) == result_fingerprint(
            results["empty"]
        )
        assert (
            results["none"].counter_totals().to_dict()
            == results["empty"].counter_totals().to_dict()
        )


class TestDeterminismUnderFaults:
    def test_workers_do_not_change_faulted_results(self, universe):
        pages = universe.pages[:3]
        config = CampaignConfig(
            seed=3, collect_counters=True, trace=True,
            fault_profile=udp_blackhole_profile(1.0),
        )
        serial = run_campaigns(universe, {"c": config}, pages=pages, workers=1)["c"]
        parallel = run_campaigns(universe, {"c": config}, pages=pages, workers=3)["c"]
        assert result_fingerprint(serial) == result_fingerprint(parallel)
        assert (
            serial.counter_totals().to_dict()
            == parallel.counter_totals().to_dict()
        )
        assert list(serial.trace_events()) == list(parallel.trace_events())

    def test_same_seed_same_profile_reproduces(self, universe):
        pages = universe.pages[:2]
        config = CampaignConfig(seed=9, fault_profile=FAULT_PROFILES["flaky-link"])
        first = run_campaigns(universe, {"c": config}, pages=pages)["c"]
        second = run_campaigns(universe, {"c": config}, pages=pages)["c"]
        assert result_fingerprint(first) == result_fingerprint(second)


class TestUdpBlockedFallback:
    """The acceptance scenario: full UDP blackholing, zero hung visits."""

    @pytest.fixture(scope="class")
    def faulted(self, universe):
        config = CampaignConfig(
            seed=3, collect_counters=True,
            fault_profile=udp_blackhole_profile(1.0),
        )
        return run_campaigns(
            universe, {"c": config}, pages=universe.pages[:4]
        )["c"]

    def test_every_visit_completes(self, faulted):
        assert len(faulted.paired_visits) == 4
        assert not faulted.failures
        for pv in faulted.paired_visits:
            assert math.isfinite(pv.h2.plt_ms) and pv.h2.plt_ms > 0
            assert math.isfinite(pv.h3.plt_ms) and pv.h3.plt_ms > 0

    def test_no_entry_served_over_h3(self, faulted):
        protocols = {e.protocol for e in faulted.entries("h3-enabled")}
        assert "h3" not in protocols
        assert protocols <= {"h2", "http/1.1"}

    def test_visits_marked_degraded(self, faulted):
        assert len(faulted.degraded_visits()) == len(faulted.paired_visits)
        for pv in faulted.paired_visits:
            assert pv.h3.status == "degraded"
            assert pv.h2.status == "ok"  # TCP lane untouched by UDP faults

    def test_fallback_telemetry_recorded(self, faulted):
        counters = faulted.counter_totals().to_dict()["counters"]
        assert counters["recovery.h3_fallback"] > 0
        assert counters["recovery.connect_timeout"] > 0
        assert counters["faults.udp_blackhole"] > 0
        assert counters["pool.h3_fallbacks"] == counters["recovery.h3_fallback"]

    def test_h2_lane_matches_fault_free_run(self, universe, faulted):
        """UDP blackholing must not perturb the pure-TCP H2 lane."""
        clean = run_campaigns(
            universe,
            {"c": CampaignConfig(seed=3, collect_counters=True)},
            pages=universe.pages[:4],
        )["c"]
        for faulted_pv, clean_pv in zip(faulted.paired_visits, clean.paired_visits):
            assert faulted_pv.h2.to_dict() == clean_pv.h2.to_dict()


class TestFallbackSweep:
    def test_fallback_rate_is_monotone_and_inverts(self, universe):
        from repro.core.fallback import (
            edge_inverts,
            fallback_rates_are_monotone,
            fallback_sweep,
        )

        points = fallback_sweep(
            universe,
            intensities=(0.0, 0.5, 1.0),
            pages=universe.pages[:4],
            seed=3,
        )
        assert [p.intensity for p in points] == [0.0, 0.5, 1.0]
        assert points[0].fallback_rate < 0.05  # essentially no fallback
        assert points[-1].fallback_rate == 1.0
        assert fallback_rates_are_monotone(points)
        assert edge_inverts(points)
