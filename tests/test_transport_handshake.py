"""Handshake-latency semantics: the 'fast connection' half of the paper.

The protocol suites must pay exactly the round trips the paper describes
(Section II-A / VI-D): H2+TLS1.2 = 3 RTT, H2+TLS1.3 = 2 RTT, resumed
H2+TLS1.3 = 1 RTT, H3 = 1 RTT, resumed H3 (0-RTT) = 0 RTT.
"""

import random

import pytest

from repro.events import EventLoop
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import (
    QuicConnection,
    TcpConnection,
    TlsVersion,
    TransportError,
)

RTT = 30.0


def make_path(loop, loss=0.0, seed=0):
    profile = NetemProfile(delay_ms=RTT / 2, loss_rate=loss, rate_mbps=None)
    return NetworkPath(loop, profile, rng=random.Random(seed))


def complete_handshake(conn, loop):
    results = []
    conn.connect(results.append)
    loop.run_until(lambda: bool(results))
    return results[0]


class TestHandshakeLatency:
    def test_tcp_tls13_full_takes_two_rtts(self):
        loop = EventLoop()
        conn = TcpConnection(loop, make_path(loop), tls_version=TlsVersion.TLS13)
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(2 * RTT)
        assert not result.zero_rtt

    def test_tcp_tls12_full_takes_three_rtts(self):
        loop = EventLoop()
        conn = TcpConnection(loop, make_path(loop), tls_version=TlsVersion.TLS12)
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(3 * RTT)

    def test_tcp_tls13_resumed_still_takes_two_rtts(self):
        """Browsers do not send TCP early data, so a resumed TLS 1.3
        session saves CPU but no round trips — unlike H3's 0-RTT.
        This asymmetry is the paper's Section VI-D mechanism."""
        loop = EventLoop()
        conn = TcpConnection(
            loop, make_path(loop), tls_version=TlsVersion.TLS13, resumed=True
        )
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(2 * RTT)

    def test_tcp_tls13_resumed_with_early_data_takes_one_rtt(self):
        """With 0-RTT early data enabled (ablation knob), only the TCP
        round trip remains."""
        from repro.transport import TransportConfig

        loop = EventLoop()
        conn = TcpConnection(
            loop,
            make_path(loop),
            config=TransportConfig(tls13_early_data=True),
            tls_version=TlsVersion.TLS13,
            resumed=True,
        )
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(RTT)

    def test_tcp_tls12_resumed_takes_two_rtts(self):
        loop = EventLoop()
        conn = TcpConnection(
            loop, make_path(loop), tls_version=TlsVersion.TLS12, resumed=True
        )
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(2 * RTT)

    def test_quic_full_takes_one_rtt(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        result = complete_handshake(conn, loop)
        assert result.connect_ms == pytest.approx(RTT)

    def test_quic_resumed_is_zero_rtt(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop), resumed=True)
        result = complete_handshake(conn, loop)
        assert result.connect_ms == 0.0
        assert result.zero_rtt
        assert conn.can_send_requests

    def test_h3_beats_h2_by_one_rtt_full(self):
        loop = EventLoop()
        h2 = complete_handshake(TcpConnection(loop, make_path(loop)), loop)
        h3 = complete_handshake(QuicConnection(loop, make_path(loop)), loop)
        assert h2.connect_ms - h3.connect_ms == pytest.approx(RTT)

    def test_tcp_ssl_split(self):
        loop = EventLoop()
        conn = TcpConnection(loop, make_path(loop), tls_version=TlsVersion.TLS13)
        complete_handshake(conn, loop)
        assert conn.tcp_connect_ms == pytest.approx(RTT)
        assert conn.ssl_ms == pytest.approx(RTT)

    def test_quic_ssl_is_whole_handshake(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        complete_handshake(conn, loop)
        assert conn.ssl_ms == pytest.approx(RTT)


class TestHandshakeRobustness:
    def test_handshake_survives_loss(self):
        loop = EventLoop()
        path = make_path(loop, loss=0.3, seed=77)
        conn = TcpConnection(loop, path)
        result = complete_handshake(conn, loop)
        assert conn.established
        assert result.connect_ms >= 2 * RTT

    def test_handshake_retry_counted(self):
        loop = EventLoop()
        path = make_path(loop)
        # Drop the first SYN deterministically.
        dropped = []

        def drop_first(pkt):
            if not dropped:
                dropped.append(pkt)
                return True
            return False

        path.uplink.drop_filter = drop_first
        conn = TcpConnection(loop, path)
        result = complete_handshake(conn, loop)
        assert result.retries == 1
        assert result.connect_ms > 2 * RTT  # paid a timeout

    def test_handshake_gives_up_eventually(self):
        loop = EventLoop()
        path = make_path(loop)
        path.uplink.drop_filter = lambda pkt: True  # black hole
        conn = TcpConnection(loop, path)
        conn.connect(lambda result: None)
        with pytest.raises(TransportError):
            loop.run()

    def test_connect_twice_rejected(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        conn.connect(lambda r: None)
        with pytest.raises(TransportError):
            conn.connect(lambda r: None)

    def test_request_before_handshake_rejected(self):
        loop = EventLoop()
        conn = TcpConnection(loop, make_path(loop))
        with pytest.raises(TransportError):
            conn.request(400, 1000)
