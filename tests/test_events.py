"""Unit tests for the discrete-event kernel."""

import pytest

from repro.events import EventLoop, SimulationError, Timer


class TestEventLoop:
    def test_starts_at_time_zero(self):
        loop = EventLoop()
        assert loop.now == 0.0

    def test_runs_events_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.call_later(5.0, fired.append, "late")
        loop.call_later(1.0, fired.append, "early")
        loop.call_later(3.0, fired.append, "middle")
        loop.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_fifo(self):
        loop = EventLoop()
        fired = []
        for label in ("a", "b", "c"):
            loop.call_later(2.0, fired.append, label)
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.call_later(7.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7.5]
        assert loop.now == 7.5

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append(("outer", loop.now))
            loop.call_later(2.0, inner)

        def inner():
            fired.append(("inner", loop.now))

        loop.call_later(1.0, outer)
        loop.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.call_later(-1.0, lambda: None)

    def test_call_at_in_past_rejected(self):
        loop = EventLoop()
        loop.call_later(10.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.call_at(5.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.call_later(1.0, fired.append, "x")
        event.cancel()
        loop.run()
        assert fired == []

    def test_run_until_time_bound(self):
        loop = EventLoop()
        fired = []
        loop.call_later(1.0, fired.append, "a")
        loop.call_later(10.0, fired.append, "b")
        loop.run(until_ms=5.0)
        assert fired == ["a"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["a", "b"]

    def test_run_until_predicate(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.call_later(float(i + 1), fired.append, i)
        loop.run_until(lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_max_events_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_max_events_bound_is_exact(self):
        """The guard fires after *exactly* max_events executions (it
        used to allow one extra event through)."""
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)
        assert loop.processed_events == 100

    def test_max_events_allows_exactly_that_many(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.call_later(float(i + 1), fired.append, i)
        loop.run(max_events=5)  # must not raise: exactly 5 events queued
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_max_events_bound_is_exact(self):
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run_until(lambda: False, max_events=50)
        assert loop.processed_events == 50

    def test_len_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.call_later(1.0, lambda: None)
        drop = loop.call_later(2.0, lambda: None)
        drop.cancel()
        assert len(loop) == 1
        assert keep is not None

    def test_len_tracks_push_cancel_and_pop(self):
        loop = EventLoop()
        events = [loop.call_later(float(i + 1), lambda: None) for i in range(4)]
        assert len(loop) == 4
        events[1].cancel()
        events[1].cancel()  # double-cancel must not double-decrement
        assert len(loop) == 3
        loop.step()
        assert len(loop) == 2
        loop.run()
        assert len(loop) == 0
        events[0].cancel()  # cancelling an executed event is a no-op
        assert len(loop) == 0

    def test_processed_events_counter(self):
        loop = EventLoop()
        for i in range(4):
            loop.call_later(float(i), lambda: None)
        loop.run()
        assert loop.processed_events == 4


class TestTimer:
    def test_fires_after_delay(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        loop.run()
        assert fired == [5.0]

    def test_stop_prevents_firing(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        timer.stop()
        loop.run()
        assert fired == []

    def test_restart_replaces_deadline(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        timer.start(9.0)
        loop.run()
        assert fired == [9.0]

    def test_armed_reflects_state(self):
        loop = EventLoop()
        timer = Timer(loop, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        loop.run()
        assert not timer.armed


# ---------------------------------------------------------------------
# Differential edge cases: every scheduler implementation must agree.
# ---------------------------------------------------------------------

from repro.events.loop import CalendarEventLoop, CEventLoop, HeapEventLoop

ALL_LOOPS = [
    pytest.param(HeapEventLoop, id="heap"),
    pytest.param(CalendarEventLoop, id="calendar"),
    pytest.param(
        CEventLoop,
        id="c",
        marks=pytest.mark.skipif(
            CEventLoop is None, reason="C kernel not built on this host"
        ),
    ),
]


@pytest.mark.parametrize("loop_cls", ALL_LOOPS)
class TestSchedulerEdgeCases:
    def test_cancel_before_fire(self, loop_cls):
        loop = loop_cls()
        fired = []
        keep = loop.call_later(5.0, fired.append, "keep")
        drop = loop.call_later(3.0, fired.append, "drop")
        drop.cancel()
        loop.run()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_cancel_from_earlier_callback(self, loop_cls):
        # A callback cancelling a later-scheduled event must win even
        # when both sit in the same drained bucket.
        loop = loop_cls()
        fired = []
        victim = loop.call_later(5.0, fired.append, "victim")
        loop.call_later(5.0, lambda: (fired.append("killer"), victim.cancel()))
        loop.run()
        # victim was pushed first, so it fires before the killer runs.
        assert fired == ["victim", "killer"]

        loop = loop_cls()
        fired = []
        loop.call_later(4.0, lambda: victim2.cancel())
        victim2 = loop.call_later(5.0, fired.append, "victim")
        loop.run()
        assert fired == []

    def test_double_cancel_is_harmless(self, loop_cls):
        loop = loop_cls()
        event = loop.call_later(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(loop) == 0
        loop.run()
        assert loop.processed_events == 0

    def test_same_timestamp_fifo_stability(self, loop_cls):
        # 200 events at one instant, pushed in order, must fire in
        # order — across bucket drains, heap sifts and the C heap.
        loop = loop_cls()
        fired = []
        for i in range(200):
            loop.call_later(2.0, fired.append, i)
        loop.run()
        assert fired == list(range(200))

    def test_same_timestamp_fifo_across_mixed_pushes(self, loop_cls):
        # Interleave same-time pushes with earlier/later ones so the
        # tie-broken batch is assembled from non-contiguous pushes.
        loop = loop_cls()
        fired = []
        loop.call_later(9.0, fired.append, "tail")
        first = [loop.call_later(5.0, fired.append, f"a{i}") for i in range(3)]
        loop.call_later(1.0, fired.append, "head")
        [loop.call_later(5.0, fired.append, f"b{i}") for i in range(3)]
        first[1].cancel()
        loop.run()
        assert fired == ["head", "a0", "a2", "b0", "b1", "b2", "tail"]

    def test_reentrant_scheduling_during_pop(self, loop_cls):
        # A callback scheduling at the *current* instant: the new event
        # must run in this same pass, after already-queued peers.
        loop = loop_cls()
        fired = []

        def reenter():
            fired.append("reenter")
            loop.call_at(loop.now, fired.append, "nested")

        loop.call_later(3.0, reenter)
        loop.call_later(3.0, fired.append, "peer")
        loop.run()
        assert fired == ["reenter", "peer", "nested"]
        assert loop.now == 3.0

    def test_reentrant_chain_does_not_stall_clock(self, loop_cls):
        # A zero-delay chain during a drain keeps FIFO order and the
        # clock pinned; a finite chain must terminate.
        loop = loop_cls()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 50:
                loop.call_later(0.0, chain, depth + 1)

        loop.call_later(1.0, chain, 0)
        loop.run()
        assert fired == list(range(51))
        assert loop.now == 1.0

    def test_max_events_exactness(self, loop_cls):
        loop = loop_cls()
        for i in range(10):
            loop.call_later(float(i), lambda: None)
        with pytest.raises(SimulationError):
            loop.run(max_events=4)
        assert loop.processed_events == 4
        # The remaining events are intact and still runnable.
        loop.run()
        assert loop.processed_events == 10

    def test_max_events_not_consumed_by_cancelled(self, loop_cls):
        # Cancelled entries are skipped silently: they must not eat
        # into the max_events budget.
        loop = loop_cls()
        for i in range(6):
            event = loop.call_later(float(i), lambda: None)
            if i % 2 == 0:
                event.cancel()
        loop.run(max_events=3)
        assert loop.processed_events == 3

    def test_run_until_ms_stops_clock_at_bound(self, loop_cls):
        loop = loop_cls()
        fired = []
        loop.call_later(2.0, fired.append, "in")
        loop.call_later(7.0, fired.append, "out")
        loop.run(until_ms=5.0)
        assert fired == ["in"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["in", "out"]

    def test_next_event_time_tracks_head(self, loop_cls):
        loop = loop_cls()
        assert loop.next_event_time() is None
        loop.call_later(5.0, lambda: None)
        head = loop.call_later(2.0, lambda: None)
        assert loop.next_event_time() == 2.0
        head.cancel()
        assert loop.next_event_time() == 5.0
        loop.run()
        assert loop.next_event_time() is None

    def test_next_event_time_does_not_fire_or_advance(self, loop_cls):
        loop = loop_cls()
        fired = []
        loop.call_later(3.0, fired.append, "x")
        assert loop.next_event_time() == 3.0
        assert fired == []
        assert loop.now == 0.0
        assert len(loop) == 1

    def test_far_future_and_near_interleave(self, loop_cls):
        # Deadlines past the calendar wheel's horizon (>1024 ms) must
        # still interleave correctly with near-term events.
        loop = loop_cls()
        fired = []
        loop.call_later(5000.0, fired.append, "far")
        loop.call_later(1.0, fired.append, "near")
        loop.call_later(2000.0, lambda: loop.call_later(0.5, fired.append, "mid"))
        loop.run()
        assert fired == ["near", "mid", "far"]
        assert loop.now == 5000.0
