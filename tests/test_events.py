"""Unit tests for the discrete-event kernel."""

import pytest

from repro.events import EventLoop, SimulationError, Timer


class TestEventLoop:
    def test_starts_at_time_zero(self):
        loop = EventLoop()
        assert loop.now == 0.0

    def test_runs_events_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.call_later(5.0, fired.append, "late")
        loop.call_later(1.0, fired.append, "early")
        loop.call_later(3.0, fired.append, "middle")
        loop.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_fifo(self):
        loop = EventLoop()
        fired = []
        for label in ("a", "b", "c"):
            loop.call_later(2.0, fired.append, label)
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.call_later(7.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7.5]
        assert loop.now == 7.5

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []

        def outer():
            fired.append(("outer", loop.now))
            loop.call_later(2.0, inner)

        def inner():
            fired.append(("inner", loop.now))

        loop.call_later(1.0, outer)
        loop.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.call_later(-1.0, lambda: None)

    def test_call_at_in_past_rejected(self):
        loop = EventLoop()
        loop.call_later(10.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.call_at(5.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.call_later(1.0, fired.append, "x")
        event.cancel()
        loop.run()
        assert fired == []

    def test_run_until_time_bound(self):
        loop = EventLoop()
        fired = []
        loop.call_later(1.0, fired.append, "a")
        loop.call_later(10.0, fired.append, "b")
        loop.run(until_ms=5.0)
        assert fired == ["a"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["a", "b"]

    def test_run_until_predicate(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.call_later(float(i + 1), fired.append, i)
        loop.run_until(lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_max_events_guard(self):
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_max_events_bound_is_exact(self):
        """The guard fires after *exactly* max_events executions (it
        used to allow one extra event through)."""
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)
        assert loop.processed_events == 100

    def test_max_events_allows_exactly_that_many(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.call_later(float(i + 1), fired.append, i)
        loop.run(max_events=5)  # must not raise: exactly 5 events queued
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_max_events_bound_is_exact(self):
        loop = EventLoop()

        def reschedule():
            loop.call_later(1.0, reschedule)

        loop.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            loop.run_until(lambda: False, max_events=50)
        assert loop.processed_events == 50

    def test_len_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.call_later(1.0, lambda: None)
        drop = loop.call_later(2.0, lambda: None)
        drop.cancel()
        assert len(loop) == 1
        assert keep is not None

    def test_len_tracks_push_cancel_and_pop(self):
        loop = EventLoop()
        events = [loop.call_later(float(i + 1), lambda: None) for i in range(4)]
        assert len(loop) == 4
        events[1].cancel()
        events[1].cancel()  # double-cancel must not double-decrement
        assert len(loop) == 3
        loop.step()
        assert len(loop) == 2
        loop.run()
        assert len(loop) == 0
        events[0].cancel()  # cancelling an executed event is a no-op
        assert len(loop) == 0

    def test_processed_events_counter(self):
        loop = EventLoop()
        for i in range(4):
            loop.call_later(float(i), lambda: None)
        loop.run()
        assert loop.processed_events == 4


class TestTimer:
    def test_fires_after_delay(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        loop.run()
        assert fired == [5.0]

    def test_stop_prevents_firing(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        timer.stop()
        loop.run()
        assert fired == []

    def test_restart_replaces_deadline(self):
        loop = EventLoop()
        fired = []
        timer = Timer(loop, lambda: fired.append(loop.now))
        timer.start(5.0)
        timer.start(9.0)
        loop.run()
        assert fired == [9.0]

    def test_armed_reflects_state(self):
        loop = EventLoop()
        timer = Timer(loop, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        loop.run()
        assert not timer.armed
