"""The parallel campaign engine: determinism, sharding, serialization.

The contract under test is the strongest one the engine makes: for a
fixed seed, a campaign's results are *bit-identical* for any worker
count and any chunking — paired-visit order, PLT values, HAR entry
timings, pool counters.  That only holds because every (vantage, probe,
page) visit is an isolated simulation with a seed derived from the
triple, so these tests are also the regression net for accidental
cross-page state coupling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.browser import PageVisit
from repro.measurement import (
    Campaign,
    CampaignConfig,
    ParallelCampaign,
    derive_seed,
    run_campaigns,
)
from repro.web.topsites import GeneratorConfig, cached_universe

#: Small, fast cohort shared by every test in this module.
SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


def visit_fingerprint(visit):
    """Everything an analysis can read from one visit, flattened."""
    return (
        visit.page_url,
        visit.protocol_mode,
        visit.plt_ms,
        visit.status,
        visit.pool_stats,
        tuple(
            (
                e.url,
                e.host,
                e.protocol,
                e.started_at_ms,
                e.time_ms,
                tuple(sorted(e.timings.as_dict().items())),
                e.response_bytes,
                e.request_bytes,
                e.resource_type,
                tuple(sorted(e.headers.items())),
                e.status,
                e.reused,
                e.resumed,
                e.cache_hit,
                e.is_cdn,
                e.provider,
                e.failed,
            )
            for e in visit.entries
        ),
    )


def result_fingerprint(result):
    return [
        (pv.probe_name, pv.page.url, visit_fingerprint(pv.h2), visit_fingerprint(pv.h3))
        for pv in result.paired_visits
    ]


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        seen = set()
        for vp in range(3):
            for probe in range(3):
                for page in range(10):
                    seed = derive_seed(7, vp, probe, page)
                    assert seed == derive_seed(7, vp, probe, page)
                    seen.add(seed)
        assert len(seen) == 90  # no collisions across the protocol grid

    def test_base_seed_changes_stream(self):
        assert derive_seed(0, 0, 0, 0) != derive_seed(1, 0, 0, 0)


class TestDeterminism:
    def test_workers_4_reproduces_serial(self):
        """The acceptance criterion: workers=1 == workers=4, fully."""
        universe = small_universe()
        config = CampaignConfig(seed=3)
        serial = Campaign(universe, config).run(workers=1)
        parallel = Campaign(universe, config).run(workers=4)
        assert [pv.plt_reduction_ms for pv in serial.paired_visits] == [
            pv.plt_reduction_ms for pv in parallel.paired_visits
        ]
        assert result_fingerprint(serial) == result_fingerprint(parallel)

    def test_chunk_size_is_invisible(self):
        universe = small_universe()
        config = CampaignConfig(seed=5)
        pages = universe.pages[:4]
        baseline = Campaign(universe, config).run(pages, workers=1)
        for chunk_size in (1, 2, 3):
            chunked = Campaign(universe, config).run(
                pages, workers=2, chunk_size=chunk_size
            )
            assert result_fingerprint(chunked) == result_fingerprint(baseline)

    def test_page_subset_matches_full_run_prefix_free(self):
        """Per-page seed derivation is positional: the same page at the
        same index measures identically regardless of worker count."""
        universe = small_universe()
        config = CampaignConfig(seed=11)
        pages = universe.pages[:3]
        once = Campaign(universe, config).run(pages, workers=1)
        again = Campaign(universe, config).run(pages, workers=2, chunk_size=1)
        assert result_fingerprint(once) == result_fingerprint(again)

    @given(
        seed=st.integers(min_value=0, max_value=500),
        chunk_size=st.sampled_from([None, 1, 2]),
    )
    @settings(max_examples=4, deadline=None)
    def test_property_parallel_equals_serial(self, seed, chunk_size):
        universe = small_universe()
        config = CampaignConfig(seed=seed, loss_rate=0.005)
        pages = universe.pages[:2]
        serial = Campaign(universe, config).run(pages, workers=1)
        parallel = Campaign(universe, config).run(
            pages, workers=2, chunk_size=chunk_size
        )
        assert result_fingerprint(serial) == result_fingerprint(parallel)


class TestRunCampaigns:
    def test_multiple_configs_share_one_pool(self):
        universe = small_universe()
        configs = {
            ("loss", 0.0): CampaignConfig(seed=2, loss_rate=0.0),
            ("loss", 0.01): CampaignConfig(seed=2, loss_rate=0.01),
        }
        pages = universe.pages[:3]
        pooled = run_campaigns(universe, configs, pages=pages, workers=2)
        assert set(pooled) == set(configs)
        for key, config in configs.items():
            solo = Campaign(universe, config).run(pages, workers=1)
            assert result_fingerprint(pooled[key]) == result_fingerprint(solo)

    def test_parallel_campaign_wrapper(self):
        universe = small_universe()
        config = CampaignConfig(seed=9)
        pages = universe.pages[:2]
        wrapped = ParallelCampaign(universe, config, workers=2).run(pages)
        direct = Campaign(universe, config).run(pages, workers=1)
        assert result_fingerprint(wrapped) == result_fingerprint(direct)

    def test_probe_names_cover_vantage_and_probe_grid(self):
        universe = small_universe()
        config = CampaignConfig(probes_per_vantage=2, max_vantage_points=2, seed=1)
        result = Campaign(universe, config).run(universe.pages[:1], workers=1)
        names = {pv.probe_name for pv in result.paired_visits}
        assert names == {"utah-0", "utah-1", "wisconsin-0", "wisconsin-1"}


class TestVisitSerialization:
    def test_page_visit_round_trip_is_lossless(self):
        universe = small_universe()
        result = Campaign(universe, CampaignConfig(seed=4)).run(
            universe.pages[:1], workers=1
        )
        for visit in (result.paired_visits[0].h2, result.paired_visits[0].h3):
            restored = PageVisit.from_dict(visit.to_dict())
            assert visit_fingerprint(restored) == visit_fingerprint(visit)
            assert restored.har.on_load_ms == visit.har.on_load_ms
            assert restored.har.started_at_ms == visit.har.started_at_ms

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            PageVisit.from_dict({"format": "something-else"})
