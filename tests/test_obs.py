"""The observability layer: counters, tracing, manifests, CLI export.

The two contracts that matter most here:

* **Zero cost / zero effect when disabled** — attaching no ObsContext
  (or the null tracer) leaves simulation results bit-identical.
* **Determinism across workers** — merged campaign counter totals are
  identical, key order included, for any worker count.
"""

import json
import random

import pytest

from repro.events import EventLoop
from repro.measurement import Campaign, CampaignConfig
from repro.netsim import NetemProfile, NetworkPath
from repro.obs import (
    EVENT_NAMES,
    MANIFEST_FORMAT,
    NULL_TRACER,
    ConnectionTracer,
    CounterRegistry,
    Histogram,
    NullTracer,
    ObsContext,
    TraceSchemaError,
    build_run_manifest,
    merge_counter_dicts,
    read_run_manifest,
    validate_event,
    validate_jsonl,
    write_run_manifest,
)
from repro.obs.schema import validate_events
from repro.transport import QuicConnection, TcpConnection
from repro.web.topsites import GeneratorConfig, cached_universe

SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


class TestCounterRegistry:
    def test_incr_and_read(self):
        reg = CounterRegistry()
        reg.incr("a")
        reg.incr("a", 2.5)
        assert reg.counter("a") == 3.5
        assert reg.counter("missing") == 0.0

    def test_gauge_keeps_max(self):
        reg = CounterRegistry()
        reg.gauge("g", 5.0)
        reg.gauge("g", 3.0)
        reg.gauge("g", 9.0)
        assert reg.to_dict()["gauges"]["g"] == 9.0

    def test_histogram_observe(self):
        reg = CounterRegistry()
        for value in (1.0, 10.0, 100.0, 20_000.0):
            reg.observe("h", value)
        histogram = reg.histogram("h")
        assert histogram.count == 4
        assert histogram.min == 1.0
        assert histogram.max == 20_000.0
        assert histogram.mean == pytest.approx(sum((1.0, 10.0, 100.0, 20_000.0)) / 4)
        # The overflow value lands in the unbounded last bucket.
        assert histogram.counts[-1] == 1

    def test_bool_and_clear(self):
        reg = CounterRegistry()
        assert not reg
        reg.incr("x")
        assert reg
        reg.clear()
        assert not reg

    def test_to_dict_keys_sorted(self):
        reg = CounterRegistry()
        for name in ("zebra", "alpha", "mid"):
            reg.incr(name)
            reg.gauge(f"g.{name}", 1.0)
            reg.observe(f"h.{name}", 1.0)
        doc = reg.to_dict()
        assert list(doc["counters"]) == sorted(doc["counters"])
        assert list(doc["gauges"]) == sorted(doc["gauges"])
        assert list(doc["histograms"]) == sorted(doc["histograms"])

    def test_merge_is_order_independent(self):
        """With exactly-representable values (what the real counters
        hold: packet/handshake/stall counts), merge order is invisible.
        Float-summed metrics rely on the canonical merge order instead."""

        def make(seed):
            rng = random.Random(seed)
            reg = CounterRegistry()
            for __ in range(30):
                reg.incr(f"c.{rng.randrange(5)}", rng.randrange(100))
                reg.gauge(f"g.{rng.randrange(3)}", rng.random())
                reg.observe(f"h.{rng.randrange(3)}", float(rng.randrange(1000)))
            return reg.to_dict()

        dicts = [make(seed) for seed in range(4)]
        forward = merge_counter_dicts(dicts).to_dict()
        backward = merge_counter_dicts(list(reversed(dicts))).to_dict()
        assert forward == backward

    def test_merge_dict_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            CounterRegistry().merge_dict({"format": "nope"})

    def test_histogram_round_trip(self):
        histogram = Histogram()
        for value in (3.0, 55.0, 720.0):
            histogram.observe(value)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.to_dict() == histogram.to_dict()

    def test_render_mentions_every_metric(self):
        reg = CounterRegistry()
        reg.incr("c.one", 2)
        reg.gauge("g.two", 1.5)
        reg.observe("h.three", 10.0)
        joined = "\n".join(reg.render())
        assert "c.one" in joined
        assert "g.two" in joined
        assert "h.three" in joined


# ----------------------------------------------------------------------
# Tracers
# ----------------------------------------------------------------------


class TestNullTracer:
    def test_falsy_and_noop(self):
        assert not NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        NULL_TRACER.event(0.0, "transport:packet_sent", seq=1)  # must not raise

    def test_connections_default_to_null_tracer(self):
        loop = EventLoop()
        path = NetworkPath(loop, NetemProfile(delay_ms=10.0), rng=random.Random(0))
        conn = QuicConnection(loop, path)
        assert conn.tracer is NULL_TRACER


def traced_transfer(conn_cls, loss=0.05, seed=7, response_bytes=200_000):
    loop = EventLoop()
    path = NetworkPath(
        loop,
        NetemProfile(delay_ms=15.0, loss_rate=loss, rate_mbps=50.0),
        rng=random.Random(seed),
    )
    tracer = ConnectionTracer("conn-under-test", conn_cls.protocol_name)
    conn = conn_cls(loop, path, tracer=tracer)
    done: list = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    stream = conn.request(400, response_bytes)
    loop.run_until(lambda: stream.complete)
    return conn, tracer


class TestTracedTransfers:
    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_events_are_schema_valid(self, conn_cls):
        __, tracer = traced_transfer(conn_cls)
        events = tracer.tagged_events()
        assert validate_events(events) == len(events)
        assert {e["name"] for e in events} <= EVENT_NAMES

    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_packet_events_match_stats(self, conn_cls):
        conn, tracer = traced_transfer(conn_cls)
        s2c = sum(
            1
            for e in tracer.events
            if e["name"] == "transport:packet_sent" and e["data"]["dir"] == "s2c"
        )
        assert s2c == conn.stats.data_packets_sent
        assert tracer.count("transport:packet_lost") == conn.stats.data_packets_lost
        assert conn.stats.data_packets_lost > 0  # the loss rate did bite

    @pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
    def test_hol_stall_events_match_stats(self, conn_cls):
        conn, tracer = traced_transfer(conn_cls)
        started = tracer.count("transport:hol_stall_started")
        ended = tracer.count("transport:hol_stall_ended")
        assert started == ended == conn.stats.hol_stalls
        assert conn.stats.hol_stalls > 0
        event_ms = sum(
            e["data"]["duration_ms"]
            for e in tracer.events
            if e["name"] == "transport:hol_stall_ended"
        )
        assert event_ms == pytest.approx(conn.stats.hol_stall_ms)

    def test_handshake_and_metrics_events(self):
        __, tracer = traced_transfer(QuicConnection, loss=0.0)
        assert tracer.count("transport:handshake_started") == 1
        assert tracer.count("transport:handshake_completed") == 1
        assert tracer.count("recovery:metrics_updated") > 0
        assert tracer.count("http:stream_opened") == 1
        assert tracer.count("http:stream_closed") == 1

    def test_event_times_monotone_nondecreasing(self):
        __, tracer = traced_transfer(TcpConnection)
        times = [e["time"] for e in tracer.events]
        assert times == sorted(times)


class TestObsContext:
    def test_disabled_trace_returns_no_tracer(self):
        obs = ObsContext(trace=False)
        assert obs.connection_tracer("c", "h3") is None

    def test_drain_visit_resets(self):
        obs = ObsContext(trace=True)
        tracer = obs.connection_tracer("c", "h3")
        tracer.event(1.0, "transport:packet_sent", seq=0, size=100,
                     dir="s2c", retransmission=False)
        obs.counters.incr("x")
        counters, trace, metrics, spans = obs.drain_visit()
        assert counters["counters"]["x"] == 1.0
        assert len(trace) == 1
        assert metrics is None
        assert spans is None
        counters2, trace2, _, _ = obs.drain_visit()
        assert counters2["counters"] == {}
        assert trace2 == []


# ----------------------------------------------------------------------
# Campaign integration: determinism + consistency
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_campaign_result():
    universe = small_universe()
    config = CampaignConfig(seed=3, loss_rate=0.02, collect_counters=True,
                            trace=True)
    return Campaign(universe, config).run(universe.pages[:3], workers=1)


class TestCampaignCounters:
    def test_worker_count_does_not_change_totals(self):
        universe = small_universe()
        config = CampaignConfig(seed=3, collect_counters=True)
        pages = universe.pages[:3]
        totals = {}
        for workers in (1, 2, 4):
            result = Campaign(universe, config).run(pages, workers=workers)
            totals[workers] = result.counter_totals().to_dict()
        assert totals[1] == totals[2] == totals[4]
        # Key ordering is part of the determinism contract.
        assert (
            list(totals[1]["counters"])
            == list(totals[2]["counters"])
            == list(totals[4]["counters"])
        )

    def test_observability_does_not_change_results(self):
        """Null-tracer contract at campaign scope: HARs are identical
        with observability fully on and fully off."""
        universe = small_universe()
        pages = universe.pages[:2]
        plain = Campaign(universe, CampaignConfig(seed=5)).run(pages, workers=1)
        observed = Campaign(
            universe,
            CampaignConfig(seed=5, collect_counters=True, trace=True),
        ).run(pages, workers=1)
        for pv_plain, pv_obs in zip(plain.paired_visits, observed.paired_visits):
            assert pv_plain.h2.har.to_dict() == pv_obs.h2.har.to_dict()
            assert pv_plain.h3.har.to_dict() == pv_obs.h3.har.to_dict()
            assert pv_plain.h2.plt_ms == pv_obs.h2.plt_ms
            assert pv_plain.h3.plt_ms == pv_obs.h3.plt_ms

    def test_plain_campaign_has_no_telemetry(self):
        universe = small_universe()
        result = Campaign(universe, CampaignConfig(seed=5)).run(
            universe.pages[:1], workers=1
        )
        visit = result.paired_visits[0].h2
        assert visit.counters is None
        assert visit.trace is None
        assert not result.counter_totals()

    def test_totals_cover_expected_counter_families(self, traced_campaign_result):
        totals = traced_campaign_result.counter_totals().to_dict()
        names = set(totals["counters"])
        for expected in (
            "transport.packets.sent",
            "transport.handshakes.completed",
            "pool.requests",
            "tls.tickets.stored",
            "loop.events_processed",
        ):
            assert expected in names
        assert "transport.handshake_ms" in totals["histograms"]


class TestCampaignTraces:
    def test_trace_events_schema_valid(self, traced_campaign_result):
        events = list(traced_campaign_result.trace_events())
        assert events
        assert validate_events(events) == len(events)
        for event in events[:50]:
            assert event["mode"] in ("h2-only", "h3-enabled")
            assert event["page"].startswith("https://")

    def test_trace_counts_consistent_with_counters(self, traced_campaign_result):
        """The acceptance criterion: event counts line up with the
        merged counter totals."""
        totals = traced_campaign_result.counter_totals()
        events = list(traced_campaign_result.trace_events())

        def count(name):
            return sum(1 for e in events if e["name"] == name)

        assert count("transport:handshake_completed") == totals.counter(
            "transport.handshakes.completed"
        )
        assert count("security:zero_rtt_accepted") == totals.counter(
            "transport.handshakes.zero_rtt"
        )
        assert count("transport:hol_stall_ended") == totals.counter(
            "transport.hol.stalls"
        )

    def test_h3_visits_carry_quic_connections(self, traced_campaign_result):
        protocols = {
            e["protocol"]
            for e in traced_campaign_result.trace_events()
            if e["mode"] == "h3-enabled"
        }
        assert "h3" in protocols


# ----------------------------------------------------------------------
# Event-loop profiling
# ----------------------------------------------------------------------


class TestLoopProfiling:
    def test_disabled_by_default(self):
        loop = EventLoop()
        assert not loop.profiling_enabled
        assert loop.profile_stats() == {}

    def test_profiles_by_qualname(self):
        loop = EventLoop()
        loop.enable_profiling()

        def tick():
            if loop.now < 5.0:
                loop.call_later(1.0, tick)

        loop.call_later(0.0, tick)
        loop.run()
        stats = loop.profile_stats()
        key = next(k for k in stats if "tick" in k)
        assert stats[key]["count"] >= 5
        assert stats[key]["total_ms"] >= 0.0

    def test_disable_drops_data(self):
        loop = EventLoop()
        loop.enable_profiling()
        loop.call_later(0.0, lambda: None)
        loop.run()
        loop.disable_profiling()
        assert loop.profile_stats() == {}

    def test_profiling_does_not_change_simulated_time(self):
        plain, profiled = EventLoop(), EventLoop()
        profiled.enable_profiling()
        for loop in (plain, profiled):
            loop.call_later(3.0, lambda: None)
            loop.call_later(7.0, lambda: None)
            loop.run()
        assert plain.now == profiled.now


# ----------------------------------------------------------------------
# Schema + manifest
# ----------------------------------------------------------------------


def good_event():
    return {
        "time": 1.5,
        "name": "transport:packet_sent",
        "data": {"seq": 1, "size": 1460, "dir": "s2c", "retransmission": False},
        "conn": "quic-example.com",
        "protocol": "h3",
    }


class TestSchema:
    def test_valid_event_passes(self):
        validate_event(good_event())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda e: e.update(time=-1.0),
            lambda e: e.update(time=True),
            lambda e: e.update(name="transport:not_a_thing"),
            lambda e: e.update(data=[1, 2]),
            lambda e: e.update(data={"nested": {"x": 1}}),
            lambda e: e.pop("conn"),
            lambda e: e.update(mode=7),
        ],
    )
    def test_invalid_events_rejected(self, mutate):
        event = good_event()
        mutate(event)
        with pytest.raises(TraceSchemaError):
            validate_event(event)

    def test_validate_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(good_event()) + "\n\n" + json.dumps(good_event()) + "\n")
        assert validate_jsonl(str(path)) == 2

    def test_validate_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(good_event()) + "\nnot json\n")
        with pytest.raises(TraceSchemaError, match="trace.jsonl:2"):
            validate_jsonl(str(path))


class TestManifest:
    def test_build_and_round_trip(self, tmp_path):
        manifest = build_run_manifest(
            invocation={"scale": "smoke", "seed": 7},
            experiments=[
                {"id": "table2", "title": "Table II", "wall_clock_s": 1.25},
                {"id": "fig9", "title": "Fig. 9", "wall_clock_s": 2.0},
            ],
            counters={"format": "repro-h3cdn-counters/1", "counters": {},
                      "gauges": {}, "histograms": {}},
            trace_files=["trace.jsonl"],
        )
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["total_wall_clock_s"] == pytest.approx(3.25)
        path = tmp_path / "run.json"
        write_run_manifest(str(path), manifest)
        assert read_run_manifest(str(path)) == manifest

    def test_write_rejects_non_manifest(self, tmp_path):
        with pytest.raises(ValueError):
            write_run_manifest(str(tmp_path / "x.json"), {"format": "other"})

    def test_read_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            read_run_manifest(str(path))


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------


class TestCliObservability:
    def test_trace_dir_json_and_counters(self, tmp_path, capsys):
        from repro.experiments.cli import main

        trace_dir = tmp_path / "out"
        json_path = tmp_path / "results.json"
        code = main(
            [
                "--scale", "smoke", "--sites", "5",
                "--experiments", "table2",
                "--counters",
                "--trace-dir", str(trace_dir),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "merged campaign totals" in out
        assert "transport.handshakes.completed" in out

        n_events = validate_jsonl(str(trace_dir / "trace.jsonl"))
        assert n_events > 0

        manifest = read_run_manifest(str(trace_dir / "run.json"))
        assert manifest["invocation"]["trace"] is True
        assert manifest["experiments"][0]["id"] == "table2"
        assert manifest["counters"] is not None
        assert manifest["trace_files"] == ["trace.jsonl"]

        payload = json.loads(json_path.read_text())
        assert payload["format"] == "repro-h3cdn-results/1"
        assert payload["manifest"]["format"] == MANIFEST_FORMAT
        assert "table2" in payload["experiments"]
        assert payload["experiments"]["table2"]["data"]

    def test_json_without_trace_dir(self, tmp_path):
        from repro.experiments.cli import main

        json_path = tmp_path / "results.json"
        code = main(
            ["--scale", "smoke", "--sites", "5",
             "--experiments", "table2", "--json", str(json_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["manifest"]["trace_files"] == []
        # Counters ride along automatically when --json asks for data.
        assert payload["manifest"]["counters"] is not None
