"""Tests for the experiment drivers, registry, and CLI."""

import pytest

from repro.core import H3CdnStudy, StudyConfig
from repro.experiments import EXPERIMENTS, format_table, run_all, run_experiment
from repro.experiments.cli import SCALES, build_parser, main, make_study


@pytest.fixture(scope="module")
def study():
    return H3CdnStudy(StudyConfig(n_sites=14, seed=3, max_loss_sweep_pages=4))


class TestRegistry:
    def test_covers_every_paper_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig-fallback", "fig-migration", "fig-amplification",
            "fig-miss-storm", "fig-flash-crowd",
        }

    def test_order_follows_the_paper(self):
        assert list(EXPERIMENTS) == [
            "table1", "table2", "fig2", "fig3", "fig4", "fig5",
            "fig6", "fig7", "fig8", "table3", "fig9", "fig-fallback",
            "fig-migration", "fig-amplification", "fig-miss-storm",
            "fig-flash-crowd",
        ]

    def test_specs_are_well_formed(self):
        for experiment_id, spec in EXPERIMENTS.items():
            assert spec.name == experiment_id
            assert spec.title
            assert callable(spec.run)

    def test_unknown_experiment_rejected(self, study):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", study)

    def test_run_all_produces_results(self, study):
        results = run_all(study)
        assert [r.experiment_id for r in results] == list(EXPERIMENTS)
        for result in results:
            assert result.lines, result.experiment_id
            assert result.data, result.experiment_id
            rendered = result.render()
            assert result.experiment_id in rendered


class TestDriverData:
    def test_table1_release_years(self, study):
        result = run_experiment("table1", study)
        assert result.data["release_years"]["cloudflare"] == 2019
        assert result.data["release_years"]["akamai"] == 2023

    def test_table2_shares(self, study):
        result = run_experiment("table2", study)
        assert 0.4 < result.data["cdn_share"] < 0.9
        assert 0.15 < result.data["h3_share"] < 0.55

    def test_fig2_shares_sum_to_one(self, study):
        result = run_experiment("fig2", study)
        assert sum(result.data["market_share"].values()) == pytest.approx(1.0)
        assert sum(result.data["h3_share_by_provider"].values()) == pytest.approx(1.0)

    def test_fig3_series_monotone(self, study):
        result = run_experiment("fig3", study)
        ys = [y for __, y in result.data["ccdf_series"]]
        assert ys == sorted(ys, reverse=True)

    def test_fig4_counts_sum_to_pages(self, study):
        result = run_experiment("fig4", study)
        assert sum(result.data["pages_by_provider_count"].values()) == 14

    def test_fig6_has_all_groups(self, study):
        result = run_experiment("fig6", study)
        assert set(result.data["group_reductions"]) == {
            "Low", "Medium-Low", "Medium-High", "High",
        }
        assert set(result.data["phase_medians"]) == {"connection", "wait", "receive"}

    def test_fig7_difference_positive_overall(self, study):
        result = run_experiment("fig7", study)
        assert sum(result.data["difference_by_group"].values()) >= 0

    def test_fig9_has_three_series(self, study):
        result = run_experiment("fig9", study)
        assert set(result.data["slopes"]) == {0.0, 0.005, 0.01}

    def test_table3_structure(self, study):
        result = run_experiment("table3", study)
        assert result.data["high"]["avg_shared_providers"] >= (
            result.data["low"]["avg_shared_providers"]
        )


class TestFormatting:
    def test_format_table_aligns_columns(self):
        lines = format_table(("a", "bbbb"), [("x", 1), ("yyyy", 22)])
        assert lines[0].index("bbbb") == lines[2].index("1") or True
        assert len(lines) == 4  # header, rule, two rows

    def test_format_table_handles_empty_rows(self):
        lines = format_table(("a",), [])
        assert len(lines) == 2


class TestCli:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["--experiments", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_scales_defined(self):
        assert set(SCALES) == {"smoke", "quick", "medium", "full"}
        assert SCALES["full"][0] == 325

    def test_make_study_applies_overrides(self):
        args = build_parser().parse_args(["--scale", "smoke", "--sites", "9", "--seed", "5"])
        study = make_study(args)
        assert study.config.n_sites == 9
        assert study.config.seed == 5

    def test_single_experiment_end_to_end(self, capsys):
        assert main(["--scale", "smoke", "--sites", "8", "--experiments", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "CCDF" in out
