"""Failure-injection and teardown-path tests."""

import random

import pytest

from repro.cdn import OriginServer
from repro.events import EventLoop
from repro.http import ConnectionPool, HttpProtocol
from repro.netsim import NetemProfile, NetworkPath, PacketKind
from repro.transport import QuicConnection, TcpConnection, TransportConfig, TransportError

RTT = 30.0


def make_path(loop, loss=0.0, seed=0):
    return NetworkPath(loop, NetemProfile(delay_ms=RTT / 2, loss_rate=loss,
                                          rate_mbps=None),
                       rng=random.Random(seed))


class TestConnectionTeardown:
    def test_close_stops_all_timers(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop))
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        conn.request(400, 50_000)
        conn.close()
        # Draining the loop must terminate (no armed timers rescheduling).
        loop.run(max_events=100_000)
        assert conn.closed

    def test_closed_connection_rejects_requests(self):
        loop = EventLoop()
        conn = QuicConnection(loop, make_path(loop), resumed=True)
        conn.connect(lambda r: None)
        conn.close()
        with pytest.raises(TransportError):
            conn.request(400, 1000)

    def test_close_before_connect_is_safe(self):
        loop = EventLoop()
        conn = TcpConnection(loop, make_path(loop))
        conn.close()
        loop.run()
        assert conn.closed


class TestRequestLossExhaustion:
    def test_request_gives_up_after_max_retries(self):
        loop = EventLoop()
        path = make_path(loop)
        conn = QuicConnection(
            loop, path, config=TransportConfig(max_request_retries=2)
        )
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        # Black-hole all request (client->server) data packets.
        path.uplink.drop_filter = lambda pkt: pkt.kind is PacketKind.DATA
        conn.request(400, 1000)
        with pytest.raises(TransportError, match="request packet lost"):
            loop.run()

    def test_duplicate_request_packets_are_idempotent(self):
        """A retransmitted request that races its original must not
        trigger a second response."""
        loop = EventLoop()
        path = make_path(loop)
        # Delay, don't drop: force a timeout-driven duplicate by using
        # a tiny RTO relative to the RTT.
        conn = QuicConnection(
            loop, path,
            config=TransportConfig(initial_rto_ms=5.0, min_rto_ms=1.0),
        )
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 3000)
        loop.run_until(lambda: stream.complete)
        assert stream.received == 3000  # exactly once despite duplicates


class TestPoolUnderLoss:
    def test_h1_queue_survives_loss(self):
        loop = EventLoop()
        origin = OriginServer("legacy.example", supports_h2=False,
                              base_think_ms=5.0)
        pool = ConnectionPool(loop, rng=random.Random(3))
        path = make_path(loop, loss=0.05, seed=9)
        records = []
        for i in range(10):
            pool.fetch(origin, path, HttpProtocol.H1,
                       f"https://legacy.example/r{i}", 400, 3000, records.append)
        loop.run_until(lambda: len(records) == 10)
        assert all(r.response_bytes == 3000 for r in records)

    def test_multiplexed_fetches_survive_heavy_loss(self):
        from repro.cdn import EdgeServer, get_provider

        loop = EventLoop()
        edge = EdgeServer("assets.fastly.net", get_provider("fastly"),
                          resumption_rate=1.0)
        pool = ConnectionPool(loop, rng=random.Random(4))
        path = make_path(loop, loss=0.15, seed=10)
        records = []
        for i in range(8):
            pool.fetch(edge, path, HttpProtocol.H3,
                       f"https://assets.fastly.net/r{i}", 400, 8000,
                       records.append)
        loop.run_until(lambda: len(records) == 8)
        assert len({r.url for r in records}) == 8

    def test_handshake_black_hole_raises(self):
        loop = EventLoop()
        path = make_path(loop)
        path.uplink.drop_filter = lambda pkt: True
        conn = TcpConnection(
            loop, path, config=TransportConfig(max_handshake_retries=2)
        )
        conn.connect(lambda r: None)
        with pytest.raises(TransportError, match="handshake failed"):
            loop.run()
