"""Deep telemetry: metrics sampler, spans, progress, exporters.

The contracts under test, in descending order of importance:

* **Bit-identity** — metrics sampling, spans, loop profiling and
  progress reporting never change a single simulation result.
* **Store-key exclusion** — telemetry knobs are absent from result
  store content addresses, so toggling them replays warm.
* **Worker determinism** — metrics records and span *sim* fields are
  identical for any worker count; the run manifest round-trips with
  the new sections either way.
* **Standard exports** — the qlog document carries the required 0.3
  fields and the Perfetto document well-formed complete events.
"""

import io
import json
import types

import pytest

from repro.measurement import Campaign, CampaignConfig
from repro.obs import (
    SPAN_KINDS,
    ConnectionSampler,
    LinkSampler,
    NULL_SAMPLER,
    ProgressReporter,
    TraceSchemaError,
    build_run_manifest,
    read_run_manifest,
    spans_to_trace_events,
    timeseries,
    to_qlog,
    validate_record,
    validate_span,
    write_run_manifest,
)
from repro.obs.export import main as export_main
from repro.obs.schema import validate_events
from repro.store import ResultStore
from repro.store.keys import campaign_config_hash, visit_config_part
from repro.web.topsites import GeneratorConfig, cached_universe

SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)

ALL_ON = dict(
    collect_counters=True,
    trace=True,
    metrics_interval_ms=5.0,
    spans=True,
    profile_loop=True,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


@pytest.fixture(scope="module")
def telemetry_runs():
    """One fully-instrumented campaign at workers=1 and workers=4,
    plus the equivalent telemetry-free run."""
    universe = small_universe()
    pages = universe.pages[:3]
    plain = Campaign(universe, CampaignConfig(seed=3)).run(pages, workers=1)
    runs = {
        workers: Campaign(universe, CampaignConfig(seed=3, **ALL_ON)).run(
            pages, workers=workers
        )
        for workers in (1, 4)
    }
    return types.SimpleNamespace(plain=plain, w1=runs[1], w4=runs[4])


# ----------------------------------------------------------------------
# Bit-identity and worker determinism
# ----------------------------------------------------------------------


class TestBitIdentity:
    def test_full_telemetry_does_not_change_results(self, telemetry_runs):
        for pv_plain, pv_obs in zip(
            telemetry_runs.plain.paired_visits, telemetry_runs.w1.paired_visits
        ):
            assert pv_plain.h2.plt_ms == pv_obs.h2.plt_ms
            assert pv_plain.h3.plt_ms == pv_obs.h3.plt_ms
            assert pv_plain.h2.har.to_dict() == pv_obs.h2.har.to_dict()
            assert pv_plain.h3.har.to_dict() == pv_obs.h3.har.to_dict()

    def test_metrics_records_identical_across_workers(self, telemetry_runs):
        assert list(telemetry_runs.w1.metrics_events()) == list(
            telemetry_runs.w4.metrics_events()
        )

    def test_span_sim_fields_identical_across_workers(self, telemetry_runs):
        def sim_only(spans):
            return [
                {k: v for k, v in span.items() if k != "wall_ms"}
                for span in spans
            ]

        assert sim_only(telemetry_runs.w1.span_records()) == sim_only(
            telemetry_runs.w4.span_records()
        )


# ----------------------------------------------------------------------
# Store-key exclusion
# ----------------------------------------------------------------------


class TestStoreKeyExclusion:
    def test_telemetry_knobs_absent_from_visit_keys(self):
        base = CampaignConfig(seed=3)
        instrumented = CampaignConfig(
            seed=3,
            metrics_interval_ms=2.5,
            metrics_max_samples=64,
            spans=True,
            profile_loop=True,
            progress=True,
        )
        assert visit_config_part(base) == visit_config_part(instrumented)
        assert campaign_config_hash(base) == campaign_config_hash(instrumented)

    def test_observed_run_replays_warm_from_plain_store(self, tmp_path):
        universe = small_universe()
        pages = universe.pages[:2]
        store = ResultStore(str(tmp_path / "st"))
        cold = Campaign(universe, CampaignConfig(seed=3)).run(
            pages, store=store, run_name="cold"
        )
        assert cold.store_stats.misses == len(cold.paired_visits)
        warm = Campaign(
            universe,
            CampaignConfig(seed=3, metrics_interval_ms=5.0, spans=True,
                           progress=True),
        ).run(pages, store=store, run_name="warm")
        store.close()
        assert warm.store_stats.hit_rate == 1.0
        for pv_cold, pv_warm in zip(cold.paired_visits, warm.paired_visits):
            assert pv_cold.h2.plt_ms == pv_warm.h2.plt_ms
            assert pv_cold.h3.plt_ms == pv_warm.h3.plt_ms


# ----------------------------------------------------------------------
# Metrics sampler
# ----------------------------------------------------------------------


class TestMetricsSampler:
    def test_records_schema_valid(self, telemetry_runs):
        records = list(telemetry_runs.w1.metrics_events())
        assert records
        assert validate_events(records) == len(records)
        names = {record["name"] for record in records}
        assert names == {"metrics:transport_sample", "metrics:link_sample"}

    def test_transport_samples_carry_state_fields(self, telemetry_runs):
        sample = next(
            record
            for record in telemetry_runs.w1.metrics_events()
            if record["name"] == "metrics:transport_sample"
        )
        assert {"cwnd", "bytes_in_flight", "srtt_ms", "goodput_kbps"} <= set(
            sample["data"]
        )
        assert sample["data"]["cwnd"] > 0

    def test_delta_t_gating(self, telemetry_runs):
        """Per connection, consecutive periodic samples are at least one
        interval apart (loss/PTO-forced samples may be closer, so the
        check allows isolated short gaps but not systematic ones)."""
        by_conn = {}
        for record in telemetry_runs.w1.metrics_events():
            if record["name"] != "metrics:transport_sample":
                continue
            key = (record["page"], record["mode"], record["conn"])
            by_conn.setdefault(key, []).append(record["time"])
        assert by_conn
        all_gaps = []
        for times in by_conn.values():
            assert times == sorted(times)
            all_gaps += [b - a for a, b in zip(times, times[1:])]
        assert all_gaps
        short = sum(1 for gap in all_gaps if gap < 2.5)
        assert short <= len(all_gaps) // 2

    def test_ring_buffer_bounds_samples(self):
        sampler = ConnectionSampler("c", "h3", interval_ms=1.0, max_samples=8)
        loop = types.SimpleNamespace(now=0.0)
        conn = types.SimpleNamespace(
            loop=loop,
            _delivered_bytes=0,
            _bytes_in_flight=5,
            cc=types.SimpleNamespace(cwnd_bytes=14600),
            rtt=types.SimpleNamespace(srtt_ms=20.0),
        )
        for ms in range(100):
            loop.now = float(ms)
            conn._delivered_bytes += 1460
            sampler.on_ack(conn)
        assert len(sampler) == 8  # oldest samples dropped first
        records = sampler.records()
        assert records[-1]["time"] == 99.0
        assert records[-1]["data"]["goodput_kbps"] > 0

    def test_null_sampler_is_falsy_noop(self):
        assert not NULL_SAMPLER
        NULL_SAMPLER.on_ack(object())
        NULL_SAMPLER.on_loss(object())

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ConnectionSampler("c", "h3", interval_ms=0.0)
        with pytest.raises(ValueError):
            LinkSampler("l", interval_ms=-1.0)

    def test_timeseries_groups_by_conn(self, telemetry_runs):
        series = timeseries(
            telemetry_runs.w1.metrics_events(),
            "cwnd",
            name="metrics:transport_sample",
        )
        assert series
        for points in series.values():
            assert all(isinstance(t, float) for t, __ in points)
            assert [t for t, __ in points] == sorted(t for t, __ in points)

    def test_timeseries_feeds_textplot(self, telemetry_runs):
        from repro.analysis.textplot import line_chart

        series = timeseries(telemetry_runs.w1.metrics_events(), "cwnd")
        chart = line_chart(series)
        assert chart


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_hierarchy_kinds_and_phases(self, telemetry_runs):
        spans = list(telemetry_runs.w1.span_records())
        kinds = {span["kind"] for span in spans}
        assert kinds == {"visit", "phase", "transfer"}
        assert kinds <= SPAN_KINDS
        phases = {
            span["name"].split(":")[0]
            for span in spans
            if span["kind"] == "phase"
        }
        assert phases == {"dns", "connect", "tls", "request"}

    def test_parents_resolve_within_visit(self, telemetry_runs):
        by_visit = {}
        for span in telemetry_runs.w1.span_records():
            key = (span["page"], span["probe"], span["mode"])
            by_visit.setdefault(key, {})[span["id"]] = span
        for spans in by_visit.values():
            roots = [s for s in spans.values() if s["parent"] is None]
            assert roots and all(s["kind"] == "visit" for s in roots)
            for span in spans.values():
                if span["parent"] is not None:
                    parent = spans[span["parent"]]
                    assert parent["t0"] <= span["t0"]

    def test_spans_are_complete_and_validated(self, telemetry_runs):
        for span in telemetry_runs.w1.span_records():
            validate_record(span)
            assert span["t1"] >= span["t0"] >= 0.0
            assert span["wall_ms"] is None or span["wall_ms"] >= 0.0


# ----------------------------------------------------------------------
# Schema dispatch
# ----------------------------------------------------------------------


def good_span():
    return {
        "id": 3,
        "parent": 1,
        "kind": "phase",
        "name": "connect:example.com",
        "t0": 1.0,
        "t1": 4.0,
        "wall_ms": 0.2,
    }


class TestSchemaDispatch:
    def test_unknown_record_shape_is_an_error(self):
        with pytest.raises(TraceSchemaError, match="neither"):
            validate_record({"time": 1.0, "data": {}})

    def test_unregistered_data_key_is_an_error(self):
        event = {
            "time": 1.0,
            "name": "transport:packet_acked",
            "data": {"seq": 1, "bogus_field": 2},
            "conn": "c",
            "protocol": "h3",
        }
        with pytest.raises(TraceSchemaError, match="bogus_field"):
            validate_record(event)

    def test_valid_span_passes(self):
        validate_span(good_span())
        validate_record(good_span())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.update(kind="nap"),
            lambda s: s.update(id=0),
            lambda s: s.update(id=True),
            lambda s: s.update(parent="one"),
            lambda s: s.update(t0=-1.0),
            lambda s: s.update(t1=0.5),
            lambda s: s.update(wall_ms=-2.0),
            lambda s: s.pop("name"),
        ],
    )
    def test_invalid_spans_rejected(self, mutate):
        span = good_span()
        mutate(span)
        with pytest.raises(TraceSchemaError):
            validate_span(span)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestQlogExport:
    def test_required_qlog_03_fields(self, telemetry_runs):
        events = list(telemetry_runs.w1.trace_events()) + list(
            telemetry_runs.w1.metrics_events()
        )
        document = to_qlog(events)
        assert document["qlog_version"] == "0.3"
        assert document["qlog_format"] == "JSON"
        assert document["traces"]
        for trace in document["traces"]:
            assert trace["vantage_point"]["type"] == "client"
            common = trace["common_fields"]
            assert common["time_format"] == "relative"
            assert common["reference_time"] == 0
            assert common["ODCID"]
            assert common["protocol_type"] == ["h3"]
            times = [event["time"] for event in trace["events"]]
            assert times == sorted(times)

    def test_quic_only_by_default(self, telemetry_runs):
        events = list(telemetry_runs.w1.trace_events())
        protocols = {e["protocol"] for e in events}
        assert "h2" in protocols  # the h2-only arm did run
        document = to_qlog(events)
        assert all(
            t["common_fields"]["protocol_type"] == ["h3"]
            for t in document["traces"]
        )
        everything = to_qlog(events, protocols=None)
        assert len(everything["traces"]) > len(document["traces"])

    def test_packet_and_sampler_event_mapping(self, telemetry_runs):
        events = list(telemetry_runs.w1.trace_events()) + list(
            telemetry_runs.w1.metrics_events()
        )
        document = to_qlog(events)
        merged = [e for t in document["traces"] for e in t["events"]]
        sent = next(e for e in merged if e["name"] == "transport:packet_sent")
        assert sent["data"]["header"]["packet_number"] is not None
        assert sent["data"]["raw"]["length"] > 0
        updated = [e for e in merged if e["name"] == "recovery:metrics_updated"]
        assert any("smoothed_rtt" in e["data"] for e in updated)  # sampler-born
        assert any("ssthresh" in e["data"] for e in updated)  # tracer-born
        lost = [e for e in merged if e["name"] == "recovery:packet_lost"]
        for event in lost:
            assert event["data"]["trigger"] in ("packet_threshold", "pto")


class TestPerfettoExport:
    def test_complete_events_and_thread_names(self, telemetry_runs):
        spans = list(telemetry_runs.w1.span_records())
        document = spans_to_trace_events(spans)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == len(spans)
        assert metas and all(e["name"] == "thread_name" for e in metas)
        tids = {e["tid"] for e in xs}
        assert tids == {e["tid"] for e in metas}
        for event in xs:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)

    def test_microsecond_scaling(self):
        span = dict(good_span(), page="p", probe="pr", mode="h2-only")
        document = spans_to_trace_events([span])
        event = next(e for e in document["traceEvents"] if e["ph"] == "X")
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(3000.0)

    def test_export_cli_round_trip(self, tmp_path, telemetry_runs):
        spans_path = tmp_path / "spans.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        with open(spans_path, "w") as handle:
            for span in telemetry_runs.w1.span_records():
                handle.write(json.dumps(span) + "\n")
        with open(trace_path, "w") as handle:
            for event in telemetry_runs.w1.trace_events():
                handle.write(json.dumps(event) + "\n")
        out_qlog = tmp_path / "out.qlog"
        out_perfetto = tmp_path / "out.json"
        assert export_main(["qlog", str(trace_path), "-o", str(out_qlog)]) == 0
        assert export_main(
            ["perfetto", str(spans_path), "-o", str(out_perfetto)]
        ) == 0
        assert json.loads(out_qlog.read_text())["qlog_version"] == "0.3"
        assert json.loads(out_perfetto.read_text())["traceEvents"]


# ----------------------------------------------------------------------
# Progress reporter
# ----------------------------------------------------------------------


def fake_outcome(events=1000.0, requests=10.0, fastpath=4.0, status="ok"):
    counters = {
        "loop.events_processed": events,
        "pool.requests": requests,
        "transport.fastpath.epochs": fastpath,
    }
    visit = types.SimpleNamespace(counters={"counters": counters})
    return types.SimpleNamespace(status=status, h2=visit, h3=visit)


class TestProgressReporter:
    def test_summary_fields(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=3, workers=2, stream=stream)
        reporter.add_replayed(1)
        reporter.add_outcome(fake_outcome())
        reporter.add_outcome(fake_outcome(status="failed"))
        summary = reporter.finish()
        assert summary["visits"] == 3
        assert summary["total"] == 3
        assert summary["replayed"] == 1
        assert summary["failed"] == 1
        assert summary["events"] == 4000  # 2 outcomes x 2 modes x 1000
        assert summary["workers"] == 2
        assert summary["visits_per_s"] > 0
        assert summary["fastpath_hit_rate"] == pytest.approx(16 / 40)
        assert summary["peak_rss_kb"] > 0

    def test_final_visit_always_heartbeats(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, interval_s=3600.0, stream=stream)
        reporter.add_outcome(fake_outcome())
        assert stream.getvalue() == ""  # interval not reached, not done
        reporter.add_outcome(fake_outcome())
        line = stream.getvalue()
        assert "[progress] 2/2 visits (100%)" in line
        assert reporter.finish()["heartbeats"] == 1

    def test_heartbeat_line_mentions_rates(self):
        reporter = ProgressReporter(total=10, stream=io.StringIO())
        reporter.add_outcome(fake_outcome())
        line = reporter.heartbeat_line()
        assert "visits/s" in line
        assert "ev/s" in line
        assert "eta" in line

    def test_counters_missing_is_fine(self):
        reporter = ProgressReporter(total=1, stream=io.StringIO())
        visit = types.SimpleNamespace(counters=None)
        reporter.add_outcome(types.SimpleNamespace(status="ok", h2=visit, h3=visit))
        assert reporter.finish()["events"] == 0


# ----------------------------------------------------------------------
# Campaign-level progress + profiling plumbing
# ----------------------------------------------------------------------


class TestCampaignPlumbing:
    def test_progress_summary_on_result(self, capsys):
        universe = small_universe()
        config = CampaignConfig(seed=3, collect_counters=True, progress=True)
        result = Campaign(universe, config).run(universe.pages[:2], workers=1)
        summary = result.progress
        assert summary["visits"] == summary["total"] == len(result.paired_visits)
        assert summary["events"] > 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        assert "[progress]" not in captured.out

    def test_loop_profile_merged_across_workers(self, telemetry_runs):
        for result in (telemetry_runs.w1, telemetry_runs.w4):
            profile = result.loop_profile
            assert profile
            assert all(
                stats["count"] > 0 and stats["total_ms"] >= 0.0
                for stats in profile.values()
            )
        assert set(telemetry_runs.w1.loop_profile) == set(
            telemetry_runs.w4.loop_profile
        )
        counts1 = {k: v["count"] for k, v in telemetry_runs.w1.loop_profile.items()}
        counts4 = {k: v["count"] for k, v in telemetry_runs.w4.loop_profile.items()}
        assert counts1 == counts4

    def test_profile_stripped_from_store_documents(self, tmp_path):
        universe = small_universe()
        store = ResultStore(str(tmp_path / "st"))
        Campaign(
            universe, CampaignConfig(seed=3, profile_loop=True)
        ).run(universe.pages[:1], store=store, run_name="profiled")
        warm = Campaign(
            universe, CampaignConfig(seed=3, profile_loop=True)
        ).run(universe.pages[:1], store=store, run_name="profiled2")
        store.close()
        assert warm.store_stats.hit_rate == 1.0
        # Replayed visits have no profile (it is wall-clock diagnostic),
        # so the merged campaign profile is absent on warm runs.
        assert warm.loop_profile in (None, {})


# ----------------------------------------------------------------------
# Manifest round-trip with the new sections (workers 1 vs 4)
# ----------------------------------------------------------------------


class TestManifestSections:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_round_trip_with_spans_and_metrics(self, tmp_path, workers,
                                               telemetry_runs):
        result = telemetry_runs.w1 if workers == 1 else telemetry_runs.w4
        manifest = build_run_manifest(
            invocation={"scale": "smoke", "seed": 3, "workers": workers},
            experiments=[{"id": "table2", "title": "t", "wall_clock_s": 1.0}],
            counters=result.counter_totals().to_dict(),
            trace_files=["trace.jsonl", "metrics.jsonl", "spans.jsonl"],
            metrics={
                "interval_ms": 5.0,
                "records": sum(1 for __ in result.metrics_events()),
            },
            spans={"records": sum(1 for __ in result.span_records())},
            progress={"visits": len(result.paired_visits)},
            loop_profile=result.loop_profile,
        )
        path = tmp_path / "run.json"
        write_run_manifest(str(path), manifest)
        restored = read_run_manifest(str(path))
        assert restored == manifest
        assert restored["metrics"]["records"] > 0
        assert restored["spans"]["records"] > 0
        assert restored["loop_profile"]

    def test_sections_absent_when_disabled(self):
        manifest = build_run_manifest(
            invocation={},
            experiments=[],
            counters=None,
            trace_files=[],
        )
        for key in ("metrics", "spans", "progress", "loop_profile"):
            assert key not in manifest

    def test_manifest_sections_identical_across_workers(self, telemetry_runs):
        records1 = sum(1 for __ in telemetry_runs.w1.metrics_events())
        records4 = sum(1 for __ in telemetry_runs.w4.metrics_events())
        assert records1 == records4
        spans1 = sum(1 for __ in telemetry_runs.w1.span_records())
        spans4 = sum(1 for __ in telemetry_runs.w4.span_records())
        assert spans1 == spans4


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------


class TestCliTelemetry:
    def test_all_flags_write_all_families(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.obs import validate_jsonl

        trace_dir = tmp_path / "out"
        code = main(
            [
                "--scale", "smoke", "--sites", "5",
                "--experiments", "table2", "--counters",
                "--metrics-interval", "5", "--spans", "--profile",
                "--progress",
                "--trace-dir", str(trace_dir),
                "--json", str(tmp_path / "results.json"),
            ]
        )
        assert code == 0
        for name in ("trace.jsonl", "metrics.jsonl", "spans.jsonl"):
            assert validate_jsonl(str(trace_dir / name)) > 0
        manifest = read_run_manifest(str(trace_dir / "run.json"))
        assert manifest["invocation"]["metrics_interval_ms"] == 5.0
        assert manifest["invocation"]["spans"] is True
        assert manifest["metrics"]["records"] > 0
        assert manifest["spans"]["records"] > 0
        assert manifest["progress"]["visits"] > 0
        assert manifest["loop_profile"]
        spans = [
            json.loads(line)
            for line in (trace_dir / "spans.jsonl").read_text().splitlines()
        ]
        assert spans[0]["kind"] == "campaign"  # synthetic root
        out = capsys.readouterr().out
        assert "loop profile" in out.lower() or "profile" in out.lower()
