"""Tests for extension features beyond the paper's core evaluation:
global vantage points, CUBIC end-to-end, bursty loss, TLS1.2 lanes,
and pool/browser edge cases."""

import random

import pytest

from repro.browser import Browser, BrowserConfig
from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.events import EventLoop
from repro.measurement import (
    Campaign,
    CampaignConfig,
    Probe,
    ProbeNetProfile,
    ServerFarm,
    global_vantage_points,
)
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection, TcpConnection, TlsVersion, TransportConfig
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def universe():
    return TopSitesGenerator(GeneratorConfig(n_sites=6)).generate(seed=31)


class TestGlobalVantagePoints:
    def test_six_regions(self):
        vps = global_vantage_points()
        assert len(vps) == 6
        assert {vp.name for vp in vps} >= {"utah", "frankfurt", "singapore"}

    def test_remote_regions_are_farther(self):
        by_name = {vp.name: vp for vp in global_vantage_points()}
        assert by_name["singapore"].rtt_scale > by_name["utah"].rtt_scale
        assert by_name["saopaulo"].extra_delay_ms > by_name["frankfurt"].extra_delay_ms

    def test_remote_probe_sees_slower_pages(self, universe):
        def plt_from(vp_name):
            vp = {v.name: v for v in global_vantage_points()}[vp_name]
            probe = Probe("p", universe, net_profile=vp.net_profile(), seed=3)
            return probe.measure_page(universe.pages[1], H2_ONLY, visits=1).plt_ms

        assert plt_from("singapore") > plt_from("utah")

    def test_campaign_over_global_vantage_points(self, universe):
        campaign = Campaign(
            universe,
            CampaignConfig(seed=4, max_vantage_points=None),
            vantage_points=global_vantage_points(),
        )
        result = campaign.run(universe.pages[:1])
        assert len(result.paired_visits) == 6  # one probe per region


class TestCubicEndToEnd:
    def test_campaign_runs_with_cubic(self, universe):
        config = CampaignConfig(
            seed=5, transport_config=TransportConfig(congestion_control="cubic")
        )
        result = Campaign(universe, config).run(universe.pages[:2])
        assert len(result.paired_visits) == 2
        for pv in result.paired_visits:
            assert pv.h2.plt_ms > 0 and pv.h3.plt_ms > 0

    def test_cubic_transfer_under_loss(self):
        loop = EventLoop()
        path = NetworkPath(
            loop,
            NetemProfile(delay_ms=15.0, loss_rate=0.03, rate_mbps=50.0),
            rng=random.Random(3),
        )
        conn = QuicConnection(
            loop, path, config=TransportConfig(congestion_control="cubic")
        )
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 150_000)
        loop.run_until(lambda: stream.complete)
        assert stream.received == 150_000
        assert conn.cc.loss_events > 0


class TestBurstyLoss:
    def test_probe_profile_plumbs_bursty_loss(self, universe):
        profile = ProbeNetProfile(loss_rate=0.02, bursty_loss=True)
        host = next(iter(universe.hosts.values()))
        netem = profile.netem_for(host)
        assert netem.bursty_loss
        assert netem.loss_rate == 0.02

    def test_page_loads_under_bursty_loss(self, universe):
        loop = EventLoop()
        farm = ServerFarm(
            loop,
            universe.hosts,
            ProbeNetProfile(loss_rate=0.02, bursty_loss=True),
            rng=random.Random(6),
        )
        farm.warm_caches(universe.pages)
        browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(7))
        visit = browser.visit(universe.pages[4])
        assert len(visit.entries) == universe.pages[4].total_requests


class TestTls12Lane:
    def test_tls12_handshake_slower_end_to_end(self):
        def connect_time(tls_version):
            loop = EventLoop()
            path = NetworkPath(
                loop, NetemProfile(delay_ms=15.0, rate_mbps=None),
                rng=random.Random(0),
            )
            conn = TcpConnection(loop, path, tls_version=tls_version)
            done = []
            conn.connect(done.append)
            loop.run_until(lambda: bool(done))
            return done[0].connect_ms

        assert connect_time(TlsVersion.TLS12) == pytest.approx(90.0)
        assert connect_time(TlsVersion.TLS13) == pytest.approx(60.0)

    def test_universe_contains_tls12_origins(self):
        universe = TopSitesGenerator(GeneratorConfig(n_sites=40)).generate(seed=1)
        origins = [h for h in universe.hosts.values() if h.kind == "origin"]
        tls12 = sum(1 for h in origins if h.tls_version is TlsVersion.TLS12)
        assert 0 < tls12 < len(origins)

    def test_edges_are_always_tls13(self):
        universe = TopSitesGenerator(GeneratorConfig(n_sites=40)).generate(seed=1)
        edges = [h for h in universe.hosts.values() if h.kind == "edge"]
        assert all(h.tls_version is TlsVersion.TLS13 for h in edges)


class TestHandshakeThrottle:
    def test_many_connections_queue_handshakes(self, universe):
        """With a tiny handshake budget, openers must wait (blocked)."""
        from repro.cdn import OriginServer
        from repro.http import ConnectionPool, HttpProtocol

        loop = EventLoop()
        config = TransportConfig(max_concurrent_handshakes=1)
        pool = ConnectionPool(loop, transport_config=config)
        records = []
        for index in range(3):
            server = OriginServer(f"host{index}.example", base_think_ms=5.0)
            path = NetworkPath(
                loop, NetemProfile(delay_ms=15.0, rate_mbps=None),
                rng=random.Random(index),
            )
            pool.fetch(server, path, HttpProtocol.H2,
                       f"https://host{index}.example/", 400, 1000, records.append)
        loop.run_until(lambda: len(records) == 3)
        blocked = sorted(r.timing.blocked for r in records)
        assert blocked[0] == 0.0
        assert blocked[1] >= 60.0  # waited for the first handshake
        assert blocked[2] >= 120.0

    def test_zero_rtt_bypasses_throttle(self):
        from repro.cdn import EdgeServer, get_provider
        from repro.http import ConnectionPool, HttpProtocol
        from repro.tls import SessionTicketCache

        loop = EventLoop()
        cache = SessionTicketCache()
        config = TransportConfig(max_concurrent_handshakes=1)
        # Distinct providers: same-provider fetches would coalesce onto
        # one connection and never need a second handshake.
        server_slow = EdgeServer(
            "slow.gstatic.com", get_provider("google"), resumption_rate=1.0
        )
        server_fast = EdgeServer(
            "fonts.gstatic.com", get_provider("quic_cloud"), resumption_rate=1.0
        )
        cache.store("fonts.gstatic.com", now_ms=0.0)

        def path(seed):
            return NetworkPath(
                loop, NetemProfile(delay_ms=15.0, rate_mbps=None),
                rng=random.Random(seed),
            )

        pool = ConnectionPool(loop, session_cache=cache, transport_config=config)
        records = []
        # Occupy the single handshake slot with a full H3 handshake,
        # then issue a 0-RTT fetch: it must not wait.
        pool.fetch(server_slow, path(1), HttpProtocol.H3,
                   "https://slow.gstatic.com/a", 400, 1000, records.append)
        pool.fetch(server_fast, path(2), HttpProtocol.H3,
                   "https://fonts.gstatic.com/b", 400, 1000, records.append)
        loop.run_until(lambda: len(records) == 2)
        zero_rtt = [r for r in records if r.host == "fonts.gstatic.com"][0]
        assert zero_rtt.resumed
        assert zero_rtt.timing.blocked == 0.0
        assert zero_rtt.timing.connect == 0.0
