"""The streaming campaign executor and the lazy universe.

The contracts under test:

* **Fold equivalence** — the summary folded incrementally while the
  campaign streams is field-identical to folding the materialized
  ``paired_visits`` after the fact, for any worker count, warm or cold
  store, with or without ``summary_only``.
* **Lazy prefix identity** — ``LazyWebUniverse.page_at(i)`` is
  bit-identical for any ``n_sites``, so a 100k-site universe agrees
  with a small one on every shared index.
* **Backpressure** — the bounded in-flight window and the reorder
  buffer both respect their caps (``exec_stats`` high-water marks).
* **Mid-stream resume** — killing a run partway leaves a journal that
  a ``resume=True`` re-run completes without re-simulating.
"""

import os

import pytest

from repro.measurement import parallel as parallel_mod
from repro.measurement.campaign import (
    CampaignConfig,
    SimConfig,
    TelemetryConfig,
)
from repro.measurement.executor import (
    CampaignPlan,
    ConsecutivePlan,
    MultiCampaignPlan,
    PageSource,
    execute,
)
from repro.measurement.report import campaign_report
from repro.measurement.summary import CampaignSummary, FixedGridHistogram
from repro.store import ResultStore
from repro.web.topsites import (
    GeneratorConfig,
    LazyWebUniverse,
    cached_universe,
    lazy_universe,
)

#: Small, fast cohort shared by every test in this module.
SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


def small_config(**overrides) -> CampaignConfig:
    knobs = dict(visits_per_page=1, probes_per_vantage=1,
                 max_vantage_points=2, seed=7)
    knobs.update(overrides)
    return CampaignConfig(**knobs)


class TestFoldEquivalence:
    """Streaming summary == materialized fold, under every execution mode."""

    def test_streaming_summary_matches_materialized_fold(self):
        universe = small_universe()
        result = execute(CampaignPlan(universe=universe, sim=small_config()))
        assert result.summary is not None
        refold = CampaignSummary.from_result(result, universe=universe)
        assert result.summary.to_dict() == refold.to_dict()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_do_not_change_the_summary(self, workers):
        universe = small_universe()
        serial = execute(CampaignPlan(universe=universe, sim=small_config()))
        other = execute(CampaignPlan(
            universe=universe, sim=small_config(),
            workers=workers, chunk_size=1,
        ))
        assert other.summary.to_dict() == serial.summary.to_dict()

    def test_summary_only_mode_drops_visits_but_not_the_summary(self):
        universe = small_universe()
        full = execute(CampaignPlan(universe=universe, sim=small_config()))
        slim = execute(CampaignPlan(
            universe=universe, sim=small_config(),
            workers=2, chunk_size=1, summary_only=True,
        ))
        assert slim.paired_visits == []
        assert slim.summary.to_dict() == full.summary.to_dict()
        assert slim.pages_measured == full.pages_measured

    @pytest.mark.parametrize("workers", [1, 3])
    def test_warm_store_replay_folds_identically(self, tmp_path, workers):
        universe = small_universe()
        cold_store = ResultStore(os.fspath(tmp_path / "store"))
        cold = execute(CampaignPlan(
            universe=universe, sim=small_config(), workers=workers,
            chunk_size=1, store=cold_store, run_name="cold",
        ))
        assert cold.store_stats.misses and not cold.store_stats.hits
        warm_store = ResultStore(os.fspath(tmp_path / "store"))
        warm = execute(CampaignPlan(
            universe=universe, sim=small_config(), workers=workers,
            chunk_size=1, store=warm_store, run_name="warm",
        ))
        assert warm.store_stats.hits and not warm.store_stats.misses
        assert warm.summary.to_dict() == cold.summary.to_dict()

    def test_summary_survives_result_report(self):
        universe = small_universe()
        full = execute(CampaignPlan(universe=universe, sim=small_config()))
        slim = execute(CampaignPlan(
            universe=universe, sim=small_config(), summary_only=True,
        ))
        full_report = campaign_report(full)
        slim_report = campaign_report(slim)
        assert slim_report.pages_measured == full_report.pages_measured
        assert slim_report.total_requests == full_report.total_requests
        assert slim_report.h2.requests == full_report.h2.requests
        assert slim_report.h2.mean_plt_ms == pytest.approx(
            full_report.h2.mean_plt_ms
        )
        assert slim_report.pages_h3_wins == full_report.pages_h3_wins
        # Histogram quantiles are accurate to one bin width (50 ms).
        assert slim_report.h2.median_plt_ms == pytest.approx(
            full_report.h2.median_plt_ms, abs=50.0
        )

    def test_fallback_rate_folds_from_h3_entries(self):
        universe = small_universe()
        result = execute(CampaignPlan(
            universe=universe, sim=small_config(), summary_only=True,
        ))
        summary = result.summary
        assert summary.fallback_eligible > 0
        assert 0.0 <= summary.fallback_rate <= 1.0

    def test_multi_campaign_plan_returns_per_key_summaries(self):
        universe = small_universe()
        results = execute(MultiCampaignPlan(
            universe=universe,
            configs={
                "base": small_config(),
                "lossy": small_config(loss_rate=0.01),
            },
            workers=2,
            chunk_size=1,
        ))
        assert set(results) == {"base", "lossy"}
        solo = execute(CampaignPlan(universe=universe, sim=small_config()))
        assert results["base"].summary.to_dict() == solo.summary.to_dict()


class TestLazyUniverse:
    def test_prefix_identity_across_n_sites(self):
        small = lazy_universe(SMALL, seed=3)
        big = lazy_universe(
            GeneratorConfig(
                n_sites=40, resources_per_page_median=12.0,
                min_resources=5, max_resources=25,
            ),
            seed=3,
        )
        for index in range(SMALL.n_sites):
            assert small.page_at(index) == big.page_at(index)

    def test_iter_pages_matches_page_at(self):
        universe = lazy_universe(SMALL, seed=3)
        streamed = list(universe.iter_pages(4))
        assert streamed == [universe.page_at(i) for i in range(4)]

    def test_every_resource_host_resolves(self):
        universe = lazy_universe(SMALL, seed=3)
        for page in universe.iter_pages():
            for resource in page.all_resources:
                spec = universe.hosts[resource.host]
                assert spec.hostname == resource.host

    def test_page_cache_is_bounded_and_regeneration_identical(self):
        universe = lazy_universe(
            GeneratorConfig(
                n_sites=LazyWebUniverse._PAGE_CACHE_SIZE + 40,
                resources_per_page_median=12.0,
                min_resources=5, max_resources=25,
            ),
            seed=5,
        )
        first = universe.page_at(0)
        for page in universe.iter_pages():  # churn past the cache bound
            pass
        assert len(universe._cache) <= LazyWebUniverse._PAGE_CACHE_SIZE
        assert 0 not in universe._cache  # evicted…
        assert universe.page_at(0) == first  # …but regenerates identically

    def test_pickling_drops_the_cache(self):
        import pickle

        universe = lazy_universe(SMALL, seed=3)
        universe.page_at(2)
        restored = pickle.loads(pickle.dumps(universe))
        assert len(restored._cache) == 0
        assert restored.page_at(2) == universe.page_at(2)

    def test_unknown_host_raises_keyerror(self):
        universe = lazy_universe(SMALL, seed=3)
        with pytest.raises(KeyError):
            universe.hosts["no-such-host.invalid"]

    def test_campaign_over_lazy_universe_matches_eager(self):
        """Same (config, seed) ⇒ a lazy universe's own campaign is
        self-consistent between serial and pooled execution."""
        universe = lazy_universe(SMALL, seed=3)
        config = small_config()
        serial = execute(CampaignPlan(
            universe=universe, sim=config, page_count=4, summary_only=True,
        ))
        pooled = execute(CampaignPlan(
            universe=universe, sim=config, page_count=4,
            workers=3, chunk_size=1, summary_only=True,
        ))
        assert serial.summary.to_dict() == pooled.summary.to_dict()

    def test_page_source_indexes_lazily(self):
        universe = lazy_universe(SMALL, seed=3)
        source = PageSource(universe)
        assert len(source) == SMALL.n_sites
        assert source[2] == universe.page_at(2)


class TestBackpressure:
    def test_in_flight_window_respects_the_cap(self):
        universe = small_universe()
        result = execute(CampaignPlan(
            universe=universe, sim=small_config(),
            workers=2, chunk_size=1, max_in_flight=2,
        ))
        stats = result.exec_stats
        assert stats["mode"] == "pool"
        assert stats["max_in_flight_seen"] <= 2
        assert stats["units_submitted"] == 12

    def test_serial_mode_never_buffers(self):
        universe = small_universe()
        result = execute(CampaignPlan(universe=universe, sim=small_config()))
        assert result.exec_stats["mode"] == "serial"
        assert result.exec_stats["max_ready_backlog"] <= 1


class TestResume:
    def test_mid_stream_kill_then_resume(self, tmp_path, monkeypatch):
        universe = small_universe()
        config = small_config()
        store = ResultStore(os.fspath(tmp_path / "store"))
        real = parallel_mod.measure_visit_outcome
        calls = {"n": 0}

        def dies_after_four(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 4:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(
            parallel_mod, "measure_visit_outcome", dies_after_four
        )
        with pytest.raises(KeyboardInterrupt):
            execute(CampaignPlan(
                universe=universe, sim=config,
                store=store, run_name="killed",
            ))
        monkeypatch.setattr(parallel_mod, "measure_visit_outcome", real)
        store.close()

        reopened = ResultStore(os.fspath(tmp_path / "store"))
        info = reopened.run_info("killed")
        assert not info.complete
        assert info.journaled == 4  # the interrupt flushed completed work
        resumed = execute(CampaignPlan(
            universe=universe, sim=config,
            store=reopened, run_name="killed", resume=True,
        ))
        assert resumed.store_stats.resumed == 4
        assert resumed.summary.total_visits == 12
        fresh = execute(CampaignPlan(universe=universe, sim=config))
        assert resumed.summary.to_dict() == fresh.summary.to_dict()
        info = reopened.run_info("killed")
        assert info.complete and info.n_visits == 12
        reopened.close()


class TestConfigGroups:
    def test_facade_decomposes_and_recomposes(self):
        config = CampaignConfig(
            visits_per_page=3, loss_rate=0.01, seed=9,
            collect_counters=True, progress=True,
        )
        sim, telemetry = config.sim, config.telemetry
        assert isinstance(sim, SimConfig)
        assert isinstance(telemetry, TelemetryConfig)
        assert sim.visits_per_page == 3 and sim.loss_rate == 0.01
        assert telemetry.collect_counters and telemetry.progress
        rebuilt = CampaignConfig.from_groups(sim, telemetry)
        assert rebuilt == config

    def test_sim_config_plan_runs_without_telemetry(self):
        universe = small_universe()
        result = execute(CampaignPlan(
            universe=universe,
            sim=SimConfig(visits_per_page=1, max_vantage_points=1, seed=7),
        ))
        assert result.summary.total_visits == 6

    def test_deprecated_entry_points_still_work(self):
        universe = small_universe()
        from repro.measurement.campaign import Campaign

        with pytest.deprecated_call():
            result = Campaign(universe, small_config()).run(
                universe.pages[:2]
            )
        assert len(result.paired_visits) == 4  # 2 pages × 2 vantages

    def test_consecutive_plan_matches_deprecated_run_both(self):
        universe = small_universe()
        pages = universe.pages[:3]
        h2_run, h3_run = execute(ConsecutivePlan(
            universe=universe, pages=pages, seed=2,
        ))
        from repro.measurement.consecutive import ConsecutiveVisitRunner

        with pytest.deprecated_call():
            old_h2, old_h3 = ConsecutiveVisitRunner(
                universe, seed=2
            ).run_both(pages)
        assert [v.plt_ms for v in h2_run.visits] == [
            v.plt_ms for v in old_h2.visits
        ]
        assert [v.plt_ms for v in h3_run.visits] == [
            v.plt_ms for v in old_h3.visits
        ]


class TestFixedGridHistogram:
    def test_merge_equals_bulk_add(self):
        a = FixedGridHistogram(lo=0.0, width=10.0, nbins=20)
        b = FixedGridHistogram(lo=0.0, width=10.0, nbins=20)
        both = FixedGridHistogram(lo=0.0, width=10.0, nbins=20)
        for i, value in enumerate([3.0, 55.0, 199.0, -4.0, 250.0, 42.0]):
            (a if i % 2 else b).add(value)
            both.add(value)
        a.merge(b)
        assert a.to_dict() == both.to_dict()

    def test_moments_are_exact(self):
        hist = FixedGridHistogram(lo=0.0, width=10.0, nbins=20)
        values = [12.5, 47.0, 160.0, 3.25]
        for value in values:
            hist.add(value)
        assert hist.mean == pytest.approx(sum(values) / len(values))
        assert hist.min == min(values) and hist.max == max(values)

    def test_quantiles_hit_the_right_bin(self):
        hist = FixedGridHistogram(lo=0.0, width=10.0, nbins=10)
        for value in range(0, 100):  # uniform 0..99
            hist.add(float(value))
        assert hist.quantile(0.5) == pytest.approx(49.5, abs=10.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 99.0

    def test_roundtrip(self):
        hist = FixedGridHistogram(lo=-5.0, width=2.5, nbins=8)
        for value in [-20.0, -4.0, 0.0, 7.5, 100.0]:
            hist.add(value)
        clone = FixedGridHistogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_top_edge_value_lands_in_last_bin(self):
        """Regression: a value exactly at ``lo + nbins*width`` is in
        range (the grid covers a closed interval), not overflow."""
        hist = FixedGridHistogram(lo=0.0, width=10.0, nbins=10)
        hist.add(100.0)
        assert hist.counts[hist.nbins] == 1
        assert hist.counts[hist.nbins + 1] == 0
        hist.add(100.0000001)
        assert hist.counts[hist.nbins + 1] == 1

    def test_quantile_near_one_with_top_edge_values(self):
        hist = FixedGridHistogram(lo=0.0, width=10.0, nbins=10)
        for _ in range(100):
            hist.add(100.0)
        # All mass sits in the last real bin; the q≈1 estimate must
        # come from that bin, not from an (empty) overflow bucket.
        assert 90.0 <= hist.quantile(0.99) <= 100.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_extremes_and_empty(self):
        empty = FixedGridHistogram(lo=0.0, width=1.0, nbins=5)
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(1.0) == 0.0
        hist = FixedGridHistogram(lo=0.0, width=1.0, nbins=5)
        for value in [0.3, 2.2, 4.9]:
            hist.add(value)
        assert hist.quantile(0.0) == 0.3
        assert hist.quantile(1.0) == 4.9
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_all_overflow_quantiles_report_recorded_extremes(self):
        hist = FixedGridHistogram(lo=0.0, width=1.0, nbins=5)
        for value in [50.0, 60.0, 70.0]:
            hist.add(value)
        assert hist.quantile(0.0) == 50.0
        assert hist.quantile(0.5) == 70.0  # overflow bucket reports max
        assert hist.quantile(1.0) == 70.0
        under = FixedGridHistogram(lo=0.0, width=1.0, nbins=5)
        for value in [-3.0, -2.0]:
            under.add(value)
        assert under.quantile(0.5) == -3.0  # underflow bucket reports min
