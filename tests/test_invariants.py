"""Cross-layer property tests: invariants that must hold for any seed.

These are the guardrails that keep the simulation trustworthy as the
substrate evolves: conservation (every resource fetched exactly once),
timing sanity (entries end before onLoad; phases are non-negative),
classification agreement, and accounting consistency.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser import Browser, BrowserConfig
from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.events import EventLoop
from repro.measurement import Probe, ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


def load_page(seed, mode=H3_ENABLED, loss=0.0, page_index=4, n_sites=6):
    universe = TopSitesGenerator(GeneratorConfig(n_sites=n_sites)).generate(seed=seed)
    page = universe.pages[page_index % len(universe.pages)]
    loop = EventLoop()
    farm = ServerFarm(
        loop, universe.hosts, ProbeNetProfile(loss_rate=loss),
        rng=random.Random(seed),
    )
    farm.warm_caches([page])
    browser = Browser(loop, farm, BrowserConfig(protocol_mode=mode),
                      rng=random.Random(seed + 1))
    return page, browser.visit(page)


class TestPageLoadInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=2000),
        mode=st.sampled_from([H2_ONLY, H3_ENABLED]),
        loss=st.sampled_from([0.0, 0.01]),
    )
    @settings(max_examples=12, deadline=None)
    def test_every_resource_fetched_exactly_once(self, seed, mode, loss):
        page, visit = load_page(seed, mode, loss)
        fetched = [entry.url for entry in visit.entries]
        assert sorted(fetched) == sorted(r.url for r in page.all_resources)

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_plt_bounds_every_entry(self, seed):
        __, visit = load_page(seed)
        start = visit.har.started_at_ms
        for entry in visit.entries:
            assert entry.started_at_ms + entry.time_ms <= start + visit.plt_ms + 1e-6

    @given(seed=st.integers(min_value=0, max_value=2000),
           loss=st.sampled_from([0.0, 0.02]))
    @settings(max_examples=10, deadline=None)
    def test_timing_phases_non_negative(self, seed, loss):
        __, visit = load_page(seed, loss=loss)
        for entry in visit.entries:
            t = entry.timings
            assert t.blocked >= 0 and t.connect >= 0 and t.ssl >= 0
            assert t.wait >= 0 and t.receive >= 0
            assert t.ssl <= t.connect + 1e-9 or t.connect == 0.0

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=8, deadline=None)
    def test_response_bytes_match_resources(self, seed):
        page, visit = load_page(seed)
        sizes = {r.url: r.size_bytes for r in page.all_resources}
        for entry in visit.entries:
            assert entry.response_bytes == sizes[entry.url]

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=8, deadline=None)
    def test_classifier_agrees_with_ground_truth(self, seed):
        page, visit = load_page(seed)
        truth = {r.url: r.provider_name for r in page.all_resources}
        for entry in visit.entries:
            assert entry.is_cdn == (truth[entry.url] is not None), entry.url
            if entry.is_cdn:
                assert entry.provider == truth[entry.url]

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=8, deadline=None)
    def test_h2_only_mode_never_h3(self, seed):
        __, visit = load_page(seed, mode=H2_ONLY)
        assert all(entry.protocol != "h3" for entry in visit.entries)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_determinism_same_seed_same_visit(self, seed):
        __, first = load_page(seed)
        __, second = load_page(seed)
        assert first.plt_ms == second.plt_ms
        assert [e.url for e in first.entries] == [e.url for e in second.entries]


class TestProbeAccounting:
    def test_traffic_rate_positive_after_visits(self):
        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=2)
        probe = Probe("p", universe, seed=1)
        assert probe.average_traffic_kbps() == 0.0
        probe.measure_page(universe.pages[0], H2_ONLY, visits=1)
        rate = probe.average_traffic_kbps()
        assert rate > 0.0
        # Sanity: a probe loading pages sequentially stays well under
        # its 50 Mbps access rate on average.
        assert rate < 50_000.0

    def test_bytes_conserved_across_paths(self):
        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=2)
        probe = Probe("p", universe, seed=1)
        visit = probe.measure_page(universe.pages[0], H2_ONLY, visits=1)
        payload = sum(e.response_bytes for e in visit.entries)
        # Wire bytes include headers, acks and handshakes: strictly more
        # than the payload, but within a sane envelope.
        wire = probe.farm.total_bytes_transferred()
        assert payload < wire < payload * 1.6


class TestWaveOrderingUnderLoss:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_html_always_first(self, seed):
        page, visit = load_page(seed, loss=0.01)
        html_entry = visit.entries[0]
        assert html_entry.url == page.html.url
        assert html_entry.started_at_ms <= min(
            e.started_at_ms for e in visit.entries
        )
