"""Proxy topologies and QUIC connection migration.

The contracts under test:

* **SegmentedPath** — a multi-hop chain forwards packets segment by
  segment, charges every segment's latency, accounts delivered bytes at
  the client NIC, and is never eligible for the analytic fast path.
* **Proxy models** — a CONNECT tunnel terminates TCP (H3 downgrades at
  the proxy, zero H3 served), a MASQUE relay passes QUIC end-to-end.
* **Migration faults** — a mid-visit address change makes QUIC
  connections migrate (connection IDs survive) while TCP connections
  tear down and reconnect.
* **Determinism** — proxied campaigns, with or without migration
  faults, are bit-identical for any worker count and replay
  bit-identically from a warm store; the proxy config is part of the
  visit key, so proxied and direct visits never collide.
"""

import json

import pytest

from repro.events import EventLoop
from repro.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultInjector,
    MIGRATION_KINDS,
    migration_profile,
)
from repro.measurement import Campaign, CampaignConfig
from repro.measurement.parallel import run_campaigns
from repro.netsim import NetemProfile, PROXY_MODELS, ProxyConfig, SegmentedPath
from repro.scenario import Scenario
from repro.store import ResultStore, paired_visit_key, visit_config_part
from repro.web.topsites import GeneratorConfig, cached_universe

from tests.test_faults import result_fingerprint


@pytest.fixture(scope="module")
def universe():
    return cached_universe(GeneratorConfig(n_sites=8), seed=11)


def make_segmented(loop, models=None, **kwargs):
    segments = (
        NetemProfile(delay_ms=5.0, rate_mbps=None),
        NetemProfile(delay_ms=20.0, rate_mbps=None),
    )
    return SegmentedPath(loop, segments, **kwargs)


class TestProxyConfig:
    def test_models_closed_set(self):
        assert PROXY_MODELS == ("connect-tunnel", "masque-relay")
        with pytest.raises(ValueError, match="model must be one of"):
            ProxyConfig(model="socks5")

    def test_h3_passthrough_by_model(self):
        assert not ProxyConfig(model="connect-tunnel").h3_passthrough
        assert ProxyConfig(model="masque-relay").h3_passthrough

    def test_forward_delay_validation(self):
        with pytest.raises(ValueError):
            ProxyConfig(forward_delay_ms=-1.0)


class TestSegmentedPath:
    def test_requires_two_segments(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match=">= 2 segments"):
            SegmentedPath(loop, (NetemProfile(delay_ms=5.0),))

    def test_rtt_sums_segments_and_forward_delay(self):
        loop = EventLoop()
        path = make_segmented(loop, forward_delay_ms=3.0)
        # 2*(5+20) segment latency + 2*3 relay forwarding.
        assert path.rtt_ms == pytest.approx(56.0)

    def test_never_fast_path_eligible(self):
        loop = EventLoop()
        assert make_segmented(loop).fast_path_eligible is False

    def test_round_trip_charges_every_segment(self):
        class Packet:
            size_bytes = 100

        loop = EventLoop()
        path = make_segmented(loop)
        arrivals = []
        path.send_to_server(Packet(), lambda pkt: arrivals.append(loop.now))
        loop.run()
        # One-way through both segments: 5 + 20 ms.
        assert arrivals == [pytest.approx(25.0)]
        path2 = make_segmented(EventLoop(), forward_delay_ms=2.0)
        arrivals2 = []
        path2.send_to_client(Packet(), lambda pkt: arrivals2.append(path2.loop.now))
        path2.loop.run()
        # Downstream walks the chain in reverse, plus one relay hop.
        assert arrivals2 == [pytest.approx(27.0)]

    def test_h3_passthrough_follows_model(self):
        loop = EventLoop()
        tunnel = make_segmented(loop, proxy_model="connect-tunnel")
        relay = make_segmented(loop, proxy_model="masque-relay")
        bare = make_segmented(loop)
        assert tunnel.h3_passthrough is False
        assert relay.h3_passthrough is True
        assert bare.h3_passthrough is True

    def test_bytes_accounted_at_client_segment_only(self):
        loop = EventLoop()
        path = make_segmented(loop)

        class Packet:
            size_bytes = 1200

        path.send_to_server(Packet(), lambda pkt: None)
        loop.run()
        # The packet crossed both segments but the probe's NIC saw it
        # once — ethics accounting must not double-count relay hops.
        assert path.total_bytes_transferred() == 1200


class TestScenarioProxy:
    def test_with_proxy_by_model_name(self):
        scenario = Scenario(name="base").with_proxy("masque-relay")
        assert scenario.name == "base+masque-relay"
        assert scenario.proxy is not None
        config = scenario.campaign_config()
        assert config.proxy.model == "masque-relay"

    def test_with_proxy_none_goes_direct(self):
        scenario = Scenario(name="base").with_proxy("connect-tunnel")
        direct = scenario.with_proxy(None)
        assert direct.proxy is None
        assert direct.name.endswith("+direct")
        assert direct.campaign_config().proxy is None


class TestProxyInVisitKey:
    def test_proxy_changes_the_key(self):
        base = CampaignConfig(seed=3)
        tunnel = CampaignConfig(seed=3, proxy=ProxyConfig(model="connect-tunnel"))
        relay = CampaignConfig(seed=3, proxy=ProxyConfig(model="masque-relay"))
        parts = [
            json.dumps(visit_config_part(c), sort_keys=True, default=str)
            for c in (base, tunnel, relay)
        ]
        assert len(set(parts)) == 3

    def test_key_distinct_for_proxied_visit(self, universe):
        from repro.measurement import derive_seed
        from repro.measurement.vantage import default_vantage_points
        from repro.store.keys import page_part

        page = universe.pages[0]
        vantage = default_vantage_points()[0]

        def key(config):
            return paired_visit_key(
                visit_config_part(config),
                page_part(page, universe.hosts),
                vantage,
                0,
                derive_seed(config.seed, 0, 0, 0),
            )

        assert key(CampaignConfig(seed=3)) != key(
            CampaignConfig(seed=3, proxy=ProxyConfig())
        )


class TestMigrationFaults:
    def test_kinds_registered(self):
        assert set(MIGRATION_KINDS) <= set(FAULT_KINDS)
        assert "nat-rebind" in FAULT_PROFILES
        assert "wifi-to-cellular" in FAULT_PROFILES

    def test_migration_profile_validation(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            migration_profile("udp_blackhole")
        profile = migration_profile("wifi_to_cellular", at_ms=100.0, gap_ms=50.0)
        (event,) = profile.events
        assert event.kind == "wifi_to_cellular"
        assert (event.start_ms, event.end_ms) == (100.0, 150.0)

    def test_injector_schedules_migration(self):
        loop = EventLoop()
        injector = FaultInjector(
            migration_profile("nat_rebind", at_ms=200.0, gap_ms=100.0), loop
        )
        injector.begin_visit()
        fire = injector.migration_at("cdn.example")
        assert fire is not None
        at, kind = fire
        assert at == pytest.approx(200.0)
        assert kind == "nat_rebind"
        # The window has not opened yet at t=0.
        assert not injector.migration_blackout("cdn.example")

    def test_blackout_window_drops_all_packets(self):
        loop = EventLoop()
        injector = FaultInjector(
            migration_profile("nat_rebind", at_ms=0.0, gap_ms=100.0), loop
        )
        injector.begin_visit()
        assert injector.migration_blackout("cdn.example")
        assert injector.packet_dropped("cdn.example", quic=True)
        assert injector.packet_dropped("cdn.example", quic=False)


class TestMigrationCampaign:
    @pytest.fixture(scope="class")
    def relay_result(self, universe):
        config = CampaignConfig(
            seed=3, collect_counters=True, trace=True,
            proxy=ProxyConfig(model="masque-relay"),
            fault_profile=migration_profile("nat_rebind"),
        )
        return run_campaigns(universe, {"c": config}, pages=universe.pages[:4])["c"]

    @pytest.fixture(scope="class")
    def tunnel_result(self, universe):
        config = CampaignConfig(
            seed=3, collect_counters=True, trace=True,
            proxy=ProxyConfig(model="connect-tunnel"),
            fault_profile=migration_profile("nat_rebind"),
        )
        return run_campaigns(universe, {"c": config}, pages=universe.pages[:4])["c"]

    def test_relay_migrates_quic_and_reconnects_tcp(self, relay_result):
        counters = relay_result.counter_totals()
        assert counters.counter("pool.quic_migrations") > 0
        assert counters.counter("pool.migration_reconnects") > 0
        assert counters.counter("pool.proxy_h3_downgrades") == 0
        names = {e["name"] for e in relay_result.trace_events()}
        assert "migration:migrated" in names
        assert "migration:reconnect" in names
        assert "fault:nat_rebind" in names

    def test_relay_serves_h3(self, relay_result, universe):
        protocols = {
            e.protocol
            for e in relay_result.entries("h3-enabled")
            if universe.hosts[e.host].supports_h3
        }
        assert "h3" in protocols

    def test_tunnel_never_migrates_and_downgrades_h3(self, tunnel_result):
        counters = tunnel_result.counter_totals()
        assert counters.counter("pool.quic_migrations") == 0
        assert counters.counter("pool.migration_reconnects") > 0
        assert counters.counter("pool.proxy_h3_downgrades") > 0
        protocols = {e.protocol for e in tunnel_result.entries("h3-enabled")}
        assert "h3" not in protocols
        names = {e["name"] for e in tunnel_result.trace_events()}
        assert "proxy:h3_downgrade" in names
        assert "migration:migrated" not in names

    def test_every_visit_completes(self, relay_result, tunnel_result):
        for result in (relay_result, tunnel_result):
            assert len(result.paired_visits) == 4
            assert not result.failures


class TestProxiedDeterminism:
    def test_workers_do_not_change_proxied_results(self, universe):
        pages = universe.pages[:3]
        config = CampaignConfig(
            seed=3, collect_counters=True, trace=True,
            proxy=ProxyConfig(model="masque-relay"),
            fault_profile=migration_profile("nat_rebind"),
        )
        serial = run_campaigns(universe, {"c": config}, pages=pages, workers=1)["c"]
        parallel = run_campaigns(universe, {"c": config}, pages=pages, workers=3)["c"]
        assert result_fingerprint(serial) == result_fingerprint(parallel)
        assert (
            serial.counter_totals().to_dict()
            == parallel.counter_totals().to_dict()
        )
        assert list(serial.trace_events()) == list(parallel.trace_events())

    def test_workers_do_not_change_faultfree_proxied_results(self, universe):
        pages = universe.pages[:3]
        config = CampaignConfig(seed=3, proxy=ProxyConfig(model="connect-tunnel"))
        serial = run_campaigns(universe, {"c": config}, pages=pages, workers=1)["c"]
        parallel = run_campaigns(universe, {"c": config}, pages=pages, workers=2)["c"]
        assert result_fingerprint(serial) == result_fingerprint(parallel)

    def test_warm_store_replay_with_proxy(self, universe, tmp_path):
        pages = universe.pages[:2]
        config = CampaignConfig(
            seed=3,
            proxy=ProxyConfig(model="masque-relay"),
            fault_profile=migration_profile("nat_rebind"),
        )
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, config).run(pages, store=store, run_name="a")
            warm = Campaign(universe, config).run(pages, store=store, run_name="b")
        assert fresh.store_stats.misses == len(pages)
        assert warm.store_stats.hits == len(pages)
        assert warm.store_stats.misses == 0
        assert result_fingerprint(warm) == result_fingerprint(fresh)

    def test_proxied_and_direct_do_not_share_cache(self, universe, tmp_path):
        pages = universe.pages[:2]
        direct = CampaignConfig(seed=3)
        proxied = CampaignConfig(seed=3, proxy=ProxyConfig(model="masque-relay"))
        with ResultStore(str(tmp_path / "st")) as store:
            Campaign(universe, direct).run(pages, store=store, run_name="a")
            second = Campaign(universe, proxied).run(
                pages, store=store, run_name="b"
            )
        assert second.store_stats.hits == 0
        assert second.store_stats.misses == len(pages)


class TestFastPathExclusion:
    def test_farm_proxy_paths_are_ineligible(self, universe):
        from repro.measurement.farm import ServerFarm

        loop = EventLoop()
        farm = ServerFarm(
            loop, universe.hosts, proxy=ProxyConfig(model="masque-relay")
        )
        host = next(iter(universe.hosts))
        path = farm.path(host)
        assert isinstance(path, SegmentedPath)
        assert path.fast_path_eligible is False

    def test_migration_armed_paths_are_ineligible(self):
        from repro.faults.inject import FaultedPath
        from repro.netsim import NetworkPath

        loop = EventLoop()
        injector = FaultInjector(migration_profile("nat_rebind"), loop)
        path = NetworkPath(loop, NetemProfile(delay_ms=5.0))
        faulted = FaultedPath(path, injector, "cdn.example", quic=True)
        assert faulted.fast_path_eligible is False


class TestPoolStatsRoundtrip:
    def test_migration_fields_serialize_and_merge(self):
        from repro.http import PoolStats

        stats = PoolStats(
            quic_migrations=2, migration_reconnects=3, proxy_h3_downgrades=1
        )
        raw = stats.to_dict()
        assert raw["quicMigrations"] == 2
        assert raw["migrationReconnects"] == 3
        assert raw["proxyH3Downgrades"] == 1
        assert PoolStats.from_dict(raw) == stats
        merged = stats.merged_with(PoolStats(quic_migrations=5))
        assert merged.quic_migrations == 7
        assert merged.migration_reconnects == 3

    def test_migration_free_payload_unchanged(self):
        from repro.http import PoolStats

        raw = PoolStats(requests=4).to_dict()
        assert "quicMigrations" not in raw
        assert "migrationReconnects" not in raw
        assert "proxyH3Downgrades" not in raw
