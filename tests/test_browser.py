"""Tests for the browser, HAR capture, and Alt-Svc discovery."""

import random

import pytest

from repro.browser import Browser, BrowserConfig
from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.events import EventLoop
from repro.http import AltSvcCache
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def universe():
    return TopSitesGenerator(GeneratorConfig(n_sites=6)).generate(seed=11)


def make_browser(universe, mode=H3_ENABLED, **config_kwargs):
    loop = EventLoop()
    farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(), rng=random.Random(3))
    farm.warm_caches(universe.pages)
    browser = Browser(
        loop, farm, BrowserConfig(protocol_mode=mode, **config_kwargs),
        rng=random.Random(4),
    )
    return browser


class TestPageVisit:
    def test_visit_loads_every_resource(self, universe):
        page = universe.pages[4]
        visit = make_browser(universe).visit(page)
        assert len(visit.entries) == page.total_requests

    def test_plt_positive_and_entries_within_plt(self, universe):
        page = universe.pages[4]
        visit = make_browser(universe).visit(page)
        assert visit.plt_ms > 0
        start = visit.har.started_at_ms
        for entry in visit.entries:
            assert entry.started_at_ms >= start
            end = entry.started_at_ms + entry.time_ms
            assert end <= start + visit.plt_ms + 1e-6

    def test_h2_only_mode_never_uses_h3(self, universe):
        visit = make_browser(universe, mode=H2_ONLY).visit(universe.pages[4])
        protocols = {entry.protocol for entry in visit.entries}
        assert "h3" not in protocols
        assert "h2" in protocols

    def test_h3_enabled_uses_h3_on_capable_hosts(self, universe):
        page = universe.pages[4]
        visit = make_browser(universe, mode=H3_ENABLED).visit(page)
        h3_hosts = {e.host for e in visit.entries if e.protocol == "h3"}
        expected = {
            r.host for r in page.all_resources if universe.hosts[r.host].supports_h3
        }
        assert h3_hosts == expected

    def test_h1_only_servers_use_http11(self, universe):
        for page in universe.pages:
            h1_hosts = {
                r.host for r in page.all_resources if universe.hosts[r.host].h1_only
            }
            if h1_hosts:
                visit = make_browser(universe).visit(page)
                protocols = {
                    e.host: e.protocol for e in visit.entries if e.host in h1_hosts
                }
                assert set(protocols.values()) == {"http/1.1"}
                return
        pytest.skip("universe has no H1-only hosts")

    def test_h3_plt_beats_h2_on_h3_heavy_page(self, universe):
        # youtube.com: every host speaks H3.
        page = universe.pages[0]
        h2 = make_browser(universe, mode=H2_ONLY).visit(page)
        h3 = make_browser(universe, mode=H3_ENABLED).visit(page)
        assert h3.plt_ms < h2.plt_ms

    def test_cdn_classification_matches_ground_truth(self, universe):
        page = universe.pages[4]
        visit = make_browser(universe).visit(page)
        truth = {r.url: r.provider_name for r in page.all_resources}
        for entry in visit.entries:
            assert entry.is_cdn == (truth[entry.url] is not None)
            if entry.is_cdn:
                assert entry.provider == truth[entry.url]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="protocol_mode"):
            BrowserConfig(protocol_mode="h9-only")

    def test_reused_flag_consistent_with_connect_time(self, universe):
        visit = make_browser(universe).visit(universe.pages[4])
        for entry in visit.entries:
            if entry.reused:
                assert entry.timings.connect == 0.0
            else:
                assert not entry.resumed or entry.timings.connect == 0.0

    def test_wave1_resources_start_after_blocking_wave0(self, universe):
        from repro.web.resource import ResourceType

        page = universe.pages[4]
        blocking = {
            r.url
            for r in page.resources
            if r.wave == 0 and r.rtype in (ResourceType.CSS, ResourceType.JS)
        }
        wave1 = {r.url for r in page.resources if r.wave == 1}
        if not blocking or not wave1:
            pytest.skip("page lacks a wave structure")
        visit = make_browser(universe).visit(page)
        by_url = {e.url: e for e in visit.entries}
        last_blocking_done = max(
            by_url[url].started_at_ms + by_url[url].time_ms for url in blocking
        )
        for url in wave1:
            assert by_url[url].started_at_ms >= last_blocking_done - 1e-6


class TestSessionPersistence:
    def test_tickets_persist_across_visits(self, universe):
        browser = make_browser(universe)
        page = universe.pages[4]
        first = browser.visit(page)
        assert first.har.resumed_connection_count() == 0
        second = browser.visit(page)  # no clear_session_state between
        assert second.har.resumed_connection_count() > 0

    def test_clear_session_state_resets_resumption(self, universe):
        browser = make_browser(universe)
        page = universe.pages[4]
        browser.visit(page)
        browser.clear_session_state()
        visit = browser.visit(page)
        assert visit.har.resumed_connection_count() == 0


class TestAltSvc:
    def test_parse_and_expiry(self):
        cache = AltSvcCache()
        cache.observe("x.example", {"alt-svc": 'h3=":443"; ma=60'}, now_ms=0.0)
        assert cache.knows_h3("x.example", now_ms=59_000.0)
        assert not cache.knows_h3("x.example", now_ms=60_000.0)

    def test_header_without_h3_ignored(self):
        cache = AltSvcCache()
        cache.observe("x.example", {"alt-svc": 'h2=":443"'}, now_ms=0.0)
        assert not cache.knows_h3("x.example", now_ms=1.0)

    def test_malformed_max_age_uses_default(self):
        cache = AltSvcCache(default_max_age_ms=1000.0)
        cache.observe("x.example", {"alt-svc": 'h3=":443"; ma=banana'}, now_ms=0.0)
        assert cache.knows_h3("x.example", now_ms=999.0)
        assert not cache.knows_h3("x.example", now_ms=1001.0)

    @pytest.mark.parametrize(
        "header_name", ["alt-svc", "Alt-Svc", "ALT-SVC", "aLt-SvC"]
    )
    def test_header_lookup_is_case_insensitive(self, header_name):
        cache = AltSvcCache()
        cache.observe("x.example", {header_name: 'h3=":443"; ma=60'}, now_ms=0.0)
        assert cache.knows_h3("x.example", now_ms=1.0)

    def test_expiry_boundary_is_exclusive(self):
        """An advertisement with ma=60 is honoured strictly before the
        60 s mark and not at it (expiry is start + ma, exclusive)."""
        cache = AltSvcCache()
        cache.observe("x.example", {"alt-svc": 'h3=":443"; ma=60'}, now_ms=500.0)
        assert cache.knows_h3("x.example", now_ms=60_499.999)
        assert not cache.knows_h3("x.example", now_ms=60_500.0)
        # Expired entries are dropped, not just hidden.
        assert not cache.knows_h3("x.example", now_ms=60_499.0)

    def test_mark_h3_broken_expires(self):
        cache = AltSvcCache(broken_ttl_ms=1000.0)
        cache.observe("x.example", {"alt-svc": 'h3=":443"; ma=600'}, now_ms=0.0)
        cache.mark_h3_broken("x.example", now_ms=10.0)
        assert cache.h3_broken("x.example", now_ms=1009.0)
        assert not cache.h3_broken("x.example", now_ms=1010.0)
        assert not cache.h3_broken("other.example", now_ms=11.0)

    def test_clear_forgets_broken_marks(self):
        cache = AltSvcCache()
        cache.mark_h3_broken("x.example", now_ms=0.0)
        cache.clear()
        assert not cache.h3_broken("x.example", now_ms=1.0)

    def test_alt_svc_mode_upgrades_after_discovery(self, universe):
        """With use_alt_svc, the first contact with a host goes over H2
        (no advertisement seen yet); once the Alt-Svc header arrives,
        later requests — same visit or next — upgrade to H3."""
        browser = make_browser(universe, use_alt_svc=True)
        page = universe.pages[0]  # youtube: all hosts H3-capable
        first = browser.visit(page)
        first_html = first.entries[0]
        assert first_html.protocol == "h2"  # nothing discovered yet
        second = browser.visit(page)
        second_html = second.entries[0]
        assert second_html.protocol == "h3"  # discovered on visit one
        assert len(second.har.entries_by_protocol("h3")) >= len(
            first.har.entries_by_protocol("h3")
        )


class TestHarRendering:
    def test_har_dict_round_trip(self, universe):
        visit = make_browser(universe).visit(universe.pages[4])
        doc = visit.har.to_dict()
        assert doc["log"]["version"] == "1.2"
        assert doc["log"]["pages"][0]["pageTimings"]["onLoad"] == visit.plt_ms
        assert len(doc["log"]["entries"]) == len(visit.entries)
        entry = doc["log"]["entries"][0]
        assert {"blocked", "connect", "ssl", "wait", "receive"} <= set(entry["timings"])

    def test_har_is_json_serializable(self, universe):
        import json

        visit = make_browser(universe).visit(universe.pages[5])
        json.dumps(visit.har.to_dict())
