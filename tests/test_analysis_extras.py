"""Tests for bootstrap CIs, text plotting, BBR, and universe serialization."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bootstrap import bootstrap_ci, difference_significant
from repro.analysis.textplot import bar_chart, line_chart
from repro.transport import BbrLikeController, make_congestion_controller
from repro.web import GeneratorConfig, TopSitesGenerator
from repro.web.serialize import (
    load_universe,
    save_universe,
    universe_from_dict,
    universe_to_dict,
)


class TestBootstrap:
    def test_interval_contains_point_estimate(self):
        rng = random.Random(1)
        values = [rng.gauss(50.0, 10.0) for _ in range(100)]
        ci = bootstrap_ci(values, seed=2)
        assert ci.low <= ci.point <= ci.high

    def test_interval_narrows_with_sample_size(self):
        rng = random.Random(1)
        small = [rng.gauss(0, 1) for _ in range(20)]
        large = [rng.gauss(0, 1) for _ in range(2000)]
        assert bootstrap_ci(large, seed=3).width < bootstrap_ci(small, seed=3).width

    def test_deterministic_under_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_contains_operator(self):
        ci = bootstrap_ci([10.0] * 50, seed=1)
        assert 10.0 in ci
        assert 99.0 not in ci

    def test_difference_significant_detects_clear_gap(self):
        rng = random.Random(4)
        a = [rng.gauss(100.0, 5.0) for _ in range(80)]
        b = [rng.gauss(50.0, 5.0) for _ in range(80)]
        significant, interval = difference_significant(a, b, seed=5)
        assert significant
        assert interval.low > 0

    def test_difference_not_significant_for_same_distribution(self):
        rng = random.Random(6)
        a = [rng.gauss(0.0, 10.0) for _ in range(50)]
        b = [rng.gauss(0.0, 10.0) for _ in range(50)]
        significant, interval = difference_significant(a, b, seed=7)
        assert not significant
        assert interval.low < 0 < interval.high

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=3)
        with pytest.raises(ValueError):
            difference_significant([], [1.0])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_interval_within_sample_hull_for_mean(self, values):
        ci = bootstrap_ci(values, resamples=200, seed=1)
        assert min(values) - 1e-9 <= ci.low
        assert ci.high <= max(values) + 1e-9


class TestTextPlot:
    def test_line_chart_renders_grid(self):
        lines = line_chart({"a": [(0, 0), (1, 1), (2, 4)]}, width=20, height=6)
        assert any("*" in line for line in lines)
        assert any("a" in line for line in lines[-1:])

    def test_line_chart_multiple_series_markers(self):
        lines = line_chart(
            {"one": [(0, 1), (1, 2)], "two": [(0, 2), (1, 1)]}, width=10, height=5
        )
        joined = "\n".join(lines)
        assert "*" in joined and "o" in joined

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_bar_chart_scales_to_peak(self):
        lines = bar_chart({"x": 10.0, "y": 5.0}, width=20)
        bars = {line.split("|")[0].strip(): line.count("#") for line in lines}
        assert bars["x"] == 20
        assert bars["y"] == 10

    def test_bar_chart_negative_values_marked(self):
        lines = bar_chart({"neg": -5.0})
        assert "-" in lines[0].split("|")[1]

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestBbr:
    def test_factory_makes_bbr(self):
        cc = make_congestion_controller("bbr", 1460)
        assert isinstance(cc, BbrLikeController)

    def test_model_sets_window_to_gain_times_bdp(self):
        cc = BbrLikeController(1460)
        cc.on_rate_sample(bytes_per_ms=100.0, rtt_ms=30.0)  # BDP = 3000 B
        assert cc.cwnd_bytes == pytest.approx(2.0 * 3000.0)

    def test_isolated_loss_does_not_collapse_window(self):
        cc = BbrLikeController(1460)
        cc.on_rate_sample(1000.0, 30.0)
        before = cc.cwnd_bytes
        cc.on_loss(now_ms=1.0)
        assert cc.cwnd_bytes == before
        assert cc.loss_events == 1

    def test_rto_resets_the_model(self):
        cc = BbrLikeController(1460)
        cc.on_rate_sample(1000.0, 30.0)
        cc.on_rto(now_ms=1.0)
        assert cc.cwnd_bytes == 4 * 1460

    def test_startup_grows_exponentially(self):
        cc = BbrLikeController(1460, initial_cwnd_packets=10)
        before = cc.cwnd_bytes
        cc.on_ack(before, now_ms=0.0)
        assert cc.cwnd_bytes == 2 * before

    def test_end_to_end_transfer_with_bbr(self):
        from repro.events import EventLoop
        from repro.netsim import NetemProfile, NetworkPath
        from repro.transport import QuicConnection, TransportConfig

        loop = EventLoop()
        path = NetworkPath(
            loop, NetemProfile(delay_ms=15.0, loss_rate=0.01, rate_mbps=50.0),
            rng=random.Random(5),
        )
        conn = QuicConnection(
            loop, path, config=TransportConfig(congestion_control="bbr")
        )
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 200_000)
        loop.run_until(lambda: stream.complete)
        assert stream.received == 200_000


class TestUniverseSerialization:
    @pytest.fixture(scope="class")
    def universe(self):
        return TopSitesGenerator(GeneratorConfig(n_sites=8)).generate(seed=23)

    def test_round_trip_preserves_structure(self, universe):
        restored = universe_from_dict(universe_to_dict(universe))
        assert len(restored.websites) == len(universe.websites)
        assert set(restored.hosts) == set(universe.hosts)
        assert restored.seed == universe.seed

    def test_round_trip_preserves_pages(self, universe):
        restored = universe_from_dict(universe_to_dict(universe))
        for original, parsed in zip(universe.pages, restored.pages):
            assert parsed.url == original.url
            assert parsed.total_requests == original.total_requests
            assert parsed.providers == original.providers
            assert parsed.cdn_fraction == original.cdn_fraction

    def test_round_trip_preserves_host_capabilities(self, universe):
        restored = universe_from_dict(universe_to_dict(universe))
        for hostname, spec in universe.hosts.items():
            parsed = restored.hosts[hostname]
            assert parsed.supports_h3 == spec.supports_h3
            assert parsed.supports_h2 == spec.supports_h2
            assert parsed.tls_version == spec.tls_version
            assert parsed.base_rtt_ms == spec.base_rtt_ms

    def test_json_serializable(self, universe):
        json.dumps(universe_to_dict(universe))

    def test_file_round_trip(self, universe, tmp_path):
        path = tmp_path / "universe.json"
        save_universe(universe, str(path))
        restored = load_universe(str(path))
        assert restored.summary() == universe.summary()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unrecognized universe format"):
            universe_from_dict({"format": "something-else"})

    def test_restored_universe_supports_measurement(self, universe):
        """A deserialized universe must drive a full page visit."""
        from repro.browser import Browser, BrowserConfig
        from repro.events import EventLoop
        from repro.measurement import ProbeNetProfile, ServerFarm

        restored = universe_from_dict(universe_to_dict(universe))
        loop = EventLoop()
        farm = ServerFarm(loop, restored.hosts, ProbeNetProfile(),
                          rng=random.Random(1))
        browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(2))
        visit = browser.visit(restored.pages[0])
        assert len(visit.entries) == restored.pages[0].total_requests
