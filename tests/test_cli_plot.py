"""Tests for the CLI's --plot rendering path."""

import pytest

from repro.core import H3CdnStudy, StudyConfig
from repro.experiments import run_experiment
from repro.experiments.cli import main, render_plots


@pytest.fixture(scope="module")
def study():
    return H3CdnStudy(StudyConfig(n_sites=10, seed=5, max_loss_sweep_pages=4))


class TestRenderPlots:
    def test_fig3_gets_a_line_chart(self, study):
        lines = render_plots(run_experiment("fig3", study))
        assert lines
        assert any("CCDF" in line for line in lines)

    def test_fig6_gets_cdf_and_bars(self, study):
        lines = render_plots(run_experiment("fig6", study))
        joined = "\n".join(lines)
        assert "connection" in joined  # CDF legend
        assert "High" in joined        # bar labels

    def test_fig9_gets_scatter(self, study):
        lines = render_plots(run_experiment("fig9", study))
        assert any("loss" in line for line in lines)

    def test_table1_has_no_plots(self, study):
        assert render_plots(run_experiment("table1", study)) == []


class TestRenderPlotsDegradation:
    """Empty series must be skipped with a note, never raise."""

    def make_result(self, data):
        from repro.experiments.base import ExperimentResult

        return ExperimentResult(experiment_id="x", title="fabricated", data=data)

    def test_empty_ccdf_series_skipped(self):
        lines = render_plots(self.make_result({"ccdf_series": []}))
        assert lines == ["  [plot skipped: ccdf_series is empty]"]

    def test_empty_phase_cdf_series_skipped(self):
        lines = render_plots(
            self.make_result({"phase_cdf_series": {"connection": [], "wait": []}})
        )
        assert lines == ["  [plot skipped: phase_cdf_series is empty]"]

    def test_partially_empty_phase_cdf_still_plots(self):
        lines = render_plots(
            self.make_result(
                {"phase_cdf_series": {"connection": [(0.0, 0.5), (1.0, 1.0)],
                                      "wait": []}}
            )
        )
        assert any("connection" in line for line in lines)
        assert not any("skipped" in line for line in lines)

    def test_empty_group_reductions_skipped(self):
        lines = render_plots(self.make_result({"group_reductions": {}}))
        assert lines == ["  [plot skipped: group_reductions is empty]"]

    def test_empty_provider_bars_skipped(self):
        lines = render_plots(
            self.make_result(
                {"plt_reduction_by_providers": {}, "resumed_by_providers": {}}
            )
        )
        assert "  [plot skipped: plt_reduction_by_providers is empty]" in lines
        assert "  [plot skipped: resumed_by_providers is empty]" in lines

    def test_empty_loss_points_skipped(self):
        lines = render_plots(
            self.make_result({"points": {0.0: [], 0.01: []}})
        )
        assert lines == ["  [plot skipped: points is empty]"]

    def test_all_empty_keys_never_raise(self):
        lines = render_plots(
            self.make_result(
                {
                    "ccdf_series": [],
                    "phase_cdf_series": {},
                    "group_reductions": {},
                    "plt_reduction_by_providers": {},
                    "resumed_by_providers": {},
                    "points": {},
                }
            )
        )
        assert len(lines) == 6  # provider block notes both of its charts
        assert all("skipped" in line for line in lines)


class TestCliPlotFlag:
    def test_end_to_end(self, capsys):
        code = main(["--scale", "smoke", "--sites", "8",
                     "--experiments", "fig3", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P(X>x)" in out  # axis caption from the chart
