"""Tests for the CLI's --plot rendering path."""

import pytest

from repro.core import H3CdnStudy, StudyConfig
from repro.experiments import run_experiment
from repro.experiments.cli import main, render_plots


@pytest.fixture(scope="module")
def study():
    return H3CdnStudy(StudyConfig(n_sites=10, seed=5, max_loss_sweep_pages=4))


class TestRenderPlots:
    def test_fig3_gets_a_line_chart(self, study):
        lines = render_plots(run_experiment("fig3", study))
        assert lines
        assert any("CCDF" in line for line in lines)

    def test_fig6_gets_cdf_and_bars(self, study):
        lines = render_plots(run_experiment("fig6", study))
        joined = "\n".join(lines)
        assert "connection" in joined  # CDF legend
        assert "High" in joined        # bar labels

    def test_fig9_gets_scatter(self, study):
        lines = render_plots(run_experiment("fig9", study))
        assert any("loss" in line for line in lines)

    def test_table1_has_no_plots(self, study):
        assert render_plots(run_experiment("table1", study)) == []


class TestCliPlotFlag:
    def test_end_to_end(self, capsys):
        code = main(["--scale", "smoke", "--sites", "8",
                     "--experiments", "fig3", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P(X>x)" in out  # axis caption from the chart
