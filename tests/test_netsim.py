"""Unit and property tests for the network simulation substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventLoop
from repro.netsim import (
    BernoulliLoss,
    GilbertElliottLoss,
    Link,
    NetemProfile,
    NetworkPath,
    NoLoss,
    Packet,
    PacketKind,
    StreamChunk,
    make_loss_model,
)
from repro.netsim.packet import HEADER_BYTES


def data_packet(nbytes=1000, stream=1, offset=0):
    return Packet(
        PacketKind.DATA, seq=1, chunks=(StreamChunk(stream, offset, nbytes),)
    )


class TestStreamChunk:
    def test_end_offset(self):
        chunk = StreamChunk(stream_id=3, offset=100, size=50)
        assert chunk.end == 150

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            StreamChunk(stream_id=1, offset=0, size=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            StreamChunk(stream_id=1, offset=-1, size=10)


class TestPacket:
    def test_size_includes_header(self):
        pkt = data_packet(nbytes=1000)
        assert pkt.size_bytes == 1000 + HEADER_BYTES

    def test_ack_packet_is_header_only(self):
        pkt = Packet(PacketKind.ACK, ack_seq=5)
        assert pkt.size_bytes == HEADER_BYTES
        assert pkt.payload_bytes == 0

    def test_uids_are_unique(self):
        a, b = data_packet(), data_packet()
        assert a.uid != b.uid


class TestLossModels:
    def test_no_loss_never_drops(self):
        rng = random.Random(1)
        model = NoLoss()
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_bernoulli_rate_is_approximate(self):
        rng = random.Random(42)
        model = BernoulliLoss(0.1)
        drops = sum(model.should_drop(rng) for _ in range(20_000))
        assert 0.08 < drops / 20_000 < 0.12

    def test_bernoulli_zero_never_drops(self):
        rng = random.Random(1)
        model = BernoulliLoss(0.0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_bernoulli_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_gilbert_elliott_stationary_rate(self):
        model = GilbertElliottLoss(0.01, 0.3, 0.0, 0.5)
        rng = random.Random(7)
        n = 100_000
        drops = sum(model.should_drop(rng) for _ in range(n))
        assert abs(drops / n - model.loss_rate) < 0.005

    def test_gilbert_elliott_produces_bursts(self):
        """Consecutive-drop runs should be longer than under Bernoulli."""
        rng = random.Random(3)
        model = make_loss_model(0.05, bursty=True)
        outcomes = [model.should_drop(rng) for _ in range(50_000)]
        runs, current = [], 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        assert mean_run > 1.2  # Bernoulli at 5% would give ~1.05

    def test_make_loss_model_zero_is_noloss(self):
        assert isinstance(make_loss_model(0.0), NoLoss)

    def test_make_loss_model_bursty_matches_rate(self):
        model = make_loss_model(0.02, bursty=True)
        assert abs(model.loss_rate - 0.02) < 1e-9

    @given(rate=st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=25, deadline=None)
    def test_bursty_fit_preserves_rate(self, rate):
        model = make_loss_model(rate, bursty=True)
        assert abs(model.loss_rate - rate) < 1e-9


class TestLink:
    def test_delivery_after_propagation_delay(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=10.0, rate_mbps=None)
        arrivals = []
        link.transmit(data_packet(), lambda p: arrivals.append(loop.now))
        loop.run()
        assert arrivals == [10.0]

    def test_serialization_delay_at_rate(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=0.0, rate_mbps=8.0)  # 8 Mbps = 1 byte/us
        arrivals = []
        pkt = data_packet(nbytes=1000 - HEADER_BYTES)  # exactly 1000B on wire
        link.transmit(pkt, lambda p: arrivals.append(loop.now))
        loop.run()
        assert arrivals == [pytest.approx(1.0)]  # 8000 bits / 8 Mbps = 1 ms

    def test_fifo_queueing_behind_busy_transmitter(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=0.0, rate_mbps=8.0)
        arrivals = []
        for _ in range(3):
            link.transmit(
                data_packet(nbytes=1000 - HEADER_BYTES),
                lambda p: arrivals.append(loop.now),
            )
        loop.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_dropped_packets_never_delivered(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=1.0, loss=BernoulliLoss(0.5), rng=random.Random(9))
        delivered = []
        sent = 500
        for _ in range(sent):
            link.transmit(data_packet(), delivered.append)
        loop.run()
        assert len(delivered) == link.stats.delivered_packets
        assert link.stats.dropped_packets + link.stats.delivered_packets == sent
        assert 0.4 < link.stats.observed_loss_rate < 0.6

    def test_jitter_preserves_fifo_order(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=5.0, jitter_ms=4.0, rng=random.Random(2))
        order = []
        for i in range(50):
            pkt = data_packet()
            pkt.seq = i
            link.transmit(pkt, lambda p: order.append(p.seq))
        loop.run()
        assert order == sorted(order)

    def test_stats_byte_accounting(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=1.0)
        pkt = data_packet(nbytes=500)
        link.transmit(pkt, lambda p: None)
        loop.run()
        assert link.stats.sent_bytes == pkt.size_bytes
        assert link.stats.delivered_bytes == pkt.size_bytes

    def test_rejects_bad_parameters(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            Link(loop, delay_ms=-1.0)
        with pytest.raises(ValueError):
            Link(loop, delay_ms=1.0, rate_mbps=0.0)

    def test_filter_drop_consumes_loss_draw(self):
        """Regression: a drop_filter drop must not skip the loss draw.

        Two identically seeded lossy links, one with a filter that
        drops only the first packet: every subsequent loss decision —
        and the final RNG state — must match the unfiltered run.
        """

        def run(filtered):
            loop = EventLoop()
            link = Link(
                loop, delay_ms=1.0, loss=BernoulliLoss(0.3),
                rng=random.Random(4),
            )
            if filtered:
                link.drop_filter = lambda pkt: pkt.seq == 0
            outcomes = []
            for i in range(200):
                pkt = data_packet()
                pkt.seq = i
                outcomes.append(link.transmit(pkt, lambda p: None))
            loop.run()
            return outcomes, link.rng.getstate()

        plain, plain_state = run(False)
        faulted, faulted_state = run(True)
        assert faulted_state == plain_state
        assert faulted[1:] == plain[1:]

    def test_reserved_delivery_counts_at_delivery_time(self):
        """Regression: reservations settle when the clock reaches them,
        not at reservation time — mid-visit readers must never see
        in-flight bytes as delivered."""
        loop = EventLoop()
        link = Link(loop, delay_ms=5.0, rate_mbps=8.0)
        deliver_at = link.reserve_transmit(1000, 0.0)
        assert deliver_at == pytest.approx(6.0)  # 1 ms serialize + 5 ms
        assert link.stats.sent_bytes == 1000
        assert link.stats.delivered_bytes == 0
        assert link.stats.delivered_packets == 0
        link.settle_reserved(deliver_at - 0.001)
        assert link.stats.delivered_bytes == 0
        link.settle_reserved(deliver_at)
        assert link.stats.delivered_bytes == 1000
        assert link.stats.delivered_packets == 1

    def test_transmit_settles_due_reservations(self):
        loop = EventLoop()
        link = Link(loop, delay_ms=1.0, rate_mbps=None)
        link.reserve_transmit(500, 0.0)  # due at t=1.0
        loop.call_at(2.0, lambda: link.transmit(data_packet(), lambda p: None))
        loop.run()
        assert link.stats.delivered_bytes == 500 + data_packet().size_bytes


class TestNetemProfile:
    def test_rtt_is_twice_delay(self):
        assert NetemProfile(delay_ms=15.0).rtt_ms == 30.0

    def test_with_loss_returns_modified_copy(self):
        base = NetemProfile(delay_ms=10.0, loss_rate=0.0)
        lossy = base.with_loss(0.01)
        assert base.loss_rate == 0.0
        assert lossy.loss_rate == 0.01
        assert lossy.delay_ms == 10.0

    def test_tc_command_rendering(self):
        profile = NetemProfile(delay_ms=15.0, loss_rate=0.01, rate_mbps=50.0)
        cmd = profile.tc_command()
        assert "delay 15.0ms" in cmd
        assert "loss 1%" in cmd
        assert "rate 50mbit" in cmd

    def test_rejects_invalid_loss(self):
        with pytest.raises(ValueError):
            NetemProfile(loss_rate=1.5)


class TestNetworkPath:
    def test_round_trip_takes_one_rtt(self):
        loop = EventLoop()
        path = NetworkPath(loop, NetemProfile(delay_ms=20.0, rate_mbps=None))
        times = {}

        def server_side(pkt):
            times["at_server"] = loop.now
            path.send_to_client(
                Packet(PacketKind.ACK, ack_seq=pkt.seq),
                lambda p: times.__setitem__("back_at_client", loop.now),
            )

        path.send_to_server(data_packet(), server_side)
        loop.run()
        assert times["at_server"] == pytest.approx(20.0)
        assert times["back_at_client"] == pytest.approx(40.0)

    def test_directions_have_independent_loss_streams(self):
        loop = EventLoop()
        profile = NetemProfile(delay_ms=1.0, loss_rate=0.3, rate_mbps=None)
        path = NetworkPath(loop, profile, rng=random.Random(5))
        for _ in range(300):
            path.send_to_server(data_packet(), lambda p: None)
            path.send_to_client(data_packet(), lambda p: None)
        loop.run()
        up, down = path.uplink.stats, path.downlink.stats
        assert 0.2 < up.observed_loss_rate < 0.4
        assert 0.2 < down.observed_loss_rate < 0.4

    def test_total_bytes_transferred(self):
        loop = EventLoop()
        path = NetworkPath(loop, NetemProfile(delay_ms=1.0, rate_mbps=None))
        pkt = data_packet(nbytes=100)
        path.send_to_server(pkt, lambda p: None)
        loop.run()
        assert path.total_bytes_transferred() == pkt.size_bytes

    def test_same_seed_reproduces_drops(self):
        def run(seed):
            loop = EventLoop()
            profile = NetemProfile(delay_ms=1.0, loss_rate=0.2, rate_mbps=None)
            path = NetworkPath(loop, profile, rng=random.Random(seed))
            delivered = []
            for i in range(100):
                pkt = data_packet()
                pkt.seq = i
                path.send_to_server(pkt, lambda p: delivered.append(p.seq))
            loop.run()
            return delivered

        assert run(11) == run(11)
        assert run(11) != run(12)
