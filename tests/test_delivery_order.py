"""Strict delivery-order invariants for both transports.

These instrument the receiver-side delivery hook to assert the defining
contracts directly: QUIC delivers every stream's bytes in stream order;
TCP additionally delivers across streams in connection order.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventLoop
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection, TcpConnection


class _Recorder:
    """Wraps a connection to record chunk delivery order."""

    def __init__(self, conn):
        self.deliveries = []  # (stream_id, offset, size)
        original = conn._deliver_chunk

        def wrapped(chunk):
            self.deliveries.append((chunk.stream_id, chunk.offset, chunk.size))
            original(chunk)

        conn._deliver_chunk = wrapped


def run_transfer(cls, seed, loss, sizes):
    loop = EventLoop()
    path = NetworkPath(
        loop, NetemProfile(delay_ms=15.0, loss_rate=loss, rate_mbps=50.0),
        rng=random.Random(seed),
    )
    conn = cls(loop, path)
    recorder = _Recorder(conn)
    done = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    streams = [conn.request(400, size) for size in sizes]
    loop.run_until(lambda: all(s.complete for s in streams))
    return recorder.deliveries


@given(
    seed=st.integers(min_value=0, max_value=3000),
    loss=st.sampled_from([0.0, 0.03, 0.1]),
    sizes=st.lists(st.integers(min_value=500, max_value=30_000),
                   min_size=2, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_quic_delivers_each_stream_in_order(seed, loss, sizes):
    deliveries = run_transfer(QuicConnection, seed, loss, sizes)
    next_offset: dict[int, int] = {}
    for stream_id, offset, size in deliveries:
        assert offset == next_offset.get(stream_id, 0), (
            f"stream {stream_id} delivered offset {offset} out of order"
        )
        next_offset[stream_id] = offset + size


@given(
    seed=st.integers(min_value=0, max_value=3000),
    loss=st.sampled_from([0.0, 0.03, 0.1]),
    sizes=st.lists(st.integers(min_value=500, max_value=30_000),
                   min_size=2, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_tcp_delivers_in_stream_order_too(seed, loss, sizes):
    """TCP's connection-order delivery implies per-stream order."""
    deliveries = run_transfer(TcpConnection, seed, loss, sizes)
    next_offset: dict[int, int] = {}
    for stream_id, offset, size in deliveries:
        assert offset == next_offset.get(stream_id, 0)
        next_offset[stream_id] = offset + size


def test_tcp_delivery_follows_connection_byte_order():
    """Under an injected loss, TCP must deliver strictly in the order
    bytes were sent on the connection — never releasing later data
    around a gap."""
    loop = EventLoop()
    path = NetworkPath(
        loop, NetemProfile(delay_ms=15.0, rate_mbps=None), rng=random.Random(0)
    )
    from repro.netsim import PacketKind

    state = {"n": 0}

    def drop_third_data(pkt):
        if pkt.kind is PacketKind.DATA:
            state["n"] += 1
            return state["n"] == 3
        return False

    path.downlink.drop_filter = drop_third_data
    conn = TcpConnection(loop, path)
    sent_order = []
    original_send = conn._send_data_packet

    def record_send(chunk, conn_start, retransmission):
        if not retransmission:
            sent_order.append((chunk.stream_id, chunk.offset))
        original_send(chunk, conn_start, retransmission)

    conn._send_data_packet = record_send
    recorder = _Recorder(conn)
    done = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    streams = [conn.request(400, 9000) for _ in range(2)]
    loop.run_until(lambda: all(s.complete for s in streams))
    delivered_order = [(sid, off) for sid, off, __ in recorder.deliveries]
    assert delivered_order == sent_order  # exact connection order

def test_quic_can_deliver_around_a_gap():
    """The defining contrast: with a loss on stream 1, QUIC delivers
    stream 2's chunks before the retransmission arrives."""
    loop = EventLoop()
    path = NetworkPath(
        loop, NetemProfile(delay_ms=15.0, rate_mbps=None), rng=random.Random(0)
    )
    from repro.netsim import PacketKind

    state = {"dropped": False}

    def drop_first_s1(pkt):
        if (pkt.kind is PacketKind.DATA and not state["dropped"]
                and pkt.chunks[0].stream_id == 1):
            state["dropped"] = True
            return True
        return False

    path.downlink.drop_filter = drop_first_s1
    conn = QuicConnection(loop, path)
    recorder = _Recorder(conn)
    done = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    s1 = conn.request(400, 6000)
    s2 = conn.request(400, 6000)
    loop.run_until(lambda: s1.complete and s2.complete)
    first_s1 = next(i for i, d in enumerate(recorder.deliveries) if d[0] == 1)
    s2_before_s1 = [d for d in recorder.deliveries[:first_s1] if d[0] == 2]
    assert s2_before_s1, "stream 2 should deliver before stream 1's retransmission"
