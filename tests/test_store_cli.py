"""``python -m repro.store`` and the experiments CLI's store flags.

The diff tests exercise the CI perf-gate contract end to end: two named
runs over the same pages, one artificially slowed (a throttled access
link), must make ``diff`` exit non-zero with a CONFIRMED regression —
and a run diffed against itself must not.
"""

import json

import pytest

from repro.measurement import Campaign, CampaignConfig
from repro.store import ResultStore, diff_runs
from repro.store.cli import main as store_main
from repro.web.topsites import GeneratorConfig, cached_universe

SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


@pytest.fixture()
def populated_store(tmp_path):
    """A store with a baseline run and a much slower candidate run."""
    universe = small_universe()
    pages = universe.pages[:3]
    root = str(tmp_path / "st")
    with ResultStore(root) as store:
        Campaign(universe, CampaignConfig(seed=3)).run(
            pages, store=store, run_name="baseline"
        )
        # Same pages, same seed, but a throttled access link: a large,
        # deterministic slowdown in both modes.
        Campaign(universe, CampaignConfig(seed=3, rate_mbps=2.0)).run(
            pages, store=store, run_name="slow"
        )
    return root


class TestDiff:
    def test_regression_detected(self, populated_store):
        with ResultStore(populated_store) as store:
            result = diff_runs(store, "baseline", "slow")
        assert result.regression
        assert result.h3.ci.low > 0
        assert len(result.pages) == 3
        assert result.worst_pages(2)[0].h3_delta_ms >= (
            result.worst_pages(2)[1].h3_delta_ms
        )
        rendered = result.render()
        assert "REGRESSION" in rendered

    def test_self_diff_is_clean(self, populated_store):
        with ResultStore(populated_store) as store:
            result = diff_runs(store, "baseline", "baseline")
        assert not result.regression
        assert all(d.h2_delta_ms == 0.0 for d in result.pages)

    def test_improvement_is_not_a_regression(self, populated_store):
        with ResultStore(populated_store) as store:
            result = diff_runs(store, "slow", "baseline")
        assert not result.regression

    def test_disjoint_runs_raise(self, tmp_path):
        universe = small_universe()
        with ResultStore(str(tmp_path / "st")) as store:
            Campaign(universe, CampaignConfig(seed=3)).run(
                universe.pages[:1], store=store, run_name="a"
            )
            Campaign(universe, CampaignConfig(seed=3)).run(
                universe.pages[1:2], store=store, run_name="b"
            )
            with pytest.raises(ValueError):
                diff_runs(store, "a", "b")

    def test_to_dict_is_json_safe(self, populated_store):
        with ResultStore(populated_store) as store:
            payload = diff_runs(store, "baseline", "slow").to_dict()
        text = json.dumps(payload)
        assert json.loads(text)["regression"] is True


class TestStoreCli:
    def test_stats_exit_zero(self, populated_store, capsys):
        assert store_main(["stats", populated_store]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "complete" in out

    def test_stats_json(self, populated_store, capsys):
        assert store_main(["stats", populated_store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 6
        assert {run["name"] for run in payload["runs"]} == {"baseline", "slow"}

    def test_verify_clean_exit_zero(self, populated_store, capsys):
        assert store_main(["verify", populated_store]) == 0
        assert "ok" in capsys.readouterr().out

    def test_verify_corruption_exit_one(self, populated_store, capsys):
        import os

        artifacts = os.path.join(populated_store, "artifacts.jsonl")
        data = bytearray(open(artifacts, "rb").read())
        data[20] ^= 0xFF
        open(artifacts, "wb").write(bytes(data))
        assert store_main(["verify", populated_store]) == 1

    def test_gc_dry_run_and_real(self, populated_store, capsys):
        with ResultStore(populated_store) as store:
            store.put("orphan", {"x": 1}, kind="paired", config_hash="c")
        assert store_main(["gc", populated_store, "--dry-run"]) == 0
        assert "would prune 1" in capsys.readouterr().out
        assert store_main(["gc", populated_store]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert store_main(["verify", populated_store]) == 0

    def test_diff_regression_exit_one(self, populated_store, capsys):
        assert store_main(["diff", populated_store, "baseline", "slow"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_clean_exit_zero(self, populated_store, capsys):
        assert store_main(
            ["diff", populated_store, "baseline", "baseline"]
        ) == 0

    def test_diff_json_output(self, populated_store, capsys):
        assert store_main(
            ["diff", populated_store, "baseline", "slow", "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regression"] is True
        assert payload["run_a"] == "baseline"

    def test_unknown_store_exit_two(self, tmp_path, capsys):
        assert store_main(["stats", str(tmp_path / "missing")]) == 2

    def test_unknown_run_exit_two(self, populated_store, capsys):
        assert store_main(["diff", populated_store, "baseline", "nope"]) == 2


class TestExperimentsCliStoreFlags:
    def test_store_flag_round_trip(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        root = str(tmp_path / "st")
        argv = [
            "--scale", "smoke", "--sites", "6",
            "--experiments", "table2", "--store", root,
        ]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold
        assert cli_main(argv) == 0
        warm = capsys.readouterr().out
        assert "100% hit rate" in warm
        # everything except the store accounting line is identical
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("== store:") and "[" not in line
        ]
        assert strip(cold) == strip(warm)

    def test_no_store_flag_disables(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        root = str(tmp_path / "st")
        assert cli_main(
            ["--scale", "smoke", "--sites", "6", "--experiments", "table2",
             "--store", root, "--no-store"]
        ) == 0
        out = capsys.readouterr().out
        assert "== store:" not in out
        import os

        assert not os.path.exists(root)

    def test_manifest_carries_config_hash_and_store(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        root = str(tmp_path / "st")
        out_json = str(tmp_path / "out.json")
        assert cli_main(
            ["--scale", "smoke", "--sites", "6", "--experiments", "table2",
             "--store", root, "--run", "named", "--json", out_json]
        ) == 0
        capsys.readouterr()
        payload = json.load(open(out_json))
        manifest = payload["manifest"]
        assert len(manifest["config_hash"]) == 32
        assert manifest["store"]["run_name"] == "named"
        assert manifest["store"]["stats"]["misses"] > 0
        assert any(
            run["name"].startswith("named/")
            for run in manifest["store"]["summary"]["runs"]
        )
