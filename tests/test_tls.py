"""Tests for session tickets and handshake planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tls import SessionTicketCache, plan_handshake
from repro.transport import TlsVersion


class TestSessionTicketCache:
    def test_lookup_empty_is_miss(self):
        cache = SessionTicketCache()
        assert cache.lookup("cdn.example.com", now_ms=0.0) is None
        assert cache.misses == 1

    def test_store_then_lookup_hits(self):
        cache = SessionTicketCache()
        cache.store("cdn.example.com", now_ms=10.0)
        ticket = cache.lookup("cdn.example.com", now_ms=20.0)
        assert ticket is not None
        assert ticket.host == "cdn.example.com"
        assert cache.hits == 1

    def test_ticket_expires(self):
        cache = SessionTicketCache()
        cache.store("h.example", now_ms=0.0, lifetime_ms=100.0)
        assert cache.lookup("h.example", now_ms=99.0) is not None
        assert cache.lookup("h.example", now_ms=100.0) is None
        # Expired ticket was evicted entirely.
        assert "h.example" not in cache

    def test_newer_ticket_replaces_older(self):
        cache = SessionTicketCache()
        first = cache.store("h.example", now_ms=0.0)
        second = cache.store("h.example", now_ms=50.0)
        assert second.ticket_id != first.ticket_id
        assert cache.lookup("h.example", now_ms=60.0).ticket_id == second.ticket_id

    def test_clear_forgets_everything(self):
        cache = SessionTicketCache()
        cache.store("a.example", now_ms=0.0)
        cache.store("b.example", now_ms=0.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("a.example", now_ms=1.0) is None

    def test_hosts_listing(self):
        cache = SessionTicketCache()
        cache.store("a.example", now_ms=0.0)
        cache.store("b.example", now_ms=0.0)
        assert cache.hosts() == frozenset({"a.example", "b.example"})

    def test_ticket_not_valid_before_issue(self):
        cache = SessionTicketCache()
        ticket = cache.store("h.example", now_ms=100.0)
        assert not ticket.valid_at(50.0)

    @given(
        issue=st.floats(min_value=0, max_value=1e6),
        lifetime=st.floats(min_value=1.0, max_value=1e7),
        probe=st.floats(min_value=0, max_value=2e7),
    )
    @settings(max_examples=100, deadline=None)
    def test_validity_window_is_half_open(self, issue, lifetime, probe):
        cache = SessionTicketCache()
        ticket = cache.store("h", now_ms=issue, lifetime_ms=lifetime)
        expected = issue <= probe < issue + lifetime
        assert ticket.valid_at(probe) == expected


class TestHandshakePlan:
    @pytest.mark.parametrize(
        "protocol,tls,ticket,rtts",
        [
            ("h2", TlsVersion.TLS12, False, 3),
            ("h2", TlsVersion.TLS12, True, 2),
            ("h2", TlsVersion.TLS13, False, 2),
            ("h2", TlsVersion.TLS13, True, 2),  # no TCP early data
            ("h1", TlsVersion.TLS13, False, 2),
            ("h3", TlsVersion.TLS13, False, 1),
            ("h3", TlsVersion.TLS13, True, 0),
        ],
    )
    def test_rtt_table_from_the_paper(self, protocol, tls, ticket, rtts):
        plan = plan_handshake(protocol, tls, has_ticket=ticket)
        assert plan.rtts_before_request == rtts

    def test_tls13_early_data_saves_a_round_trip(self):
        plan = plan_handshake("h2", TlsVersion.TLS13, has_ticket=True,
                              tls13_early_data=True)
        assert plan.rtts_before_request == 1

    def test_only_resumed_h3_is_zero_rtt(self):
        assert plan_handshake("h3", has_ticket=True).zero_rtt
        assert not plan_handshake("h3", has_ticket=False).zero_rtt
        assert not plan_handshake("h2", has_ticket=True).zero_rtt

    def test_h3_advantage_grows_with_resumption(self):
        """The paper's core 'fast connection' claim, as arithmetic: H3
        saves 1 RTT on full handshakes and 2 RTTs when resumed (H2
        resumption buys no latency without early data)."""
        h2_full = plan_handshake("h2", TlsVersion.TLS13, has_ticket=False)
        h3_full = plan_handshake("h3", has_ticket=False)
        assert h2_full.rtts_before_request - h3_full.rtts_before_request == 1
        h2_resumed = plan_handshake("h2", TlsVersion.TLS13, has_ticket=True)
        h3_resumed = plan_handshake("h3", has_ticket=True)
        assert h2_resumed.rtts_before_request - h3_resumed.rtts_before_request == 2

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            plan_handshake("spdy")
