"""Tests for the Scenario builder and its presets."""

import pytest

from repro.faults import FAULT_PROFILES, FaultProfile
from repro.measurement.campaign import CampaignConfig
from repro.scenario import SCENARIOS, Scenario, preset
from repro.transport.config import TransportConfig


class TestScenario:
    def test_defaults_render_the_paper_campaign(self):
        config = Scenario(name="x").campaign_config()
        assert config == CampaignConfig()

    def test_overrides_win(self):
        config = Scenario(name="x", loss_rate=0.01).campaign_config(
            seed=42, trace=True
        )
        assert config.loss_rate == 0.01
        assert config.seed == 42
        assert config.trace

    def test_with_faults_accepts_preset_name(self):
        scenario = Scenario(name="base").with_faults("udp-blocked")
        assert scenario.faults is FAULT_PROFILES["udp-blocked"]
        assert scenario.name == "base+udp-blocked"
        assert scenario.campaign_config().fault_profile is scenario.faults

    def test_with_faults_none_disarms(self):
        scenario = preset("udp-blocked").with_faults(None)
        assert scenario.faults is None
        assert scenario.name.endswith("+no-faults")

    def test_with_loss_and_transport(self):
        transport = TransportConfig()
        scenario = Scenario(name="x").with_loss(0.005).with_transport(transport)
        assert scenario.loss_rate == 0.005
        assert scenario.transport is transport
        assert "loss0.005" in scenario.name

    def test_loss_rate_validated(self):
        with pytest.raises(ValueError, match="loss_rate"):
            Scenario(name="x", loss_rate=1.5)

    def test_is_immutable(self):
        scenario = Scenario(name="x")
        with pytest.raises(Exception):
            scenario.loss_rate = 0.5


class TestPresets:
    def test_registry_names(self):
        assert set(SCENARIOS) == {
            "paper-default", "lossy", "udp-blocked", "cdn-hierarchy"
        }

    def test_paper_default_has_no_faults_or_loss(self):
        scenario = preset("paper-default")
        assert scenario.faults is None
        assert scenario.loss_rate == 0.0

    def test_lossy_matches_fig9_heavy_end(self):
        assert preset("lossy").loss_rate == 0.01

    def test_udp_blocked_carries_the_fault_profile(self):
        scenario = preset("udp-blocked")
        assert isinstance(scenario.faults, FaultProfile)
        assert scenario.faults.kinds() == {"udp_blackhole"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            preset("chaos-monkey")
