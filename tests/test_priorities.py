"""Tests for weighted stream scheduling (H2/H3 priorities)."""

import random

import pytest

from repro.browser import Browser, BrowserConfig
from repro.browser.browser import RESOURCE_WEIGHTS
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection
from repro.web import GeneratorConfig, TopSitesGenerator
from repro.web.resource import ResourceType

RTT = 30.0


def make_conn(loop):
    path = NetworkPath(loop, NetemProfile(delay_ms=RTT / 2, rate_mbps=10.0),
                       rng=random.Random(0))
    conn = QuicConnection(loop, path)
    done = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    return conn


class TestWeightedScheduling:
    def test_heavier_stream_finishes_first(self):
        """Two equal-size streams contending on one connection: the
        weight-4 stream must complete before the weight-1 stream."""
        loop = EventLoop()
        conn = make_conn(loop)
        heavy = conn.request(400, 80_000, weight=4)
        light = conn.request(400, 80_000, weight=1)
        loop.run_until(lambda: heavy.complete and light.complete)
        assert heavy.t_complete < light.t_complete

    def test_equal_weights_finish_together(self):
        loop = EventLoop()
        conn = make_conn(loop)
        a = conn.request(400, 80_000, weight=2)
        b = conn.request(400, 80_000, weight=2)
        loop.run_until(lambda: a.complete and b.complete)
        assert abs(a.t_complete - b.t_complete) < 25.0

    def test_weight_floor_is_one(self):
        loop = EventLoop()
        conn = make_conn(loop)
        stream = conn.request(400, 10_000, weight=0)  # clamped to 1
        loop.run_until(lambda: stream.complete)
        assert stream.received == 10_000

    def test_all_bytes_still_delivered(self):
        loop = EventLoop()
        conn = make_conn(loop)
        streams = [conn.request(400, 30_000, weight=w) for w in (1, 3, 5)]
        loop.run_until(lambda: all(s.complete for s in streams))
        assert all(s.received == 30_000 for s in streams)


class TestBrowserPriorities:
    def test_weight_table_covers_all_types(self):
        assert set(RESOURCE_WEIGHTS) == set(ResourceType)
        assert RESOURCE_WEIGHTS[ResourceType.CSS] > RESOURCE_WEIGHTS[ResourceType.IMAGE]

    @pytest.mark.parametrize("prioritized", [False, True])
    def test_page_loads_in_both_modes(self, prioritized):
        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=29)
        loop = EventLoop()
        farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(),
                          rng=random.Random(1))
        farm.warm_caches(universe.pages)
        browser = Browser(
            loop, farm,
            BrowserConfig(use_resource_priorities=prioritized),
            rng=random.Random(2),
        )
        visit = browser.visit(universe.pages[4])
        assert len(visit.entries) == universe.pages[4].total_requests

    def test_priorities_speed_up_blocking_resources(self):
        """With priorities on, CSS/JS entries complete earlier on
        average relative to images sharing their connections."""
        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=29)
        page = universe.pages[4]

        def mean_css_js_end(prioritized):
            loop = EventLoop()
            farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(),
                              rng=random.Random(1))
            farm.warm_caches([page])
            browser = Browser(
                loop, farm,
                BrowserConfig(use_resource_priorities=prioritized),
                rng=random.Random(2),
            )
            visit = browser.visit(page)
            ends = [
                e.started_at_ms + e.time_ms
                for e in visit.entries
                if e.resource_type in ("css", "js")
            ]
            return sum(ends) / len(ends)

        assert mean_css_js_end(True) <= mean_css_js_end(False) + 1.0
