"""Unit tests for congestion controllers and RTT estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import (
    CubicController,
    NewRenoController,
    RttEstimator,
    make_congestion_controller,
)

MSS = 1460


class TestNewReno:
    def test_initial_window_is_ten_segments(self):
        cc = NewRenoController(MSS, 10)
        assert cc.cwnd_bytes == 10 * MSS

    def test_slow_start_doubles_per_window(self):
        cc = NewRenoController(MSS, 10)
        before = cc.cwnd_bytes
        cc.on_ack(before, now_ms=0.0)  # ack a full window
        assert cc.cwnd_bytes == 2 * before

    def test_loss_halves_window(self):
        cc = NewRenoController(MSS, 10)
        cc.on_ack(100 * MSS, now_ms=0.0)
        before = cc.cwnd_bytes
        cc.on_loss(now_ms=1.0)
        assert cc.cwnd_bytes == pytest.approx(before / 2, rel=0.01)

    def test_congestion_avoidance_linear(self):
        cc = NewRenoController(MSS, 10)
        cc.on_loss(now_ms=0.0)  # sets ssthresh, leaves slow start
        assert not cc.in_slow_start
        before = cc.cwnd_bytes
        cc.on_ack(before, now_ms=1.0)  # one full window of acks
        assert cc.cwnd_bytes - before == pytest.approx(MSS, abs=2)

    def test_rto_collapses_to_minimum(self):
        cc = NewRenoController(MSS, 10)
        cc.on_ack(50 * MSS, now_ms=0.0)
        cc.on_rto(now_ms=1.0)
        assert cc.cwnd_bytes == 2 * MSS

    def test_window_never_below_two_segments(self):
        cc = NewRenoController(MSS, 10)
        for i in range(20):
            cc.on_loss(now_ms=float(i))
        assert cc.cwnd_bytes >= 2 * MSS


class TestCubic:
    def test_slow_start_like_reno(self):
        cc = CubicController(MSS, 10)
        before = cc.cwnd_bytes
        cc.on_ack(before, now_ms=0.0)
        assert cc.cwnd_bytes == 2 * before

    def test_loss_multiplies_by_beta(self):
        cc = CubicController(MSS, 10)
        cc.on_ack(100 * MSS, now_ms=0.0)
        before = cc.cwnd_bytes
        cc.on_loss(now_ms=1.0)
        assert cc.cwnd_bytes == pytest.approx(before * CubicController.BETA, rel=0.01)

    def test_cubic_regrows_towards_w_max(self):
        cc = CubicController(MSS, 10)
        cc.on_ack(100 * MSS, now_ms=0.0)
        w_max = cc.cwnd_bytes
        cc.on_loss(now_ms=0.0)
        # Feed acks over simulated seconds; window should recover close
        # to w_max (cubic plateau) without exceeding it wildly early.
        for t in range(1, 40):
            cc.on_ack(MSS, now_ms=t * 250.0)
        assert cc.cwnd_bytes > 0.9 * w_max

    def test_window_never_below_two_segments(self):
        cc = CubicController(MSS, 10)
        for i in range(10):
            cc.on_rto(now_ms=float(i))
        assert cc.cwnd_bytes >= 2 * MSS


class TestFactory:
    def test_makes_newreno(self):
        assert isinstance(make_congestion_controller("newreno", MSS), NewRenoController)

    def test_makes_cubic(self):
        assert isinstance(make_congestion_controller("CUBIC", MSS), CubicController)

    def test_makes_bbr(self):
        from repro.transport import BbrLikeController

        assert isinstance(make_congestion_controller("bbr", MSS), BbrLikeController)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown congestion controller"):
            make_congestion_controller("vegas", MSS)


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator()
        est.on_sample(30.0)
        assert est.srtt_ms == 30.0
        assert est.rttvar_ms == 15.0

    def test_rto_before_samples_is_initial(self):
        est = RttEstimator(initial_rto_ms=200.0)
        assert est.rto_ms == 200.0

    def test_rto_after_stable_samples(self):
        est = RttEstimator()
        for _ in range(50):
            est.on_sample(30.0)
        # rttvar decays towards 0, so rto -> srtt, clamped at the floor.
        assert est.rto_ms < 60.0
        assert est.rto_ms >= 25.0

    def test_variance_grows_with_jittery_samples(self):
        stable, jittery = RttEstimator(), RttEstimator()
        for i in range(50):
            stable.on_sample(30.0)
            jittery.on_sample(30.0 + (10.0 if i % 2 else -10.0))
        assert jittery.rto_ms > stable.rto_ms

    def test_negative_sample_rejected(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.on_sample(-1.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(initial_rto_ms=0.0)

    @given(samples=st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_srtt_stays_within_sample_range(self, samples):
        est = RttEstimator()
        for sample in samples:
            est.on_sample(sample)
        assert min(samples) <= est.srtt_ms <= max(samples)

    @given(samples=st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_rto_always_at_least_floor(self, samples):
        est = RttEstimator(min_rto_ms=25.0)
        for sample in samples:
            est.on_sample(sample)
        assert est.rto_ms >= 25.0
