"""The cache-hierarchy subsystem: tiers, compression, economics, dormancy.

The contracts under test:

* **TierChain** — lookups walk outward from the edge, fill-on-read
  copies the object into every tier it missed, and the reported fetch
  latency/hop count reflect exactly the tiers traversed.
* **Compression negotiation** — hash-derived identity selection is
  deterministic and nested across attack ratios, so the amplification
  factor is monotone by construction; negotiation honours the
  provider's conversion policy and never 406s.
* **Economics** — per-request deltas conserve bytes (egress =
  cache-served + transfer), ledgers merge associatively, and the
  counter round-trip reconstructs the ledger.
* **Dormancy** — a default campaign never sees the subsystem: store
  keys keep schema v2 with a pinned config hash, edges keep the legacy
  flat-LRU serve arithmetic, and no ``economics.*`` counters appear.
* **Determinism** — hierarchy+compression campaigns are bit-identical
  for any worker count, replay bit-identically from a warm store, and
  run green under ``strict``.
* **Proxy cache** — a CONNECT tunnel with ``cache_mb`` serves repeat
  fetches from the proxy and counts them; a MASQUE relay never caches.
"""

import pytest

from repro.cdn.classifier import DictClassifier, classifier_disagreement
from repro.cdn.compression import (
    CompressionConfig,
    CompressionPolicy,
    client_accept_encoding,
    encoded_size,
    negotiate,
    provider_policy,
    wants_identity,
)
from repro.cdn.economics import EconomicsDelta, EconomicsLedger, LEDGER_FIELDS
from repro.cdn.edge import EdgeServer
from repro.cdn.hierarchy import (
    DEFAULT_HIERARCHY,
    HIERARCHY_PRESETS,
    HierarchyConfig,
    TierChain,
    TierSpec,
    hierarchy_preset,
)
from repro.cdn.provider import get_provider
from repro.measurement import Campaign, CampaignConfig
from repro.netsim import ProxyConfig
from repro.store import ResultStore, campaign_config_hash, visit_config_part
from repro.store.keys import _schema_for
from repro.web.resource import Resource, ResourceType
from repro.web.topsites import GeneratorConfig, cached_universe

from tests.test_faults import result_fingerprint

#: Pinned fingerprint of the all-defaults campaign config.  This is the
#: dormancy acceptance criterion made executable: if adding a knob to
#: the hierarchy subsystem ever changes the default config's store
#: identity, every existing store is silently invalidated — this test
#: fails first.
DEFAULT_CONFIG_HASH = "236bee6174ac2965f75b9159eb697dc7"

SMALL = GeneratorConfig(n_sites=6)


@pytest.fixture(scope="module")
def universe():
    return cached_universe(SMALL, seed=17)


def two_tier(edge_bytes=10_000, regional_bytes=1_000_000):
    return HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=edge_bytes, fetch_ms=25.0),
            TierSpec(name="regional", capacity_bytes=regional_bytes, fetch_ms=40.0),
        )
    )


class TestTierChain:
    def test_full_miss_fills_every_tier(self):
        chain = TierChain(two_tier())
        found = chain.lookup("obj", 100)
        assert found.tier is None
        assert found.fetch_ms == 65.0
        assert found.hops == 2
        for tier in chain.tiers:
            assert "obj" in tier.cache

    def test_edge_hit_is_free(self):
        chain = TierChain(two_tier())
        chain.lookup("obj", 100)
        found = chain.lookup("obj", 100)
        assert found.tier == "edge"
        assert found.fetch_ms == 0.0
        assert found.hops == 0

    def test_regional_hit_refills_edge(self):
        chain = TierChain(two_tier(edge_bytes=150))
        chain.lookup("a", 100)
        chain.lookup("b", 100)  # evicts "a" from the tiny edge
        assert "a" not in chain.edge_cache
        found = chain.lookup("a", 100)
        assert found.tier == "regional"
        assert found.fetch_ms == 25.0  # only the edge fill leg
        assert found.hops == 1
        assert "a" in chain.edge_cache  # fill-on-read

    def test_warm_seeds_every_tier(self):
        chain = TierChain(two_tier())
        chain.warm("obj", 100)
        found = chain.lookup("obj", 100)
        assert found.tier == "edge" and found.hops == 0

    def test_full_miss_ms_sums_the_chain(self):
        assert two_tier().full_miss_ms == 65.0
        assert DEFAULT_HIERARCHY.full_miss_ms == 65.0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least one tier"):
            HierarchyConfig(tiers=())
        with pytest.raises(ValueError, match="unique"):
            HierarchyConfig(
                tiers=(
                    TierSpec(name="edge", capacity_bytes=1, fetch_ms=1.0),
                    TierSpec(name="edge", capacity_bytes=2, fetch_ms=2.0),
                )
            )
        with pytest.raises(ValueError, match="capacity_bytes"):
            TierSpec(name="t", capacity_bytes=0, fetch_ms=1.0)

    def test_presets_resolve(self):
        assert hierarchy_preset("edge-regional") is DEFAULT_HIERARCHY
        names = [t.name for t in hierarchy_preset("edge-metro-regional").tiers]
        assert names == ["edge", "metro", "regional"]
        assert set(HIERARCHY_PRESETS) == {"edge-regional", "edge-metro-regional"}
        with pytest.raises(KeyError, match="unknown hierarchy preset"):
            hierarchy_preset("nope")


class TestCompression:
    def test_encoded_size_units(self):
        assert encoded_size(1000, "identity") == 1000
        assert encoded_size(1000, "gzip") == 350
        assert encoded_size(1000, "br") == 300
        assert encoded_size(1, "br") == 1  # floor of one wire byte
        with pytest.raises(ValueError, match="unknown encoding"):
            encoded_size(1000, "zstd")

    def test_wants_identity_deterministic_and_nested(self):
        urls = [f"https://cdn.example/{i}.js" for i in range(400)]
        for ratio in (0.0, 0.3, 0.7, 1.0):
            assert [wants_identity(u, ratio) for u in urls] == [
                wants_identity(u, ratio) for u in urls
            ]
        # Nesting is what makes amplification monotone in the ratio.
        low = {u for u in urls if wants_identity(u, 0.3)}
        high = {u for u in urls if wants_identity(u, 0.7)}
        assert low < high
        assert {u for u in urls if wants_identity(u, 1.0)} == set(urls)
        assert not any(wants_identity(u, 0.0) for u in urls)

    def test_client_accept_encoding(self):
        honest = CompressionConfig(identity_request_ratio=0.0)
        attack = CompressionConfig(identity_request_ratio=1.0)
        url = "https://cdn.example/app.js"
        assert client_accept_encoding(url, "js", honest) == ("br", "gzip", "identity")
        assert client_accept_encoding(url, "js", attack) == ("identity",)
        # Images are served as-is regardless of the attack ratio.
        assert client_accept_encoding(url, "image", attack) == ("identity",)

    def test_negotiate_respects_policy(self):
        full = CompressionPolicy(conversions=("identity", "gzip", "br"), cache_encoded=True)
        decompress_only = CompressionPolicy(conversions=("identity",), cache_encoded=False)
        # Stored form is always free to serve.
        assert negotiate(("br", "gzip", "identity"), "br", decompress_only) == "br"
        # The attack: identity demanded, policy decompresses.
        assert negotiate(("identity",), "br", decompress_only) == "identity"
        assert negotiate(("gzip", "identity"), "br", full) == "gzip"
        # Nothing producible: serve the stored form rather than 406.
        assert negotiate(("gzip",), "br", decompress_only) == "br"

    def test_provider_policy_fallback(self):
        assert "br" in provider_policy("cloudflare").conversions
        assert provider_policy("unheard-of").conversions == ("identity",)
        assert provider_policy(None).conversions == ("identity",)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="identity_request_ratio"):
            CompressionConfig(identity_request_ratio=1.5)
        with pytest.raises(ValueError, match="conversion_think_ms"):
            CompressionConfig(conversion_think_ms=-1.0)


class TestResourceEncoding:
    def make(self, rtype, size=1000):
        return Resource(
            url="https://cdn.example/a",
            host="cdn.example",
            rtype=rtype,
            size_bytes=size,
        )

    def test_compressible_by_type(self):
        assert self.make(ResourceType.JS).compressible
        assert not self.make(ResourceType.IMAGE).compressible

    def test_stored_encoding_and_encoded_bytes(self):
        js = self.make(ResourceType.JS)
        assert js.stored_encoding == "br"
        assert js.encoded_bytes("br") == 300
        assert js.encoded_bytes("identity") == 1000
        image = self.make(ResourceType.IMAGE)
        assert image.stored_encoding == "identity"
        # Non-compressible payloads never shrink on the wire.
        assert image.encoded_bytes("br") == 1000


class TestEconomicsLedger:
    def test_add_and_conservation(self):
        ledger = EconomicsLedger()
        ledger.add(
            EconomicsDelta(egress_bytes=300, cache_served_bytes=300),
            hit_tier="edge",
        )
        ledger.add(
            EconomicsDelta(
                egress_bytes=1000,
                transfer_bytes=1000,
                origin_bytes=300,
                tier_fetch_bytes=600,
                conversions=1,
            ),
            hit_tier=None,
        )
        assert ledger.conserved
        assert ledger.requests == 2
        assert ledger.tier_hits == {"edge": 1}
        assert ledger.misses == 1
        assert ledger.amplification == pytest.approx(1300 / 300)
        assert ledger.offload_ratio == pytest.approx(1.0 - 300 / 1300)

    def test_origin_hit_tier_counts_as_miss(self):
        ledger = EconomicsLedger()
        ledger.add(EconomicsDelta(egress_bytes=10, transfer_bytes=10), hit_tier="origin")
        assert ledger.misses == 1 and ledger.tier_hits == {}

    def test_merge_is_fieldwise(self):
        a, b = EconomicsLedger(), EconomicsLedger()
        a.add(EconomicsDelta(egress_bytes=5, cache_served_bytes=5), hit_tier="edge")
        b.add(EconomicsDelta(egress_bytes=7, transfer_bytes=7), hit_tier="regional")
        b.add(EconomicsDelta(egress_bytes=1, transfer_bytes=1, origin_bytes=1))
        a.merge(b)
        assert a.egress_bytes == 13
        assert a.tier_hits == {"edge": 1, "regional": 1}
        assert a.misses == 1
        assert a.conserved

    def test_counter_roundtrip(self):
        ledger = EconomicsLedger()
        ledger.add(
            EconomicsDelta(
                egress_bytes=100, transfer_bytes=100, origin_bytes=35,
                tier_fetch_bytes=70, conversions=1,
            )
        )
        items = dict(ledger.counter_items())
        assert items["economics.egress_bytes"] == 100
        assert items["cache.misses"] == 1
        rebuilt = EconomicsLedger.from_counters(lambda name: items.get(name, 0))
        for name in LEDGER_FIELDS:
            assert getattr(rebuilt, name) == getattr(ledger, name)
        assert rebuilt.misses == 1


class TestEdgeServerRich:
    def make_edge(self, **kwargs):
        return EdgeServer("cdnjs.cloudflare.com", get_provider("cloudflare"), **kwargs)

    def test_flat_serve_keeps_legacy_shape(self):
        edge = self.make_edge()
        decision = edge.serve("k", 1000, "h2")
        assert decision.hit_tier is None
        assert decision.body_bytes is None
        assert decision.economics is None
        assert "x-cache-tier" not in decision.headers

    def test_identity_attack_amplifies_egress(self):
        edge = self.make_edge(compression=CompressionConfig(identity_request_ratio=1.0))
        decision = edge.serve("k", 1000, "h2", accept_encoding=("identity",), rtype="js")
        eco = decision.economics
        # br ingress (300 B) decompressed to identity egress (1000 B).
        assert eco.origin_bytes == 300
        assert eco.egress_bytes == 1000
        assert eco.egress_bytes > eco.origin_bytes
        assert eco.conversions == 1
        assert eco.egress_bytes == eco.cache_served_bytes + eco.transfer_bytes

    def test_honest_client_gets_stored_form_free(self):
        edge = self.make_edge(compression=CompressionConfig())
        decision = edge.serve(
            "k", 1000, "h2", accept_encoding=("br", "gzip", "identity"), rtype="js"
        )
        assert decision.headers["content-encoding"] == "br"
        assert decision.economics.conversions == 0
        assert decision.economics.egress_bytes == 300

    def test_hierarchy_tier_header_and_miss_latency(self):
        edge = self.make_edge(hierarchy=DEFAULT_HIERARCHY)
        miss = edge.serve("k", 1000, "h2")
        assert miss.hit_tier == "origin"
        assert miss.headers["x-cache-tier"] == "origin"
        assert miss.think_ms == edge.base_think_ms + DEFAULT_HIERARCHY.full_miss_ms
        hit = edge.serve("k", 1000, "h2")
        assert hit.hit_tier == "edge"
        assert hit.think_ms == edge.base_think_ms

    def test_converted_variant_cached_when_policy_allows(self):
        # Cloudflare's policy caches post-conversion variants: the second
        # identity request for a br-stored object skips the conversion.
        edge = self.make_edge(compression=CompressionConfig(identity_request_ratio=1.0))
        first = edge.serve("k", 1000, "h2", accept_encoding=("identity",), rtype="js")
        second = edge.serve("k", 1000, "h2", accept_encoding=("identity",), rtype="js")
        assert first.economics.conversions == 1
        assert second.economics.conversions == 0
        assert second.cache_hit

    def test_hierarchy_only_reports_economics_without_body_bytes(self):
        edge = self.make_edge(hierarchy=DEFAULT_HIERARCHY)
        decision = edge.serve("k", 1000, "h2")
        assert decision.economics is not None
        assert decision.body_bytes is None  # byte arithmetic stays legacy


class TestDormancy:
    def test_default_config_hash_is_pinned(self):
        assert campaign_config_hash(CampaignConfig()) == DEFAULT_CONFIG_HASH

    def test_default_visit_part_omits_new_keys(self):
        part = visit_config_part(CampaignConfig())
        assert "hierarchy" not in part
        assert "compression" not in part
        assert _schema_for(part) == 2

    def test_hierarchy_config_bumps_schema(self):
        part = visit_config_part(CampaignConfig(cache_hierarchy=DEFAULT_HIERARCHY))
        assert "hierarchy" in part
        assert _schema_for(part) == 3
        part = visit_config_part(CampaignConfig(compression=CompressionConfig()))
        assert "compression" in part
        assert _schema_for(part) == 3

    def test_proxy_cache_bumps_schema_only_when_on(self):
        plain = visit_config_part(CampaignConfig(proxy=ProxyConfig()))
        cached = visit_config_part(
            CampaignConfig(proxy=ProxyConfig(model="connect-tunnel", cache_mb=8.0))
        )
        assert _schema_for(plain) == 2
        assert _schema_for(cached) == 3
        assert plain != cached

    def test_hierarchy_changes_store_identity(self):
        assert (
            campaign_config_hash(CampaignConfig(cache_hierarchy=DEFAULT_HIERARCHY))
            != DEFAULT_CONFIG_HASH
        )

    def test_default_campaign_emits_no_economics_counters(self, universe):
        config = CampaignConfig(seed=5, collect_counters=True)
        result = Campaign(universe, config).run(universe.pages[:2], workers=1)
        names = set(result.counter_totals().to_dict().get("counters", {}))
        assert not any(n.startswith("economics.") for n in names)
        assert not any(n.startswith("cache.") for n in names)


def hierarchy_config(**kwargs):
    return CampaignConfig(
        seed=7,
        cache_hierarchy=DEFAULT_HIERARCHY,
        compression=CompressionConfig(identity_request_ratio=0.5),
        collect_counters=True,
        **kwargs,
    )


class TestHierarchyCampaign:
    def test_workers_4_reproduces_serial(self, universe):
        pages = universe.pages[:3]
        serial = Campaign(universe, hierarchy_config()).run(pages, workers=1)
        parallel = Campaign(universe, hierarchy_config()).run(pages, workers=4)
        assert result_fingerprint(serial) == result_fingerprint(parallel)
        assert (
            serial.counter_totals().to_dict() == parallel.counter_totals().to_dict()
        )

    def test_strict_mode_green_and_invisible(self, universe):
        pages = universe.pages[:2]
        plain = Campaign(universe, hierarchy_config()).run(pages, workers=1)
        checked = Campaign(universe, hierarchy_config(strict=True)).run(
            pages, workers=1
        )
        assert result_fingerprint(plain) == result_fingerprint(checked)

    def test_warm_store_replay_all_hits(self, universe, tmp_path):
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, hierarchy_config()).run(
                pages, store=store, run_name="a"
            )
            warm = Campaign(universe, hierarchy_config()).run(
                pages, store=store, run_name="b"
            )
        assert fresh.store_stats.misses == len(pages)
        assert warm.store_stats.hits == len(pages)
        assert warm.store_stats.misses == 0
        assert result_fingerprint(warm) == result_fingerprint(fresh)

    def test_economics_counters_conserve(self, universe):
        result = Campaign(universe, hierarchy_config()).run(
            universe.pages[:3], workers=1
        )
        totals = result.counter_totals()
        ledger = EconomicsLedger.from_counters(totals.counter)
        assert ledger.requests > 0
        assert ledger.egress_bytes > 0
        assert ledger.conserved

    def test_tier_hit_counters_present(self, universe):
        # The double-visit protocol guarantees edge hits on the second
        # visit of every page.
        result = Campaign(universe, hierarchy_config()).run(
            universe.pages[:2], workers=1
        )
        assert result.counter_totals().counter("cache.hits.edge") > 0


class TestProxyCache:
    def proxied(self, cache_mb, model="connect-tunnel"):
        return CampaignConfig(
            seed=9,
            proxy=ProxyConfig(model=model, cache_mb=cache_mb),
            collect_counters=True,
        )

    def test_tunnel_cache_hits_counted(self, universe):
        pages = universe.pages[:2]
        result = Campaign(universe, self.proxied(cache_mb=64.0)).run(pages, workers=1)
        hits = sum(
            visit.pool_stats.proxy_cache_hits
            for pv in result.paired_visits
            for visit in (pv.h2, pv.h3)
        )
        assert hits > 0
        assert result.counter_totals().counter("pool.proxy_cache_hits") == hits

    def test_cache_off_records_nothing(self, universe):
        pages = universe.pages[:2]
        result = Campaign(universe, self.proxied(cache_mb=0.0)).run(pages, workers=1)
        assert result.counter_totals().counter("pool.proxy_cache_hits") == 0

    def test_masque_relay_never_caches(self, universe):
        # End-to-end QUIC is opaque to the relay: cache_mb is ignored.
        pages = universe.pages[:2]
        result = Campaign(universe, self.proxied(cache_mb=64.0, model="masque-relay")).run(
            pages, workers=1
        )
        assert result.counter_totals().counter("pool.proxy_cache_hits") == 0

    def test_proxy_cache_campaign_deterministic(self, universe):
        pages = universe.pages[:2]
        serial = Campaign(universe, self.proxied(cache_mb=64.0)).run(pages, workers=1)
        parallel = Campaign(universe, self.proxied(cache_mb=64.0)).run(pages, workers=2)
        assert result_fingerprint(serial) == result_fingerprint(parallel)


class TestClassifierDisagreement:
    class Entry:
        def __init__(self, host, is_cdn, provider):
            self.host = host
            self.is_cdn = is_cdn
            self.provider = provider

    def test_summary_shape(self):
        entries = [
            # Agreement: shared-domain host both classifiers know.
            self.Entry("cdnjs.cloudflare.com", True, "cloudflare"),
            # Header-only CDN signal: the dictionary misses it.
            self.Entry("www.customer-site.com", True, "akamai"),
            # Agreement on non-CDN.
            self.Entry("origin.example.net", False, None),
        ]
        summary = classifier_disagreement(entries)
        assert summary["entries"] == 3
        assert summary["disagreements"] == 1
        assert summary["missed_cdn"] == 1
        assert summary["extra_cdn"] == 0
        assert summary["disagreement_rate"] == pytest.approx(1 / 3)

    def test_provider_mismatch_counted(self):
        table = {"cloudflare.com": "not-cloudflare"}
        summary = classifier_disagreement(
            [self.Entry("cdnjs.cloudflare.com", True, "cloudflare")],
            dict_classifier=DictClassifier(table),
        )
        assert summary["provider_mismatch"] == 1
        assert summary["disagreements"] == 1
