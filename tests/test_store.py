"""The result store: keys, persistence, replay determinism, resume, gc.

The contracts under test are the subsystem's acceptance criteria:

* **Key discipline** — a visit key covers exactly what determines the
  visit (config slice, page + its hosts, vantage, probe, derived seed,
  schema version) and nothing else (fault-profile names, campaign
  topology, unrelated universe growth).
* **Replay determinism** — a warm-store campaign is bit-identical to a
  fresh one, for any worker count, with strict mode on, and with the
  store disabled entirely.
* **Incrementality** — an interrupted campaign's journal makes
  ``resume`` re-execute only the missing visits.
* **Integrity** — ``verify`` catches byte-level corruption; ``gc``
  prunes only what no named run (or journal) can reach.
"""

import json
import os

import pytest

from repro.measurement import Campaign, CampaignConfig, derive_seed
from repro.measurement.consecutive import ConsecutiveRun, ConsecutiveVisitRunner
from repro.measurement.report import campaign_report
from repro.store import (
    ResultStore,
    StoreError,
    StoreStats,
    campaign_config_hash,
    canonical_json,
    consecutive_key,
    paired_visit_key,
    visit_config_part,
)
from repro.store.keys import page_part
from repro.transport.config import TransportConfig
from repro.faults import FAULT_PROFILES, FaultProfile
from repro.web.topsites import GeneratorConfig, cached_universe

from tests.test_parallel import result_fingerprint, visit_fingerprint

SMALL = GeneratorConfig(
    n_sites=6,
    resources_per_page_median=12.0,
    min_resources=5,
    max_resources=25,
)


def small_universe(seed: int = 21):
    return cached_universe(SMALL, seed=seed)


def visit_key_for(universe, config, page_index=0, vp_index=0, probe_index=0):
    from repro.measurement.vantage import default_vantage_points

    page = universe.pages[page_index]
    return paired_visit_key(
        visit_config_part(config),
        page_part(page, universe.hosts),
        default_vantage_points()[vp_index],
        probe_index,
        derive_seed(config.seed, vp_index, probe_index, page_index),
    )


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestKeys:
    def test_key_is_stable(self):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        assert visit_key_for(universe, config) == visit_key_for(universe, config)

    def test_key_covers_visit_shaping_knobs(self):
        universe = small_universe()
        base = CampaignConfig(seed=3)
        for variant in (
            CampaignConfig(seed=3, loss_rate=0.01),
            CampaignConfig(seed=3, rate_mbps=10.0),
            CampaignConfig(seed=3, visits_per_page=1),
            CampaignConfig(seed=3, warm_popular=False),
            CampaignConfig(seed=3, use_session_tickets=False),
            CampaignConfig(seed=3, trace=True),
            CampaignConfig(seed=3, strict=True),
            CampaignConfig(
                seed=3,
                transport_config=TransportConfig(initial_cwnd_packets=20),
            ),
            CampaignConfig(seed=3, fault_profile=FAULT_PROFILES["udp-blocked"]),
            CampaignConfig(seed=4),  # base seed enters via the derived seed
        ):
            assert visit_key_for(universe, base) != visit_key_for(universe, variant)

    def test_key_ignores_campaign_topology(self):
        """probes_per_vantage / max_vantage_points change how many
        visits exist, not what any one of them measures."""
        universe = small_universe()
        base = CampaignConfig(seed=3)
        wide = CampaignConfig(seed=3, probes_per_vantage=3, max_vantage_points=None)
        assert visit_key_for(universe, base) == visit_key_for(universe, wide)

    def test_key_ignores_fault_profile_name(self):
        universe = small_universe()
        profile = FAULT_PROFILES["udp-blocked"]
        renamed = FaultProfile(
            name="renamed", events=profile.events, retry=profile.retry
        )
        a = CampaignConfig(seed=3, fault_profile=profile)
        b = CampaignConfig(seed=3, fault_profile=renamed)
        assert visit_key_for(universe, a) == visit_key_for(universe, b)

    def test_key_distinct_across_slots(self):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        keys = {
            visit_key_for(universe, config, page_index=p, probe_index=pr)
            for p in range(3)
            for pr in range(2)
        }
        assert len(keys) == 6

    def test_config_hash_covers_topology_and_seed(self):
        base = CampaignConfig(seed=3)
        assert campaign_config_hash(base) == campaign_config_hash(base)
        assert campaign_config_hash(base) != campaign_config_hash(
            CampaignConfig(seed=4)
        )
        assert campaign_config_hash(base) != campaign_config_hash(
            CampaignConfig(seed=3, probes_per_vantage=2)
        )

    def test_consecutive_key_depends_on_order_and_mode(self):
        universe = small_universe()
        materials = [page_part(p, universe.hosts) for p in universe.pages[:3]]
        config = {"seed": 0}
        forward = consecutive_key("h2-only", materials, config)
        assert forward == consecutive_key("h2-only", materials, config)
        assert forward != consecutive_key("h3-enabled", materials, config)
        assert forward != consecutive_key("h2-only", materials[::-1], config)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        with ResultStore(str(tmp_path / "st")) as store:
            document = {"format": "x/1", "value": [1, 2, 3]}
            assert store.put("k1", document, kind="paired", config_hash="c")
            assert store.contains("k1")
            assert store.get("k1") == document
            assert store.get("missing") is None

    def test_put_is_idempotent(self, tmp_path):
        with ResultStore(str(tmp_path / "st")) as store:
            assert store.put("k1", {"a": 1}, kind="paired", config_hash="c")
            assert not store.put("k1", {"a": 2}, kind="paired", config_hash="c")
            assert store.get("k1") == {"a": 1}

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "st")
        with ResultStore(root) as store:
            store.put("k1", {"a": 1}, kind="paired", config_hash="c")
        with ResultStore(root) as store:
            assert store.get("k1") == {"a": 1}

    def test_schema_version_mismatch_raises(self, tmp_path):
        root = str(tmp_path / "st")
        ResultStore(root).close()
        import sqlite3

        db = sqlite3.connect(os.path.join(root, "index.sqlite3"))
        with db:
            db.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        db.close()
        with pytest.raises(StoreError):
            ResultStore(root)

    def test_get_detects_corruption(self, tmp_path):
        root = str(tmp_path / "st")
        with ResultStore(root) as store:
            store.put("k1", {"a": "payload-to-corrupt"}, kind="paired",
                      config_hash="c")
        artifacts = os.path.join(root, "artifacts.jsonl")
        data = bytearray(open(artifacts, "rb").read())
        data[10] ^= 0xFF
        open(artifacts, "wb").write(bytes(data))
        with ResultStore(root) as store:
            with pytest.raises(StoreError):
                store.get("k1")
            problems = store.verify()
        assert problems and problems[0].problem == "hash_mismatch"

    def test_unknown_run_raises(self, tmp_path):
        with ResultStore(str(tmp_path / "st")) as store:
            with pytest.raises(StoreError):
                store.run_keys("nope")

    def test_stats_accounting(self, tmp_path):
        stats = StoreStats(hits=3, misses=1, writes=1, resumed=2)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        merged = StoreStats()
        merged.merge(stats)
        merged.merge(stats)
        assert merged.hits == 6 and merged.resumed == 4
        assert StoreStats().hit_rate == 0.0


class TestReplayDeterminism:
    def test_warm_store_replay_is_bit_identical(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:3]
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, config).run(
                pages, store=store, run_name="a"
            )
            warm = Campaign(universe, config).run(
                pages, store=store, run_name="b"
            )
        assert fresh.store_stats.misses == len(pages)
        assert warm.store_stats.hits == len(pages)
        assert warm.store_stats.misses == 0
        assert result_fingerprint(warm) == result_fingerprint(fresh)

    def test_warm_replay_matches_for_any_worker_count(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=5)
        pages = universe.pages[:3]
        baseline = Campaign(universe, config).run(pages, workers=1)
        with ResultStore(str(tmp_path / "st")) as store:
            for workers in (1, 2, 4):
                run = Campaign(universe, config).run(
                    pages, store=store, run_name=f"w{workers}", workers=workers
                )
                assert result_fingerprint(run) == result_fingerprint(baseline)

    def test_strict_mode_replay_identical(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=7, strict=True)
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, config).run(pages, store=store, run_name="s")
            warm = Campaign(universe, config).run(pages, store=store, run_name="s2")
        assert result_fingerprint(warm) == result_fingerprint(fresh)

    def test_store_off_is_bit_identical_to_store_on(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=9)
        pages = universe.pages[:2]
        plain = Campaign(universe, config).run(pages)
        with ResultStore(str(tmp_path / "st")) as store:
            stored = Campaign(universe, config).run(pages, store=store, run_name="r")
        assert plain.store_stats is None
        assert result_fingerprint(plain) == result_fingerprint(stored)

    def test_counter_totals_identical_warm_vs_fresh(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3, collect_counters=True)
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, config).run(pages, store=store, run_name="a")
            warm = Campaign(universe, config).run(pages, store=store, run_name="b")
        assert warm.counter_totals().to_dict() == fresh.counter_totals().to_dict()

    def test_report_identical_modulo_store_line(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:3]
        with ResultStore(str(tmp_path / "st")) as store:
            fresh = Campaign(universe, config).run(pages, store=store, run_name="a")
            warm = Campaign(universe, config).run(pages, store=store, run_name="b")
        fresh_report = campaign_report(fresh)
        warm_report = campaign_report(warm)
        assert (
            warm_report.render(include_store=False)
            == fresh_report.render(include_store=False)
        )
        assert "store:" in warm_report.render()
        assert f"{len(pages)} hits" in warm_report.render()

    def test_replayed_outcomes_marked(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            Campaign(universe, config).run(pages, store=store, run_name="a")
            warm = Campaign(universe, config).run(pages, store=store, run_name="b")
            assert warm.store_stats.hits == len(pages)
            payload = store.get(store.run_keys("a")[0])
        # stored payloads never carry provenance
        assert "source" not in payload


class TestResume:
    def test_interrupted_run_resumes_only_missing_visits(self, tmp_path, monkeypatch):
        import repro.measurement.parallel as parallel_mod

        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:4]
        real = parallel_mod.measure_visit_outcome
        calls = {"n": 0}

        def dies_after_two(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt("simulated kill")
            return real(*args, **kwargs)

        with ResultStore(str(tmp_path / "st")) as store:
            monkeypatch.setattr(
                parallel_mod, "measure_visit_outcome", dies_after_two
            )
            with pytest.raises(KeyboardInterrupt):
                Campaign(universe, config).run(pages, store=store, run_name="r")
            monkeypatch.setattr(parallel_mod, "measure_visit_outcome", real)

            info = store.run_info("r")
            assert not info.complete
            assert info.journaled == 2  # both completed visits are durable

            resumed = Campaign(universe, config).run(
                pages, store=store, run_name="r", resume=True
            )
            assert resumed.store_stats.resumed == 2
            assert resumed.store_stats.misses == 2
            assert store.run_info("r").complete
            assert len(store.run_keys("r")) == len(pages)

        baseline = Campaign(universe, config).run(pages)
        assert result_fingerprint(resumed) == result_fingerprint(baseline)

    def test_without_resume_prior_journal_is_not_counted(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            Campaign(universe, config).run(pages, store=store, run_name="r")
            rerun = Campaign(universe, config).run(pages, store=store, run_name="r")
            assert rerun.store_stats.hits == len(pages)
            assert rerun.store_stats.resumed == 0


class TestGc:
    def test_gc_prunes_only_unreachable(self, tmp_path):
        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:2]
        with ResultStore(str(tmp_path / "st")) as store:
            kept = Campaign(universe, config).run(pages, store=store, run_name="keep")
            # an anonymous run's entries are reachable from no run
            store.put("orphan", {"x": 1}, kind="paired", config_hash="c")

            dry = store.gc(dry_run=True)
            assert dry.dry_run and dry.entries_pruned == 1
            assert store.contains("orphan")  # dry run wrote nothing

            report = store.gc()
            assert report.entries_pruned == 1
            assert report.bytes_reclaimed > 0
            assert not store.contains("orphan")
            # the named run still replays bit-identically post-compaction
            warm = Campaign(universe, config).run(pages, store=store, run_name="keep2")
            assert warm.store_stats.hits == len(pages)
            assert result_fingerprint(warm) == result_fingerprint(kept)
            assert store.verify() == []

    def test_journal_keeps_interrupted_work_alive(self, tmp_path, monkeypatch):
        import repro.measurement.parallel as parallel_mod

        universe = small_universe()
        config = CampaignConfig(seed=3)
        pages = universe.pages[:3]
        real = parallel_mod.measure_visit_outcome
        calls = {"n": 0}

        def dies_after_one(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        with ResultStore(str(tmp_path / "st")) as store:
            monkeypatch.setattr(parallel_mod, "measure_visit_outcome", dies_after_one)
            with pytest.raises(KeyboardInterrupt):
                Campaign(universe, config).run(pages, store=store, run_name="r")
            monkeypatch.setattr(parallel_mod, "measure_visit_outcome", real)
            # gc between the crash and the resume must not discard the
            # journaled visit
            report = store.gc()
            assert report.entries_pruned == 0
            resumed = Campaign(universe, config).run(
                pages, store=store, run_name="r", resume=True
            )
            assert resumed.store_stats.resumed == 1

    def test_gc_on_empty_store(self, tmp_path):
        with ResultStore(str(tmp_path / "st")) as store:
            report = store.gc()
        assert report.entries_before == 0
        assert report.entries_pruned == 0


class TestConsecutiveReplay:
    def test_walk_replay_is_bit_identical(self, tmp_path):
        universe = small_universe()
        pages = list(universe.pages[:3])
        with ResultStore(str(tmp_path / "st")) as store:
            fresh_runner = ConsecutiveVisitRunner(universe, seed=2, store=store)
            fresh_h2, fresh_h3 = fresh_runner.run_both(pages)
            warm_h2, warm_h3 = ConsecutiveVisitRunner(
                universe, seed=2, store=store
            ).run_both(pages)
        assert fresh_h2.source == "fresh" and warm_h2.source == "replay"
        for fresh, warm in ((fresh_h2, warm_h2), (fresh_h3, warm_h3)):
            assert [visit_fingerprint(v) for v in warm.visits] == [
                visit_fingerprint(v) for v in fresh.visits
            ]
            assert warm.resumed_connections() == fresh.resumed_connections()

    def test_walk_round_trip_format_guard(self):
        with pytest.raises(ValueError):
            ConsecutiveRun.from_dict({"format": "other/1"})

    def test_different_seed_misses(self, tmp_path):
        universe = small_universe()
        pages = list(universe.pages[:2])
        with ResultStore(str(tmp_path / "st")) as store:
            ConsecutiveVisitRunner(universe, seed=2, store=store).run(pages, "h2-only")
            other = ConsecutiveVisitRunner(universe, seed=3, store=store)
            other.run(pages, "h2-only")
            assert store.stats_summary()["entries"] == 2


class TestStudyIntegration:
    def test_study_campaign_and_consecutive_share_store(self, tmp_path):
        from repro.core.study import H3CdnStudy, StudyConfig

        def study(store):
            return H3CdnStudy(
                StudyConfig(
                    n_sites=6,
                    seed=4,
                    generator_config=SMALL,
                    max_campaign_pages=2,
                    max_consecutive_pages=2,
                    store=store,
                    run_name="t",
                )
            )

        with ResultStore(str(tmp_path / "st")) as store:
            first = study(store)
            first.table2()
            first.fig8a()
            assert first.campaign_result.store_stats.misses == 2
            second = study(store)
            second.table2()
            second.fig8a()
            assert second.campaign_result.store_stats.hits == 2
            assert second.campaign_result.store_stats.misses == 0
            names = store.run_names()
        assert "t/campaign" in names and "t/consecutive" in names
