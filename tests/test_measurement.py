"""Tests for the measurement harness: farm, probes, campaigns, consecutive."""

import random

import pytest

from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.events import EventLoop
from repro.measurement import (
    Campaign,
    CampaignConfig,
    ConsecutiveVisitRunner,
    Probe,
    ProbeNetProfile,
    ServerFarm,
    default_vantage_points,
)
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def universe():
    return TopSitesGenerator(GeneratorConfig(n_sites=8)).generate(seed=21)


class TestServerFarm:
    def test_lazy_instantiation(self, universe):
        farm = ServerFarm(EventLoop(), universe.hosts)
        assert len(farm._servers) == 0
        host = next(iter(universe.hosts))
        server = farm.server(host)
        assert server.hostname == host
        assert farm.server(host) is server  # cached

    def test_path_shared_per_host(self, universe):
        farm = ServerFarm(EventLoop(), universe.hosts)
        host = next(iter(universe.hosts))
        assert farm.path(host) is farm.path(host)

    def test_netem_overlay_scales_rtt(self, universe):
        profile = ProbeNetProfile(rtt_scale=2.0, extra_delay_ms=5.0)
        host = next(iter(universe.hosts.values()))
        netem = profile.netem_for(host)
        assert netem.delay_ms == pytest.approx(host.base_rtt_ms + 5.0)

    def test_warm_caches_seeds_popular_objects(self, universe):
        farm = ServerFarm(EventLoop(), universe.hosts)
        farm.warm_caches(universe.pages)
        page = universe.pages[0]
        popular_cdn = [r for r in page.cdn_resources if r.popular]
        assert popular_cdn, "expected popular CDN resources"
        resource = popular_cdn[0]
        assert resource.url in farm.server(resource.host).cache

    def test_clear_caches(self, universe):
        farm = ServerFarm(EventLoop(), universe.hosts)
        farm.warm_caches(universe.pages)
        page = universe.pages[0]
        resource = [r for r in page.cdn_resources if r.popular][0]
        farm.clear_caches()
        assert resource.url not in farm.server(resource.host).cache


class TestVantagePoints:
    def test_paper_sites(self):
        vps = default_vantage_points()
        assert [vp.name for vp in vps] == ["utah", "wisconsin", "clemson"]
        assert all(vp.n_probes == 3 for vp in vps)

    def test_profiles_differ(self):
        vps = default_vantage_points()
        profiles = {vp.net_profile() for vp in vps}
        assert len(profiles) == 3

    def test_netem_loss_passes_through(self):
        vp = default_vantage_points()[0]
        assert vp.net_profile(loss_rate=0.01).loss_rate == 0.01


class TestProbe:
    def test_double_visit_warms_second_measurement(self, universe):
        """First visit pays origin fetches; the warm second visit has
        strictly more cache hits.  (PLT can shift a little either way:
        a warm visit is burstier and can queue longer on the access
        link, matching the paper's 'no significant difference'.)"""
        probe = Probe("p0", universe, seed=1)
        page = universe.pages[1]
        browser = probe.browsers[H2_ONLY]
        browser.clear_session_state()
        first = browser.visit(page)
        browser.clear_session_state()
        second = browser.visit(page)
        assert second.plt_ms <= first.plt_ms * 1.15 + 50.0
        hits_first = sum(1 for e in first.entries if e.cache_hit)
        hits_second = sum(1 for e in second.entries if e.cache_hit)
        assert hits_second >= hits_first

    def test_measure_page_returns_last_visit(self, universe):
        probe = Probe("p0", universe, seed=1)
        visit = probe.measure_page(universe.pages[1], H3_ENABLED, visits=2)
        # Second visit: every CDN entry should be a cache hit.
        cdn_entries = [e for e in visit.entries if e.is_cdn]
        assert cdn_entries
        assert all(e.cache_hit for e in cdn_entries)

    def test_measure_page_clears_tickets_between_visits(self, universe):
        probe = Probe("p0", universe, seed=1)
        visit = probe.measure_page(universe.pages[1], H3_ENABLED, visits=2)
        assert visit.har.resumed_connection_count() == 0

    def test_invalid_visits_rejected(self, universe):
        probe = Probe("p0", universe, seed=1)
        with pytest.raises(ValueError):
            probe.measure_page(universe.pages[0], H2_ONLY, visits=0)


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self, universe):
        campaign = Campaign(universe, CampaignConfig(seed=3))
        return campaign.run(universe.pages[:5])

    def test_one_paired_visit_per_page(self, result):
        assert len(result.paired_visits) == 5
        assert result.pages_measured == 5

    def test_both_modes_recorded(self, result):
        for pv in result.paired_visits:
            assert pv.h2.protocol_mode == H2_ONLY
            assert pv.h3.protocol_mode == H3_ENABLED
            assert len(pv.h2.entries) == len(pv.h3.entries)

    def test_plt_reduction_definition(self, result):
        pv = result.paired_visits[0]
        assert pv.plt_reduction_ms == pv.h2.plt_ms - pv.h3.plt_ms

    def test_entries_iterator_counts(self, result):
        h2_entries = list(result.entries(H2_ONLY))
        expected = sum(pv.page.total_requests for pv in result.paired_visits)
        assert len(h2_entries) == expected

    def test_unknown_mode_rejected(self, result):
        with pytest.raises(ValueError):
            result.visits("h9")

    def test_multiple_probes_multiply_visits(self, universe):
        config = CampaignConfig(probes_per_vantage=2, max_vantage_points=1, seed=3)
        result = Campaign(universe, config).run(universe.pages[:2])
        assert len(result.paired_visits) == 4
        assert {pv.probe_name for pv in result.paired_visits} == {"utah-0", "utah-1"}

    def test_h3_wins_on_average(self, result):
        """Aggregate sanity: across pages, H3 should reduce PLT."""
        reductions = [pv.plt_reduction_ms for pv in result.paired_visits]
        assert sum(reductions) / len(reductions) > 0


class TestConsecutiveVisits:
    def test_resumption_accumulates_across_pages(self, universe):
        runner = ConsecutiveVisitRunner(universe, seed=5)
        run = runner.run(list(universe.pages), H3_ENABLED)
        resumed = run.resumed_connections()
        # The first page can resume nothing; later pages share giant
        # providers with earlier ones and must resume something.
        assert resumed[0] == 0
        assert sum(resumed[1:]) > 0

    def test_tickets_disabled_kills_resumption(self, universe):
        runner = ConsecutiveVisitRunner(universe, seed=5, use_session_tickets=False)
        run = runner.run(list(universe.pages[:4]), H3_ENABLED)
        assert sum(run.resumed_connections()) == 0

    def test_run_both_modes(self, universe):
        runner = ConsecutiveVisitRunner(universe, seed=5)
        h2_run, h3_run = runner.run_both(list(universe.pages[:3]))
        assert h2_run.mode == H2_ONLY
        assert h3_run.mode == H3_ENABLED
        assert len(h2_run.visits) == len(h3_run.visits) == 3

    def test_unknown_mode_rejected(self, universe):
        runner = ConsecutiveVisitRunner(universe, seed=5)
        with pytest.raises(ValueError):
            runner.run(list(universe.pages[:2]), "h9")

    def test_consecutive_h3_beats_h2_more_with_shared_providers(self, universe):
        """Directional check for the Fig. 8 mechanism: on the pages
        after the first, H3's 0-RTT resumption should produce a PLT
        advantage over H2's 1-RTT resumption."""
        runner = ConsecutiveVisitRunner(universe, seed=5)
        h2_run, h3_run = runner.run_both(list(universe.pages[:6]))
        later_reductions = [
            h2.plt_ms - h3.plt_ms
            for h2, h3 in zip(h2_run.visits[1:], h3_run.visits[1:])
        ]
        assert sum(later_reductions) / len(later_reductions) > 0
