"""The analytic transport fast path (``repro.transport.fastpath``).

The contract under test has three legs:

1. **Exactness** — on an eligible (loss-free, jitter-free, unfiltered)
   path, a fast-path run produces the *same* application-visible
   timings as the packet path: per-stream first-byte and completion
   times match to the float, including streams enqueued mid-transfer
   (the resumable walk yields to every pending real event, so the
   weighted round-robin sees new streams exactly when the packet path
   would).
2. **Inertness** — whenever the path is ineligible (loss, jitter, a
   drop filter, a fault wrapper) or packet-level observers are attached
   (tracer, strict checker), the fast path changes nothing: runs are
   bit-identical with the flag on or off.
3. **Separation** — ``fast_path`` is part of the result store's
   content address, so fast-path results never alias packet-path ones.
"""

import random

import pytest

from repro.check import CheckContext
from repro.events import EventLoop
from repro.measurement import Campaign, CampaignConfig
from repro.netsim import NetemProfile, NetworkPath
from repro.obs.trace import ConnectionTracer
from repro.store.keys import transport_part
from repro.transport import QuicConnection, TcpConnection, TransportConfig
from repro.web.topsites import GeneratorConfig, cached_universe

RTT = 30.0
BOTH = pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])


def make_path(loop, loss=0.0, seed=0, rate_mbps=20.0, jitter_ms=0.0):
    profile = NetemProfile(
        delay_ms=RTT / 2, loss_rate=loss, rate_mbps=rate_mbps,
        jitter_ms=jitter_ms,
    )
    return NetworkPath(loop, profile, rng=random.Random(seed))


def run_transfer(
    conn_cls, fast, sizes, loss=0.0, jitter_ms=0.0, stagger_ms=0.0,
    tracer=None, check=None, drop_filter=None, wrap=None,
):
    """One connection fetching ``sizes`` concurrently; returns timings.

    ``stagger_ms`` issues request *i* at ``i * stagger_ms`` after the
    handshake instead of all at once — the mid-transfer enqueue case.
    ``wrap`` optionally wraps the path (fault-injection style) before
    the connection sees it.
    """
    loop = EventLoop()
    path = make_path(loop, loss=loss, jitter_ms=jitter_ms)
    if drop_filter is not None:
        path.downlink.drop_filter = drop_filter
    if wrap is not None:
        path = wrap(path)
    conn = conn_cls(
        loop, path, config=TransportConfig(fast_path=fast),
        rng=random.Random(7), tracer=tracer, check=check,
    )
    first = {}
    done = {}

    def issue(i, size):
        conn.request(
            300, size,
            on_first_byte=lambda t, i=i: first.setdefault(i, t),
            on_complete=lambda t, i=i: done.setdefault(i, t),
        )

    def go(_hs):
        for i, size in enumerate(sizes):
            if stagger_ms and i:
                loop.call_later(i * stagger_ms, issue, i, size)
            else:
                issue(i, size)

    conn.connect(go)
    loop.run(until_ms=120_000)
    assert len(done) == len(sizes), "transfer did not finish"
    return {
        "first": first,
        "done": done,
        "events": loop.processed_events,
        "sent": conn.stats.data_packets_sent,
        "acked": conn.stats.acks_received,
        "received": {s.stream_id: s.received for s in conn.streams.values()},
        "conn": conn,
    }


def assert_identical(slow, fast, expect_fewer_events=False):
    assert slow["first"] == fast["first"]
    assert slow["done"] == fast["done"]
    assert slow["sent"] == fast["sent"]
    assert slow["acked"] == fast["acked"]
    assert slow["received"] == fast["received"]
    if expect_fewer_events:
        assert fast["events"] < slow["events"] / 5
    else:
        assert slow["events"] == fast["events"]


class TestExactness:
    @BOTH
    def test_single_stream_times_match_packet_path(self, conn_cls):
        slow = run_transfer(conn_cls, False, [250_000])
        fast = run_transfer(conn_cls, True, [250_000])
        assert_identical(slow, fast, expect_fewer_events=True)

    @BOTH
    def test_concurrent_streams_interleave_identically(self, conn_cls):
        sizes = [400_000, 120_000, 3_000]
        slow = run_transfer(conn_cls, False, sizes)
        fast = run_transfer(conn_cls, True, sizes)
        assert_identical(slow, fast, expect_fewer_events=True)

    @BOTH
    def test_mid_transfer_enqueue_joins_round_robin(self, conn_cls):
        # Streams 1 and 2 are requested while stream 0's transfer is
        # in full flight; the walk must yield so they interleave at
        # exactly the packet path's times.
        sizes = [400_000, 150_000, 80_000]
        slow = run_transfer(conn_cls, False, sizes, stagger_ms=40.0)
        fast = run_transfer(conn_cls, True, sizes, stagger_ms=40.0)
        assert_identical(slow, fast, expect_fewer_events=True)
        # And the late streams really did overlap stream 0.
        assert slow["first"][1] < slow["done"][0]

    @BOTH
    def test_byte_conservation(self, conn_cls):
        sizes = [123_457, 999, 64_000]
        fast = run_transfer(conn_cls, True, sizes)
        assert fast["received"] == {
            i + 1: size for i, size in enumerate(sizes)
        }

    @BOTH
    def test_congestion_state_matches_packet_path(self, conn_cls):
        # Both runs settle completely (run to queue drain), so cc/rtt
        # state — fed by the same ack values at the same times — must
        # agree exactly.
        slow = run_transfer(conn_cls, False, [250_000])
        fast = run_transfer(conn_cls, True, [250_000])
        assert fast["conn"].cc.cwnd_bytes == slow["conn"].cc.cwnd_bytes
        assert fast["conn"].rtt.srtt_ms == slow["conn"].rtt.srtt_ms
        assert fast["conn"].rtt.rto_ms == slow["conn"].rtt.rto_ms
        assert (
            fast["conn"].cc.cwnd_bytes
            > fast["conn"].config.initial_cwnd_packets * fast["conn"].config.mss
        )


class TestInertness:
    @BOTH
    def test_lossy_path_bit_identical(self, conn_cls):
        sizes = [200_000, 50_000]
        slow = run_transfer(conn_cls, False, sizes, loss=0.02)
        fast = run_transfer(conn_cls, True, sizes, loss=0.02)
        assert_identical(slow, fast)

    @BOTH
    def test_jittered_path_bit_identical(self, conn_cls):
        sizes = [100_000]
        slow = run_transfer(conn_cls, False, sizes, jitter_ms=3.0)
        fast = run_transfer(conn_cls, True, sizes, jitter_ms=3.0)
        assert_identical(slow, fast)

    @BOTH
    def test_drop_filter_disables_fast_path(self, conn_cls):
        dropped = []

        def drop_first(pkt):
            if not dropped and pkt.chunks:
                dropped.append(pkt.seq)
                return True
            return False

        slow = run_transfer(conn_cls, False, [80_000], drop_filter=drop_first)
        dropped.clear()
        fast = run_transfer(conn_cls, True, [80_000], drop_filter=drop_first)
        assert dropped, "filter never engaged"
        assert_identical(slow, fast)

    @BOTH
    def test_fault_wrapped_path_disables_fast_path(self, conn_cls):
        from repro.events import EventLoop as _EL
        from repro.faults import FaultInjector, FaultProfile

        def wrap(path):
            injector = FaultInjector(FaultProfile(), path.loop)
            return injector.wrap_path(path, "example.org", quic=True)

        slow = run_transfer(conn_cls, False, [60_000], wrap=wrap)
        fast = run_transfer(conn_cls, True, [60_000], wrap=wrap)
        assert_identical(slow, fast)

    @BOTH
    def test_tracer_forces_packet_path(self, conn_cls):
        tracer = ConnectionTracer("t", "proto")
        slow = run_transfer(conn_cls, False, [60_000])
        fast = run_transfer(conn_cls, True, [60_000], tracer=tracer)
        # Same timings, same (per-packet) event count — and the trace
        # actually holds packet-level records.
        assert_identical(slow, fast)
        assert tracer.count("transport:packet_sent") > 10

    @BOTH
    def test_strict_check_forces_packet_path(self, conn_cls):
        check = CheckContext(mode="raise")
        slow = run_transfer(conn_cls, False, [60_000])
        fast = run_transfer(conn_cls, True, [60_000], check=check)
        assert slow["first"] == fast["first"]
        assert slow["done"] == fast["done"]
        assert slow["sent"] == fast["sent"]

    @BOTH
    def test_flag_off_is_the_default(self, conn_cls):
        assert TransportConfig().fast_path is False


class TestLifecycle:
    @BOTH
    def test_close_mid_walk_is_clean(self, conn_cls):
        loop = EventLoop()
        path = make_path(loop)
        conn = conn_cls(
            loop, path, config=TransportConfig(fast_path=True),
            rng=random.Random(7),
        )
        conn.connect(lambda _hs: conn.request(300, 500_000))
        # Run partway into the transfer, then tear down.
        loop.run(until_ms=RTT * 3)
        assert conn._fp_epoch is not None
        conn.close()
        assert conn._fp_epoch is None
        loop.run(until_ms=10_000)  # leftover callbacks must be harmless

    @BOTH
    def test_sequential_epochs_on_one_connection(self, conn_cls):
        # Two transfers back to back: the second epoch starts from the
        # first's final cc/rtt/seq state, exactly like the packet path.
        # The second request is issued at a fixed absolute time (after
        # both runs have fully settled) so the comparison is not
        # confused by the fast path draining the queue earlier.
        def run(fast):
            loop = EventLoop()
            conn = conn_cls(
                loop, make_path(loop),
                config=TransportConfig(fast_path=fast), rng=random.Random(7),
            )
            done = []
            conn.connect(
                lambda _hs: conn.request(300, 100_000, on_complete=done.append)
            )
            loop.call_at(
                400.0,
                lambda: conn.request(300, 100_000, on_complete=done.append),
            )
            loop.run()
            assert len(done) == 2
            return done

        assert run(True) == run(False)


class TestAccounting:
    @BOTH
    def test_delivered_totals_match_packet_path(self, conn_cls):
        """End-of-visit delivered totals are identical fast vs slow."""
        sizes = [250_000, 40_000]
        slow = run_transfer(conn_cls, False, sizes)
        fast = run_transfer(conn_cls, True, sizes)
        slow_path, fast_path = slow["conn"].path, fast["conn"].path
        assert (
            fast_path.total_bytes_transferred()
            == slow_path.total_bytes_transferred()
        )
        for direction in ("uplink", "downlink"):
            slow_stats = getattr(slow_path, direction).stats
            fast_stats = getattr(fast_path, direction).stats
            assert fast_stats.delivered_packets == slow_stats.delivered_packets
            assert fast_stats.delivered_bytes == slow_stats.delivered_bytes

    @BOTH
    def test_mid_walk_totals_never_over_report(self, conn_cls):
        """Regression: reservations the walk has made for *future*
        delivery times must not show up in delivered stats yet."""
        loop = EventLoop()
        path = make_path(loop)
        conn = conn_cls(
            loop, path, config=TransportConfig(fast_path=True),
            rng=random.Random(7),
        )
        conn.connect(lambda _hs: conn.request(300, 500_000))
        loop.run(until_ms=RTT * 3)
        assert conn._fp_epoch is not None
        assert path.downlink._pending_reserved, "walk reserved nothing ahead"
        path.downlink.settle_reserved(loop.now)
        # Deliveries the walk reserved for times beyond the current
        # clock must still be pending, not already counted delivered.
        assert path.downlink._pending_reserved
        assert (
            path.downlink.stats.delivered_bytes
            < path.downlink.stats.sent_bytes
        )
        conn.close()
        loop.run()


class TestStoreSeparation:
    def test_fast_path_flag_changes_content_address(self):
        off = transport_part(TransportConfig())
        on = transport_part(TransportConfig(fast_path=True))
        assert off != on
        assert on["fast_path"] is True


class TestCampaignLevel:
    def test_campaign_runs_and_stays_close_to_packet_path(self):
        universe = cached_universe(GeneratorConfig(n_sites=4), seed=11)
        pages = universe.pages[:4]
        slow = Campaign(universe, CampaignConfig(seed=3)).run(pages, workers=1)
        fast = Campaign(
            universe,
            CampaignConfig(
                seed=3, transport_config=TransportConfig(fast_path=True)
            ),
        ).run(pages, workers=1)
        assert len(fast.paired_visits) == len(slow.paired_visits)
        for slow_pv, fast_pv in zip(slow.paired_visits, fast.paired_visits):
            for slow_v, fast_v in (
                (slow_pv.h2, fast_pv.h2), (slow_pv.h3, fast_pv.h3)
            ):
                assert fast_v.status == slow_v.status
                # Residual divergence is same-instant tie-breaking only.
                assert fast_v.plt_ms == pytest.approx(slow_v.plt_ms, rel=1e-3)
