"""Tests for campaign reporting."""

import pytest

from repro.measurement import Campaign, CampaignConfig, campaign_report
from repro.measurement.campaign import CampaignResult
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def result():
    universe = TopSitesGenerator(GeneratorConfig(n_sites=8)).generate(seed=19)
    return Campaign(universe, CampaignConfig(seed=19)).run(universe.pages[:6])


class TestCampaignReport:
    def test_counts_align_with_result(self, result):
        report = campaign_report(result)
        assert report.pages_measured == 6
        assert report.h2.pages == report.h3.pages == 6
        assert report.h2.requests == report.h3.requests  # same URL set

    def test_plt_statistics_ordered(self, result):
        report = campaign_report(result)
        for summary in (report.h2, report.h3):
            assert summary.median_plt_ms <= summary.p90_plt_ms

    def test_reduction_ci_brackets_point(self, result):
        report = campaign_report(result)
        ci = report.plt_reduction_ci
        assert ci.low <= ci.point <= ci.high

    def test_win_rate_in_unit_interval(self, result):
        report = campaign_report(result)
        assert 0.0 <= report.h3_win_rate <= 1.0

    def test_bytes_accounted(self, result):
        report = campaign_report(result)
        assert report.h2.bytes_transferred > 0
        # Both modes fetch the same resources.
        assert report.h2.bytes_transferred == report.h3.bytes_transferred

    def test_render_is_readable(self, result):
        text = campaign_report(result).render()
        assert "PLT reduction" in text
        assert "h2-only" in text and "h3-enabled" in text

    def test_empty_campaign_rejected(self, result):
        empty = CampaignResult(result.universe, result.config, [])
        with pytest.raises(ValueError):
            campaign_report(empty)

    def test_deterministic_ci_seed(self, result):
        assert campaign_report(result, seed=3) == campaign_report(result, seed=3)
