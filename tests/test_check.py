"""Tests for the ``repro.check`` invariant subsystem and the bug sweep.

Three layers of coverage:

* the checker machinery itself (context modes, the null object, the
  congestion-controller proxy, the event-loop monotonicity hook);
* strict mode end to end — a strict campaign runs violation-free, is
  bit-identical to a non-strict run, and the full experiment registry
  passes under strict;
* regression tests for the latent bugs the checker flushed out (DNS
  latency misattribution, ``PoolStats`` merge drift, ``cdf_series``
  division by zero, HAR deserialization of negative phases, loss-sweep
  config derivation).
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    NULL_CHECK,
    CheckContext,
    CheckedController,
    InvariantViolation,
    NullCheck,
    Violation,
)
from repro.events import EventLoop, ScheduledEvent, Timer
from repro.faults import FAULT_PROFILES
from repro.http import PoolStats
from repro.measurement.campaign import Campaign, CampaignConfig
from repro.measurement.parallel import run_campaigns
from repro.transport.congestion import NewRenoController
from repro.web.topsites import GeneratorConfig, cached_universe


@pytest.fixture(scope="module")
def universe():
    return cached_universe(GeneratorConfig(n_sites=8), seed=11)


def fingerprint(result) -> str:
    return json.dumps(
        [
            (pv.probe_name, pv.page.url, pv.h2.to_dict(), pv.h3.to_dict())
            for pv in result.paired_visits
        ],
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# The checker machinery
# ---------------------------------------------------------------------------


class TestCheckContext:
    def test_raise_mode_raises_on_violation(self):
        check = CheckContext()
        check.require(True, "x:ok", "fine")
        with pytest.raises(InvariantViolation) as excinfo:
            check.require(False, "x:bad", "broke", time_ms=4.5, value=3)
        violation = excinfo.value.violation
        assert violation.invariant == "x:bad"
        assert violation.time_ms == 4.5
        assert violation.data == {"value": 3}

    def test_collect_mode_accumulates(self):
        check = CheckContext(mode="collect")
        check.require(False, "x:first", "one")
        check.require(True, "x:ok", "fine")
        check.require(False, "x:second", "two")
        assert not check.ok
        assert [v.invariant for v in check.violations] == ["x:first", "x:second"]
        assert check.checks_run == 3
        assert len(check.render()) == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CheckContext(mode="explode")

    def test_violation_renders_context(self):
        violation = Violation("pool:thing", "went wrong", time_ms=12.0,
                              data={"url": "u"})
        text = str(violation)
        assert "[pool:thing]" in text
        assert "t=12.000ms" in text
        assert "went wrong" in text

    def test_invariant_violation_is_assertion_error(self):
        check = CheckContext()
        with pytest.raises(AssertionError):
            check.fail("x:bad", "boom")

    def test_null_check_is_falsy_noop(self):
        assert not NULL_CHECK
        assert isinstance(NULL_CHECK, NullCheck)
        # Both entry points swallow everything silently.
        NULL_CHECK.require(False, "x:bad", "ignored")
        NULL_CHECK.fail("x:bad", "ignored")

    def test_checks_run_counts_passes_too(self):
        check = CheckContext()
        for _ in range(5):
            check.require(True, "x:ok", "fine")
        assert check.checks_run == 5
        assert check.ok


class _BrokenController:
    """A deliberately buggy controller to prove the proxy fires."""

    def __init__(self, mss=1200, ack_shrinks=False, loss_grows=False,
                 ssthresh_above=False, below_floor=False):
        self.mss = mss
        self._cwnd = 10 * mss
        self._ssthresh = None
        self.ack_shrinks = ack_shrinks
        self.loss_grows = loss_grows
        self.ssthresh_above = ssthresh_above
        self.below_floor = below_floor

    @property
    def cwnd_bytes(self):
        return int(self._cwnd)

    @property
    def ssthresh_bytes(self):
        return self._ssthresh

    @property
    def in_slow_start(self):
        return self._ssthresh is None

    def on_ack(self, acked_bytes, now_ms):
        if self.ack_shrinks:
            self._cwnd -= acked_bytes
        else:
            self._cwnd += acked_bytes

    def on_loss(self, now_ms):
        if self.loss_grows:
            self._cwnd *= 2
        elif self.ssthresh_above:
            self._ssthresh = self._cwnd * 4
            self._cwnd /= 2
        elif self.below_floor:
            self._cwnd = 0
        else:
            self._ssthresh = self._cwnd / 2
            self._cwnd /= 2

    def on_rto(self, now_ms):
        self.on_loss(now_ms)


class TestCheckedController:
    def wrap(self, **flags):
        inner = _BrokenController(**flags)
        return CheckedController(inner, CheckContext(), inner.mss)

    def test_ack_shrinking_cwnd_fires(self):
        cc = self.wrap(ack_shrinks=True)
        with pytest.raises(InvariantViolation, match="cc:ack_monotone"):
            cc.on_ack(1200, 1.0)

    def test_loss_growing_cwnd_fires(self):
        cc = self.wrap(loss_grows=True)
        with pytest.raises(InvariantViolation, match="cc:congestion_response"):
            cc.on_loss(1.0)

    def test_ssthresh_above_window_fires(self):
        cc = self.wrap(ssthresh_above=True)
        with pytest.raises(InvariantViolation, match="cc:ssthresh_shrinks"):
            cc.on_loss(1.0)

    def test_cwnd_floor_fires(self):
        cc = self.wrap(below_floor=True)
        with pytest.raises(InvariantViolation, match="cc:cwnd_floor"):
            cc.on_rto(1.0)

    def test_well_behaved_controller_passes(self):
        inner = NewRenoController(mss=1200)
        check = CheckContext()
        cc = CheckedController(inner, check, 1200)
        for i in range(20):
            cc.on_ack(1200, float(i))
        cc.on_loss(21.0)
        for i in range(20):
            cc.on_ack(1200, 22.0 + i)
        cc.on_rto(50.0)
        assert check.ok
        assert check.checks_run > 0

    def test_delegates_untouched_attributes(self):
        inner = NewRenoController(mss=1200)
        cc = CheckedController(inner, CheckContext(), 1200)
        assert cc.cwnd_bytes == inner.cwnd_bytes
        assert cc.in_slow_start is inner.in_slow_start
        assert cc.loss_events == 0
        assert "NewReno" in repr(cc)


class TestLoopMonotonicity:
    def test_corrupted_heap_fires(self):
        """An event stamped in the past (behind call_later's back) is
        caught at pop time.  White-box: injects directly into the heap
        scheduler's queue (the other schedulers share the same check
        via test_every_pop_is_checked below)."""
        import heapq

        from repro.events.loop import HeapEventLoop

        loop = HeapEventLoop()
        loop.set_check(CheckContext())
        loop.call_later(10.0, lambda: None)
        loop.run()
        assert loop.now == 10.0
        # Bypass the scheduling guards: push a past-dated event directly.
        rogue = ScheduledEvent(5.0, 10_000, lambda: None, (), loop)
        heapq.heappush(loop._queue, rogue)
        loop._live += 1
        with pytest.raises(InvariantViolation, match="loop:time_monotonic"):
            loop.run()

    def test_corrupted_calendar_fires(self):
        """Same injection against the calendar queue's drain run."""
        from repro.events.loop import CalendarEventLoop

        loop = CalendarEventLoop()
        loop.set_check(CheckContext())
        loop.call_later(10.0, lambda: None)
        loop.run()
        assert loop.now == 10.0
        rogue = ScheduledEvent(5.0, 10_000, lambda: None, (), loop)
        loop._drain.append((rogue.time, rogue.seq, rogue))
        loop._live += 1
        with pytest.raises(InvariantViolation, match="loop:time_monotonic"):
            loop.run()

    def test_step_checks_too(self):
        import heapq

        from repro.events.loop import HeapEventLoop

        loop = HeapEventLoop()
        loop.set_check(CheckContext())
        loop.call_later(10.0, lambda: None)
        while loop.step():
            pass
        rogue = ScheduledEvent(5.0, 10_000, lambda: None, (), loop)
        heapq.heappush(loop._queue, rogue)
        loop._live += 1
        with pytest.raises(InvariantViolation, match="loop:time_monotonic"):
            loop.step()

    def test_every_pop_is_checked(self):
        """All schedulers (including the C kernel, which cannot be
        corrupted from Python) route every pop through check.require
        with the monotonicity verdict."""

        class RecordingCheck:
            def __init__(self):
                self.calls = []

            def require(self, condition, invariant, message, **data):
                self.calls.append((condition, invariant, data))

        loop = EventLoop()
        check = RecordingCheck()
        loop.set_check(check)
        loop.call_later(1.0, lambda: None)
        loop.call_later(2.0, lambda: None)
        loop.run()
        assert [c[0] for c in check.calls] == [True, True]
        assert {c[1] for c in check.calls} == {"loop:time_monotonic"}
        assert check.calls[1][2]["time_ms"] == 1.0
        assert check.calls[1][2]["event_time_ms"] == 2.0

    def test_set_check_with_null_clears(self):
        loop = EventLoop()
        loop.set_check(NULL_CHECK)
        assert loop._check is None
        check = CheckContext()
        loop.set_check(check)
        assert loop._check is check
        loop.set_check(None)
        assert loop._check is None

    def test_normal_run_is_clean(self):
        loop = EventLoop()
        check = CheckContext()
        loop.set_check(check)
        for i in range(10):
            loop.call_later(float(i), lambda: None)
        loop.run()
        assert check.ok
        assert check.checks_run == 10


# ---------------------------------------------------------------------------
# Strict mode end to end
# ---------------------------------------------------------------------------


class TestStrictCampaign:
    def test_strict_campaign_runs_clean(self, universe):
        config = CampaignConfig(strict=True, seed=3)
        result = Campaign(universe, config).run(universe.pages[:4])
        assert len(result.paired_visits) == 4
        assert not result.failures

    def test_strict_is_bit_identical_to_off(self, universe):
        pages = universe.pages[:4]
        on = Campaign(universe, CampaignConfig(strict=True, seed=3)).run(pages)
        off = Campaign(universe, CampaignConfig(strict=False, seed=3)).run(pages)
        assert fingerprint(on) == fingerprint(off)

    @pytest.mark.parametrize("profile", ["udp-blocked", "flaky-link",
                                         "dns-flaky", "reset-storm"])
    def test_strict_under_faults_runs_clean(self, universe, profile):
        config = CampaignConfig(
            strict=True, seed=3, fault_profile=FAULT_PROFILES[profile]
        )
        result = Campaign(universe, config).run(universe.pages[:3])
        assert len(result.paired_visits) == 3

    def test_strict_does_not_perturb_faulted_results(self, universe):
        pages = universe.pages[:3]
        profile = FAULT_PROFILES["flaky-link"]
        on = Campaign(
            universe, CampaignConfig(strict=True, seed=3, fault_profile=profile)
        ).run(pages)
        off = Campaign(
            universe, CampaignConfig(strict=False, seed=3, fault_profile=profile)
        ).run(pages)
        assert fingerprint(on) == fingerprint(off)

    def test_strict_consecutive_runner(self, universe):
        from repro.measurement.consecutive import ConsecutiveVisitRunner

        runner = ConsecutiveVisitRunner(universe, seed=5, strict=True)
        h2_run, h3_run = runner.run_both(list(universe.pages[:3]))
        assert len(h2_run.visits) == len(h3_run.visits) == 3


class TestStrictRegistry:
    """The acceptance gate: every registry experiment under --strict."""

    def test_all_experiments_pass_under_strict(self):
        from repro.core import H3CdnStudy, StudyConfig
        from repro.experiments import EXPERIMENTS, run_experiment
        from repro.scenario import Scenario

        scenario = Scenario(name="paper-default").with_strict()
        study = H3CdnStudy(
            StudyConfig(
                n_sites=12,
                seed=3,
                campaign_config=scenario.campaign_config(),
                max_campaign_pages=6,
                max_consecutive_pages=6,
                max_loss_sweep_pages=3,
            )
        )
        for experiment_id in EXPERIMENTS:
            result = run_experiment(experiment_id, study)
            assert result.data, experiment_id


class TestStrictWiring:
    def test_scenario_with_strict(self):
        from repro.scenario import Scenario

        scenario = Scenario(name="s")
        assert not scenario.strict
        strict = scenario.with_strict()
        assert strict.strict
        assert strict.campaign_config().strict
        assert not scenario.campaign_config().strict
        assert not strict.with_strict(False).strict

    def test_cli_strict_flag_threads_into_study(self):
        from repro.experiments.cli import build_parser, make_study

        args = build_parser().parse_args(["--scale", "smoke", "--strict"])
        assert make_study(args).config.campaign_config.strict
        args = build_parser().parse_args(["--scale", "smoke"])
        assert not make_study(args).config.campaign_config.strict


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class TestTimerReentrancy:
    """``Timer._fire`` clears its event *before* the callback, so a
    callback that re-arms the timer must not have its fresh deadline
    clobbered (and ``armed`` must stay truthful throughout)."""

    def test_rearm_from_callback_fires_again(self):
        loop = EventLoop()
        fired = []

        def on_fire():
            fired.append(loop.now)
            if len(fired) == 1:
                timer.start(5.0)
                assert timer.armed

        timer = Timer(loop, on_fire)
        timer.start(10.0)
        loop.run()
        assert fired == [10.0, 15.0]
        assert not timer.armed

    def test_armed_is_false_inside_callback_without_rearm(self):
        loop = EventLoop()
        states = []
        timer = Timer(loop, lambda: states.append(timer.armed))
        timer.start(1.0)
        loop.run()
        assert states == [False]

    def test_stop_from_callback_is_safe(self):
        loop = EventLoop()
        fired = []

        def on_fire():
            fired.append(loop.now)
            timer.stop()  # stopping an already-fired timer: no-op

        timer = Timer(loop, on_fire)
        timer.start(2.0)
        loop.run()
        assert fired == [2.0]
        assert not timer.armed


class TestHarNegativePhaseClamp:
    def test_from_dict_clamps_negative_phases(self):
        from repro.browser.har import HarLog

        log = HarLog(page_url="https://x/")
        payload = log.to_dict()
        payload["log"]["entries"] = [
            {
                "startedDateTime": 0.0,
                "time": 10.0,
                "request": {"method": "GET", "url": "https://x/a",
                            "headersSize": 100, "bodySize": 0},
                "response": {"status": 200, "httpVersion": "h2",
                             "headers": [], "bodySize": 1000},
                "timings": {"blocked": 1.0, "dns": -3.0, "connect": 2.0,
                            "ssl": 1.0, "send": 0.1, "wait": -0.5,
                            "receive": 4.0},
            }
        ]
        restored = HarLog.from_dict(payload)
        timings = restored.entries[0].timings
        assert timings.dns == 0.0
        assert timings.wait == 0.0
        assert timings.blocked == 1.0
        assert timings.receive == 4.0


class TestPoolStatsMerge:
    FIELDS = (
        "requests", "connections_created", "resumed_connections",
        "reused_requests", "zero_rtt_connections", "failed_requests",
        "retried_requests", "h3_fallbacks", "connect_timeouts",
        "connection_resets",
    )

    @staticmethod
    def random_stats(rng):
        return PoolStats(**{
            name: rng.randrange(0, 50) for name in TestPoolStatsMerge.FIELDS
        })

    def test_merge_covers_every_field(self):
        """The drift bug: a merge written field-by-field silently drops
        counters added later.  Summing 1s over all fields proves every
        dataclass field participates."""
        ones = PoolStats(**{name: 1 for name in self.FIELDS})
        merged = ones.merged_with(ones)
        for name in self.FIELDS:
            assert getattr(merged, name) == 2, name

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_merge_associative_and_commutative(self, seed):
        rng = random.Random(seed)
        a, b, c = (self.random_stats(rng) for _ in range(3))
        assert a.merged_with(b) == b.merged_with(a)
        assert a.merged_with(b).merged_with(c) == a.merged_with(
            b.merged_with(c)
        )

    def test_merge_identity(self):
        rng = random.Random(5)
        stats = self.random_stats(rng)
        assert stats.merged_with(PoolStats()) == stats

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_dict_round_trip(self, seed):
        rng = random.Random(seed)
        stats = self.random_stats(rng)
        assert PoolStats.from_dict(stats.to_dict()) == stats

    def test_fault_free_payload_omits_fault_fields(self):
        stats = PoolStats(requests=3, connections_created=1)
        payload = stats.to_dict()
        assert "failedRequests" not in payload
        assert PoolStats.from_dict(payload) == stats


class TestCdfSeriesEdgeCases:
    def make(self, values):
        from repro.analysis.stats import EmpiricalDistribution

        return EmpiricalDistribution(values)

    def test_single_point_no_longer_divides_by_zero(self):
        dist = self.make([1.0, 2.0, 3.0])
        assert dist.cdf_series(points=1) == [(3.0, 1.0)]

    def test_points_below_one_rejected(self):
        dist = self.make([1.0, 2.0])
        with pytest.raises(ValueError, match="points must be >= 1"):
            dist.cdf_series(points=0)

    def test_degenerate_distribution_unchanged(self):
        dist = self.make([5.0, 5.0, 5.0])
        assert dist.cdf_series(points=100) == [(5.0, 1.0)]

    def test_two_points_span_range(self):
        dist = self.make([0.0, 10.0])
        series = dist.cdf_series(points=2)
        assert series[0][0] == 0.0
        assert series[-1][0] == 10.0

    def test_ccdf_single_point(self):
        dist = self.make([1.0, 4.0])
        series = dist.ccdf_series(points=1)
        assert len(series) == 1


class TestDnsLatencyAttribution:
    def test_coalesced_waiter_billed_its_own_elapsed(self):
        """A caller that joins an in-flight lookup later must be
        reported *its* elapsed time, not the first caller's."""
        from repro.dns import DnsConfig, DnsResolver

        loop = EventLoop()
        resolver = DnsResolver(
            loop, DnsConfig(resolver_rtt_ms=12.0, recursive_hit_rate=1.0),
            rng=random.Random(1),
        )
        latencies = {}
        resolver.resolve("cdn.example", lambda ms: latencies.__setitem__("a", ms))
        loop.call_later(
            5.0,
            lambda: resolver.resolve(
                "cdn.example", lambda ms: latencies.__setitem__("b", ms)
            ),
        )
        loop.run()
        assert resolver.lookups_sent == 1  # still coalesced
        assert latencies["a"] == pytest.approx(12.0)
        assert latencies["b"] == pytest.approx(7.0)

    def test_retried_lookup_phases_still_sum(self, universe):
        """With dns-flaky faults, a retried resolution must report the
        whole span (failed attempts + backoff), or the entry's phases
        no longer sum to its total time."""
        config = CampaignConfig(seed=3, fault_profile=FAULT_PROFILES["dns-flaky"])
        result = Campaign(universe, config).run(universe.pages[:4])
        retried = 0
        for paired in result.paired_visits:
            for visit in (paired.h2, paired.h3):
                for entry in visit.har.entries:
                    assert abs(entry.timings.total - entry.time_ms) < 1e-6, (
                        entry.url
                    )
                    if entry.timings.dns > 0.0:
                        retried += 1
        assert retried  # the fault window actually exercised DNS paths


class TestLossSweepConfigDerivation:
    def test_derived_configs_preserve_every_knob(self, universe, monkeypatch):
        """The old field-by-field copy silently dropped fault_profile,
        collect_counters, trace and strict from the per-rate configs."""
        from repro.core import congestion as congestion_mod

        captured = {}

        class _Captured(Exception):
            pass

        def fake_execute(plan):
            captured.update(plan.configs)
            raise _Captured  # config derivation is all this test needs

        monkeypatch.setattr(congestion_mod, "execute", fake_execute)
        base = CampaignConfig(
            collect_counters=True, trace=True, strict=True,
            fault_profile=FAULT_PROFILES["no-0rtt"],
        )
        with pytest.raises(_Captured):
            congestion_mod.loss_sweep(
                universe, loss_rates=(0.0, 0.01), pages=universe.pages[:2],
                seed=9, repetitions=2, campaign_config=base,
            )
        assert len(captured) == 4
        for (loss_rate, repetition), config in captured.items():
            assert config.loss_rate == loss_rate
            assert config.seed == 9 + repetition
            assert config.collect_counters
            assert config.trace
            assert config.strict
            assert config.fault_profile is base.fault_profile


class TestDeterminismUnderLoss:
    """Loss-model state must not leak across retries or workers: the
    same seed gives identical results for any worker count, with netem
    loss and a fault profile active at once."""

    def test_workers_do_not_change_lossy_faulted_results(self, universe):
        pages = universe.pages[:3]
        config = CampaignConfig(
            seed=3, loss_rate=0.01,
            fault_profile=FAULT_PROFILES["flaky-link"],
        )
        serial = run_campaigns(universe, {"c": config}, pages=pages,
                               workers=1)["c"]
        parallel = run_campaigns(universe, {"c": config}, pages=pages,
                                 workers=4)["c"]
        assert fingerprint(serial) == fingerprint(parallel)

    def test_lossy_run_reproduces_exactly(self, universe):
        pages = universe.pages[:3]
        config = CampaignConfig(seed=5, loss_rate=0.01)
        first = Campaign(universe, config).run(pages)
        second = Campaign(universe, config).run(pages)
        assert fingerprint(first) == fingerprint(second)


# ---------------------------------------------------------------------------
# The differential validator
# ---------------------------------------------------------------------------


class TestHarVsTrace:
    @pytest.fixture(scope="class")
    def documents(self, universe):
        config = CampaignConfig(trace=True, collect_counters=True, seed=7)
        result = Campaign(universe, config).run(universe.pages[:3])
        documents = []
        for paired in result.paired_visits:
            documents.append(paired.h2.to_dict())
            documents.append(paired.h3.to_dict())
        return documents

    def test_clean_campaign_cross_checks(self, documents):
        from repro.check.har_vs_trace import validate_documents

        checked, discrepancies = validate_documents(documents)
        assert checked == 6
        assert discrepancies == []

    def test_tampered_wait_detected(self, documents):
        from repro.check.har_vs_trace import compare_visit

        tampered = json.loads(json.dumps(documents[0]))
        tampered["har"]["log"]["entries"][0]["timings"]["wait"] += 5.0
        assert compare_visit(tampered)

    def test_dropped_stream_detected(self, documents):
        from repro.check.har_vs_trace import compare_visit

        tampered = json.loads(json.dumps(documents[0]))
        tampered["trace"] = [
            event for event in tampered["trace"]
            if event["name"] != "http:stream_closed"
        ]
        assert compare_visit(tampered)

    def test_missing_trace_reported(self, documents):
        from repro.check.har_vs_trace import compare_visit

        stripped = dict(documents[0])
        stripped.pop("trace")
        assert compare_visit(stripped)

    def test_cli_self_run_is_clean(self, capsys):
        from repro.check.har_vs_trace import main

        assert main(["--sites", "6", "--pages", "2", "--seed", "7"]) == 0
        assert "cross-checked, clean" in capsys.readouterr().out
