"""Tests for the generic analysis toolkit: stats + k-means."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    EmpiricalDistribution,
    kmeans,
    linear_fit,
    mean,
    median,
    quantile,
    quartile_groups,
)
from repro.analysis.kmeans import silhouette_hint


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_quantile_interpolates(self):
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_quantile_bounds(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_quantile_within_range(self, values, q):
        result = quantile(values, q)
        assert min(values) <= result <= max(values)


class TestEmpiricalDistribution:
    def test_cdf_and_ccdf_are_complements(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        for x in (0.5, 2.0, 3.5, 9.0):
            assert dist.cdf(x) + dist.ccdf(x) == pytest.approx(1.0)

    def test_cdf_values(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.0) == 0.5
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(4.0) == 1.0

    def test_median_and_mean(self):
        dist = EmpiricalDistribution([1.0, 2.0, 9.0])
        assert dist.median == 2.0
        assert dist.mean == 4.0

    def test_series_is_monotone(self):
        dist = EmpiricalDistribution([random.Random(1).random() for _ in range(100)])
        series = dist.cdf_series(points=50)
        ys = [y for __, y in series]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_ccdf_series_complements(self):
        dist = EmpiricalDistribution([1.0, 5.0, 9.0])
        for (x1, c), (x2, cc) in zip(dist.cdf_series(10), dist.ccdf_series(10)):
            assert x1 == x2
            assert c + cc == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])

    def test_degenerate_distribution(self):
        dist = EmpiricalDistribution([2.0, 2.0])
        assert dist.cdf_series() == [(2.0, 1.0)]

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_property(self, values):
        dist = EmpiricalDistribution(values)
        lo, hi = min(values) - 1, max(values) + 1
        probes = [lo + (hi - lo) * i / 10 for i in range(11)]
        cdfs = [dist.cdf(p) for p in probes]
        assert cdfs == sorted(cdfs)


class TestQuartileGroups:
    def test_equal_sizes(self):
        groups = quartile_groups(list(range(20)), key=lambda x: x)
        assert [len(g) for g in groups.values()] == [5, 5, 5, 5]

    def test_ordering_between_groups(self):
        groups = quartile_groups(list(range(100)), key=lambda x: -x)
        assert max(groups["Low"]) > min(groups["High"])  # sorted by -x
        assert all(a >= b for a in groups["Low"] for b in groups["High"])

    def test_uneven_sizes_distributed(self):
        groups = quartile_groups(list(range(10)), key=lambda x: x)
        assert sorted(len(g) for g in groups.values()) == [2, 2, 3, 3]

    def test_custom_labels(self):
        groups = quartile_groups([1, 2], key=lambda x: x, labels=("a", "b"))
        assert groups == {"a": [1], "b": [2]}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quartile_groups([], key=lambda x: x)


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0.0, 1.0], [0.0, 2.0])
        assert fit.predict(3.0) == pytest.approx(6.0)

    def test_noisy_fit_recovers_slope(self):
        rng = random.Random(5)
        xs = [float(i) for i in range(200)]
        ys = [2.0 * x + 10.0 + rng.gauss(0, 5.0) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(2.0, abs=0.05)
        assert fit.r_squared > 0.95

    def test_constant_y_r_squared_one(self):
        fit = linear_fit([1.0, 2.0, 3.0], [4.0, 4.0, 4.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            linear_fit([1.0, 1.0], [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0, 2.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])


class TestKMeans:
    def test_separates_two_obvious_clusters(self):
        vectors = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1),
                   (5.0, 5.0), (5.1, 5.0), (5.0, 5.1)]
        result = kmeans(vectors, k=2, seed=1)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_deterministic_under_seed(self):
        rng = random.Random(3)
        vectors = [(rng.random(), rng.random()) for _ in range(50)]
        a = kmeans(vectors, k=3, seed=9)
        b = kmeans(vectors, k=3, seed=9)
        assert a.labels == b.labels
        assert a.inertia == b.inertia

    def test_inertia_decreases_with_k(self):
        rng = random.Random(4)
        vectors = [(rng.random(), rng.random()) for _ in range(60)]
        inertias = [kmeans(vectors, k=k, seed=2).inertia for k in (1, 2, 4, 8)]
        assert inertias == sorted(inertias, reverse=True)

    def test_k_equals_n_gives_zero_inertia(self):
        vectors = [(0.0,), (1.0,), (2.0,)]
        result = kmeans(vectors, k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_cluster_indices_partition(self):
        rng = random.Random(6)
        vectors = [(rng.random(),) for _ in range(30)]
        result = kmeans(vectors, k=2, seed=0)
        idx0 = set(result.cluster_indices(0))
        idx1 = set(result.cluster_indices(1))
        assert idx0 | idx1 == set(range(30))
        assert not idx0 & idx1

    def test_binary_vectors_cluster_by_overlap(self):
        """Table III-style: pages sharing domains end up together."""
        group_a = [(1, 1, 1, 0, 0, 0)] * 5
        group_b = [(0, 0, 0, 1, 1, 1)] * 5
        result = kmeans(group_a + group_b, k=2, seed=0)
        assert len(set(result.labels[:5])) == 1
        assert len(set(result.labels[5:])) == 1
        assert result.labels[0] != result.labels[5]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            kmeans([(1.0,)], k=2)
        with pytest.raises(ValueError):
            kmeans([(1.0,)], k=0)

    def test_inconsistent_dimensions_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            kmeans([(1.0,), (1.0, 2.0)], k=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans([], k=1)

    def test_silhouette_positive_for_separated_clusters(self):
        vectors = [(0.0, 0.0)] * 5 + [(10.0, 10.0)] * 5
        result = kmeans(vectors, k=2, seed=0)
        assert silhouette_hint(vectors, result) > 0.8

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_labels_always_valid(self, seed):
        rng = random.Random(seed)
        vectors = [(rng.random(), rng.random()) for _ in range(20)]
        result = kmeans(vectors, k=3, seed=seed)
        assert len(result.labels) == 20
        assert set(result.labels) <= {0, 1, 2}
        assert math.isfinite(result.inertia)
