"""Tests for the web substrate: resources, pages, and the generator.

The `TestCalibration` class is the contract between the synthetic
universe and the paper's reported marginals — if these fail, every
downstream experiment is built on sand.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web import (
    GeneratorConfig,
    HostSpec,
    Resource,
    ResourceType,
    TopSitesGenerator,
    Webpage,
)


def make_resource(host="cdn.example.com", provider=None, size=1000, rtype=ResourceType.IMAGE):
    return Resource(
        url=f"https://{host}/x.{rtype.value}",
        host=host,
        rtype=rtype,
        size_bytes=size,
        provider_name=provider,
    )


def make_page(resources):
    html = Resource(
        url="https://www.site.example/",
        host="www.site.example",
        rtype=ResourceType.HTML,
        size_bytes=30_000,
    )
    return Webpage(
        url="https://www.site.example/",
        origin_host="www.site.example",
        html=html,
        resources=tuple(resources),
    )


class TestResource:
    def test_cdn_flag_follows_provider(self):
        assert make_resource(provider="google").is_cdn
        assert not make_resource(provider=None).is_cdn

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_resource(size=0)

    def test_invalid_wave_rejected(self):
        with pytest.raises(ValueError):
            Resource(
                url="https://x/y", host="x", rtype=ResourceType.JS,
                size_bytes=10, wave=2,
            )

    def test_request_bytes_scale_with_url(self):
        short = make_resource()
        assert short.request_bytes > 400


class TestWebpage:
    def test_cdn_fraction(self):
        page = make_page(
            [make_resource(provider="google")] * 3 + [make_resource()] * 1
        )
        # 3 CDN / 5 total requests (incl. HTML).
        assert page.cdn_fraction == pytest.approx(0.6)

    def test_providers_and_counts(self):
        page = make_page([
            make_resource(provider="google"),
            make_resource(provider="google"),
            make_resource(provider="cloudflare"),
            make_resource(),
        ])
        assert page.providers == {"google", "cloudflare"}
        assert page.resources_by_provider() == {"google": 2, "cloudflare": 1}

    def test_html_must_be_html(self):
        with pytest.raises(ValueError, match="must have type HTML"):
            Webpage(
                url="https://x/",
                origin_host="x",
                html=make_resource(rtype=ResourceType.JS),
            )

    def test_hosts_include_origin(self):
        page = make_page([make_resource(host="cdn.a.example")])
        assert "www.site.example" in page.hosts()
        assert "cdn.a.example" in page.hosts()


class TestHostSpec:
    def test_edge_requires_provider(self):
        with pytest.raises(ValueError, match="needs a provider"):
            HostSpec("h", "edge", None, True, True, 20.0, 8.0)

    def test_origin_cannot_have_provider(self):
        with pytest.raises(ValueError, match="have no provider"):
            HostSpec("h", "origin", "google", False, True, 90.0, 25.0)

    def test_h1_only_detection(self):
        spec = HostSpec("h", "origin", None, False, False, 90.0, 25.0)
        assert spec.h1_only

    def test_instantiate_edge(self):
        spec = HostSpec("fonts.gstatic.com", "edge", "google", True, True, 20.0, 8.0)
        server = spec.instantiate()
        assert server.kind == "edge"
        assert server.provider.name == "google"
        assert server.supports_h3

    def test_instantiate_origin(self):
        spec = HostSpec("www.x.example", "origin", None, False, True, 90.0, 25.0)
        server = spec.instantiate()
        assert server.kind == "origin"
        assert not server.supports_h3


class TestGeneratorDeterminism:
    def test_same_seed_same_universe(self):
        a = TopSitesGenerator().generate(seed=5)
        b = TopSitesGenerator().generate(seed=5)
        assert [w.domain for w in a.websites] == [w.domain for w in b.websites]
        assert a.summary() == b.summary()
        assert set(a.hosts) == set(b.hosts)

    def test_different_seed_different_universe(self):
        a = TopSitesGenerator().generate(seed=5)
        b = TopSitesGenerator().generate(seed=6)
        assert a.summary() != b.summary()

    def test_named_sites_present(self):
        uni = TopSitesGenerator().generate(seed=5)
        domains = [w.domain for w in uni.websites[:4]]
        assert domains == ["youtube.com", "wordpress.com", "spotify.com", "zoom.us"]

    def test_youtube_is_all_google_and_h3(self):
        uni = TopSitesGenerator().generate(seed=5)
        youtube = uni.websites[0].landing_page
        assert youtube.providers == {"google"}
        for resource in youtube.cdn_resources:
            assert uni.hosts[resource.host].supports_h3

    def test_spotify_and_zoom_share_three_giants(self):
        """The paper's example: both use Amazon, Cloudflare and Google."""
        uni = TopSitesGenerator().generate(seed=5)
        spotify = uni.websites[2].landing_page
        zoom = uni.websites[3].landing_page
        shared = spotify.providers & zoom.providers
        assert shared == {"amazon", "cloudflare", "google"}


class TestCalibration:
    """Cohort marginals vs the paper's reported numbers (with slack)."""

    @pytest.fixture(scope="class")
    def universe(self):
        return TopSitesGenerator().generate(seed=7)

    def test_site_count(self, universe):
        assert len(universe.websites) == 325

    def test_total_requests_near_paper(self, universe):
        # Paper: 36 057 requests over 325 pages.
        assert 28_000 <= universe.summary()["total_requests"] <= 46_000

    def test_cdn_share_of_requests(self, universe):
        # Paper Table II: 67.0 %.
        assert 0.60 <= universe.summary()["cdn_request_fraction"] <= 0.73

    def test_h3_share_of_all_requests(self, universe):
        # Paper Table II: 32.6 %.
        assert 0.28 <= universe.summary()["h3_fraction_of_all"] <= 0.42

    def test_h1_only_share(self, universe):
        # Paper Table II "Others": 6.2 %.
        assert 0.03 <= universe.summary()["h1_only_fraction_of_all"] <= 0.10

    def test_pages_with_multiple_providers(self, universe):
        # Paper Fig 4b: 94.8 % of pages use >= 2 providers.
        assert universe.summary()["pages_with_2plus_providers"] >= 0.90

    def test_majority_cdn_pages(self, universe):
        # Paper Fig 3: 75 % of pages have > 50 % CDN resources.
        assert 0.65 <= universe.summary()["pages_majority_cdn"] <= 0.88

    def test_h3_cdn_requests_dominated_by_google_and_cloudflare(self, universe):
        # Paper Fig 2: Google ~50 %, Cloudflare ~45 % of H3 CDN requests.
        from collections import Counter

        counts = Counter()
        for page in universe.pages:
            for resource in page.cdn_resources:
                if universe.hosts[resource.host].supports_h3:
                    counts[resource.provider_name] += 1
        total = sum(counts.values())
        assert counts["google"] / total > 0.35
        assert counts["cloudflare"] / total > 0.28
        assert (counts["google"] + counts["cloudflare"]) / total > 0.75

    def test_resource_sizes_mostly_small(self, universe):
        # Paper Section VI-E: 75 % of CDN resources below 20 KB.
        sizes = sorted(
            r.size_bytes for p in universe.pages for r in p.cdn_resources
        )
        p75 = sizes[int(0.75 * len(sizes))]
        assert p75 < 30_000

    def test_giant_provider_page_presence(self, universe):
        # Paper Fig 4a: top providers appear on > 50 % of pages.
        from collections import Counter

        appearance = Counter()
        for page in universe.pages:
            for provider in page.providers:
                appearance[provider] += 1
        top4 = [name for name, __ in appearance.most_common(4)]
        for name in top4:
            assert appearance[name] / len(universe.pages) > 0.45, name

    def test_cloudflare_google_pages_have_many_resources(self, universe):
        # Paper Fig 5: ~50 % of pages using Cloudflare/Google have > 10
        # resources from that provider.
        for provider in ("cloudflare", "google"):
            pages_using = [p for p in universe.pages if provider in p.providers]
            over10 = sum(
                1 for p in pages_using if p.resources_by_provider()[provider] > 10
            )
            assert over10 / len(pages_using) > 0.40, provider

    def test_all_resource_hosts_have_specs(self, universe):
        for page in universe.pages:
            for resource in page.all_resources:
                assert resource.host in universe.hosts

    def test_cdn_resources_on_edge_hosts(self, universe):
        for page in universe.pages:
            for resource in page.resources:
                spec = universe.hosts[resource.host]
                if resource.is_cdn:
                    assert spec.kind == "edge"
                    assert spec.provider_name == resource.provider_name
                else:
                    assert spec.kind == "origin"


class TestGeneratorConfigurability:
    def test_small_universe(self):
        config = GeneratorConfig(n_sites=10)
        uni = TopSitesGenerator(config).generate(seed=1)
        assert len(uni.websites) == 10

    def test_resource_count_respects_bounds(self):
        config = GeneratorConfig(n_sites=30, min_resources=20, max_resources=40)
        uni = TopSitesGenerator(config).generate(seed=1)
        for page in uni.pages:
            assert 20 <= page.total_requests <= 40

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_produces_valid_universe(self, seed):
        config = GeneratorConfig(n_sites=12)
        uni = TopSitesGenerator(config).generate(seed=seed)
        assert len(uni.websites) == 12
        for page in uni.pages:
            assert page.total_requests >= 1
            for resource in page.all_resources:
                assert resource.host in uni.hosts
