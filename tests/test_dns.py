"""Tests for the DNS substrate and its browser integration."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns import DnsConfig, DnsResolver, DnsTransport
from repro.events import EventLoop


def make_resolver(loop=None, **kwargs):
    loop = loop or EventLoop()
    kwargs.setdefault("recursive_hit_rate", 1.0)  # deterministic latency
    return loop, DnsResolver(loop, DnsConfig(**kwargs), rng=random.Random(1))


class TestResolver:
    def test_miss_pays_resolver_rtt(self):
        loop, resolver = make_resolver(resolver_rtt_ms=12.0)
        latencies = []
        resolver.resolve("cdn.example", latencies.append)
        loop.run()
        assert latencies == [pytest.approx(12.0)]

    def test_hit_is_instant_and_synchronous(self):
        loop, resolver = make_resolver()
        resolver.resolve("cdn.example", lambda ms: None)
        loop.run()
        latencies = []
        resolver.resolve("cdn.example", latencies.append)
        assert latencies == [0.0]  # no event-loop turn needed
        assert resolver.hits == 1

    def test_ttl_expiry_forces_new_lookup(self):
        loop, resolver = make_resolver(cache_ttl_ms=100.0)
        resolver.resolve("cdn.example", lambda ms: None)
        loop.run()
        loop.call_later(200.0, lambda: None)
        loop.run()  # advance past the TTL
        latencies = []
        resolver.resolve("cdn.example", latencies.append)
        loop.run()
        assert latencies[0] > 0.0
        assert resolver.lookups_sent == 2

    def test_inflight_lookups_coalesce(self):
        loop, resolver = make_resolver()
        results = []
        resolver.resolve("cdn.example", results.append)
        resolver.resolve("cdn.example", results.append)
        loop.run()
        assert len(results) == 2
        assert resolver.lookups_sent == 1

    def test_recursion_tail_latency(self):
        loop = EventLoop()
        resolver = DnsResolver(
            loop,
            DnsConfig(recursive_hit_rate=0.0, resolver_rtt_ms=10.0,
                      recursion_ms_range=(50.0, 50.0)),
            rng=random.Random(2),
        )
        latencies = []
        resolver.resolve("obscure.example", latencies.append)
        loop.run()
        assert latencies == [pytest.approx(60.0)]

    def test_clear_flushes_cache(self):
        loop, resolver = make_resolver()
        resolver.resolve("cdn.example", lambda ms: None)
        loop.run()
        resolver.clear()
        assert not resolver.cached_hosts()

    def test_hit_rate_accounting(self):
        loop, resolver = make_resolver()
        resolver.resolve("a.example", lambda ms: None)
        loop.run()
        resolver.resolve("a.example", lambda ms: None)
        resolver.resolve("b.example", lambda ms: None)
        loop.run()
        assert resolver.hit_rate == pytest.approx(1 / 3)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DnsConfig(resolver_rtt_ms=-1.0)
        with pytest.raises(ValueError):
            DnsConfig(recursive_hit_rate=1.5)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_latency_never_negative(self, seed):
        loop = EventLoop()
        resolver = DnsResolver(
            loop, DnsConfig(recursive_hit_rate=0.5), rng=random.Random(seed)
        )
        latencies = []
        for i in range(5):
            resolver.resolve(f"h{i}.example", latencies.append)
        loop.run()
        assert all(latency >= 0.0 for latency in latencies)


class TestDnsTransports:
    def test_udp_is_single_round_trip(self):
        loop, resolver = make_resolver(transport=DnsTransport.UDP,
                                       resolver_rtt_ms=10.0)
        latencies = []
        resolver.resolve("a.example", latencies.append)
        loop.run()
        assert latencies == [pytest.approx(10.0)]

    def test_doq_cold_then_warm(self):
        """DoQ pays the QUIC handshake once, then matches UDP+1RTT —
        the Kosek et al. qualitative result."""
        loop, resolver = make_resolver(transport=DnsTransport.QUIC,
                                       resolver_rtt_ms=10.0)
        latencies = []
        resolver.resolve("a.example", latencies.append)
        loop.run()
        resolver.resolve("b.example", latencies.append)
        loop.run()
        assert latencies[0] == pytest.approx(20.0)  # cold: 2 RTT
        assert latencies[1] == pytest.approx(10.0)  # warm: 1 RTT

    def test_tcp_tls_coldest(self):
        loop, resolver = make_resolver(transport=DnsTransport.TCP_TLS,
                                       resolver_rtt_ms=10.0)
        latencies = []
        resolver.resolve("a.example", latencies.append)
        loop.run()
        assert latencies[0] == pytest.approx(30.0)

    def test_clear_resets_upstream_warmth(self):
        loop, resolver = make_resolver(transport=DnsTransport.QUIC,
                                       resolver_rtt_ms=10.0)
        latencies = []
        resolver.resolve("a.example", latencies.append)
        loop.run()
        resolver.clear()
        resolver.resolve("b.example", latencies.append)
        loop.run()
        assert latencies[1] == pytest.approx(20.0)  # cold again


class TestBrowserIntegration:
    @pytest.fixture(scope="class")
    def visit(self):
        from repro.browser import Browser, BrowserConfig
        from repro.measurement import ProbeNetProfile, ServerFarm
        from repro.web import GeneratorConfig, TopSitesGenerator

        universe = TopSitesGenerator(GeneratorConfig(n_sites=6)).generate(seed=17)
        loop = EventLoop()
        farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(),
                          rng=random.Random(1))
        farm.warm_caches(universe.pages)
        browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(2))
        return browser.visit(universe.pages[4])

    def test_first_contact_pays_dns(self, visit):
        by_host_first = {}
        for entry in sorted(visit.entries, key=lambda e: e.started_at_ms):
            by_host_first.setdefault(entry.host, entry)
        assert all(e.timings.dns > 0.0 for e in by_host_first.values())

    def test_later_requests_hit_the_cache(self, visit):
        hosts_seen = set()
        for entry in sorted(visit.entries, key=lambda e: e.started_at_ms):
            if entry.host in hosts_seen and entry.timings.dns > 0.0:
                # Allowed only if it raced the first lookup (coalesced).
                assert entry.timings.dns <= max(
                    e.timings.dns for e in visit.entries if e.host == entry.host
                )
            hosts_seen.add(entry.host)
        cached = [e for e in visit.entries if e.timings.dns == 0.0]
        assert cached  # plenty of same-host requests

    def test_dns_disabled_mode(self):
        from repro.browser import Browser, BrowserConfig
        from repro.measurement import ProbeNetProfile, ServerFarm
        from repro.web import GeneratorConfig, TopSitesGenerator

        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=18)
        loop = EventLoop()
        farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(),
                          rng=random.Random(1))
        browser = Browser(loop, farm, BrowserConfig(dns_config=None),
                          rng=random.Random(2))
        visit = browser.visit(universe.pages[0])
        assert all(e.timings.dns == 0.0 for e in visit.entries)

    def test_time_ms_includes_dns(self, visit):
        for entry in visit.entries:
            assert entry.time_ms >= entry.timings.total - 1e-6
