"""Coverage of small public API pieces not exercised elsewhere."""

import pytest

from repro.experiments.base import fmt, pct
from repro.http import EntryTiming, HttpProtocol
from repro.netsim import NetemProfile
from repro.netsim.link import LinkStats
from repro.tls import plan_handshake


class TestHttpProtocol:
    def test_wire_names(self):
        assert HttpProtocol.H1.value == "http/1.1"
        assert HttpProtocol.H2.value == "h2"
        assert HttpProtocol.H3.value == "h3"

    def test_transport_mapping(self):
        assert HttpProtocol.H3.transport == "quic"
        assert HttpProtocol.H2.transport == "tcp"
        assert HttpProtocol.H1.transport == "tcp"

    def test_multiplexing(self):
        assert HttpProtocol.H2.multiplexes
        assert HttpProtocol.H3.multiplexes
        assert not HttpProtocol.H1.multiplexes


class TestEntryTiming:
    def test_total_excludes_ssl_double_count(self):
        timing = EntryTiming(blocked=5.0, dns=2.0, connect=30.0, ssl=15.0,
                             send=1.0, wait=40.0, receive=20.0)
        # ssl is contained within connect, so total must not add it twice.
        assert timing.total == pytest.approx(5.0 + 2.0 + 30.0 + 1.0 + 40.0 + 20.0)

    def test_as_dict_round_trip(self):
        timing = EntryTiming(connect=10.0, wait=5.0)
        data = timing.as_dict()
        assert data["connect"] == 10.0
        assert set(data) == {"blocked", "dns", "connect", "ssl", "send",
                             "wait", "receive"}


class TestNetemProfileExtras:
    def test_with_delay(self):
        base = NetemProfile(delay_ms=10.0)
        slower = base.with_delay(25.0)
        assert slower.delay_ms == 25.0
        assert base.delay_ms == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            NetemProfile(delay_ms=-1.0)


class TestLinkStats:
    def test_loss_rate_zero_when_idle(self):
        assert LinkStats().observed_loss_rate == 0.0

    def test_loss_rate_computation(self):
        stats = LinkStats(sent_packets=10, dropped_packets=3)
        assert stats.observed_loss_rate == pytest.approx(0.3)


class TestHandshakePlanExtras:
    def test_plan_fields(self):
        plan = plan_handshake("h3", has_ticket=True)
        assert plan.protocol == "h3"
        assert plan.resumed
        assert plan.tls_version is None


class TestFormatting:
    def test_fmt_digits(self):
        assert fmt(3.14159, 2) == "3.14"
        assert fmt(3.0) == "3.0"

    def test_pct(self):
        assert pct(0.5) == "50.0%"
        assert pct(0.1234, 2) == "12.34%"


class TestAdvisorWeights:
    def test_custom_weights_change_outcome(self):
        from repro.core.advisor import AdvisorWeights, advise
        from repro.web import GeneratorConfig, TopSitesGenerator

        universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=3)
        page = universe.pages[4]
        h2_biased = AdvisorWeights(reuse_penalty_weight=100.0, base_h3_bonus=0.0,
                                   h3_resource_weight=0.0)
        advice = advise(page, universe, weights=h2_biased)
        assert advice.protocol == "h2"


class TestConnectionStatsDefaults:
    def test_fresh_stats_zeroed(self):
        from repro.transport import ConnectionStats

        stats = ConnectionStats()
        assert stats.data_packets_sent == 0
        assert stats.retransmissions == 0
        assert stats.rto_events == 0
