"""Integration tests of the paper-level analyses (repro.core.*).

These run a small but complete study and assert the *shapes* the paper
reports — the same checks EXPERIMENTS.md records at full scale.
"""

import pytest

from repro.core import (
    GROUP_LABELS,
    H3CdnStudy,
    StudyConfig,
    adoption_table,
    case_study,
    domain_vectors,
    pages_by_provider_count,
    provider_page_probability,
    provider_resource_ccdf,
    reduction,
)
from repro.core.adoption import ROW_ALL, ROW_H2, ROW_H3, ROW_OTHERS, h3_share_by_provider
from repro.core.advisor import advise
from repro.core.characteristics import cdn_fraction_ccdf_from_entries, multi_provider_share
from repro.core.congestion import slopes_are_ordered
from repro.core.metrics import paired_entry_reductions
from repro.measurement.farm import ProbeNetProfile


@pytest.fixture(scope="module")
def study():
    """One shared small-scale study (campaign of 45 pages)."""
    return H3CdnStudy(StudyConfig(n_sites=45, seed=11, max_loss_sweep_pages=8))


class TestMetrics:
    def test_reduction_sign_convention(self):
        assert reduction(100.0, 60.0) == 40.0  # positive: H3 wins

    def test_paired_entry_reductions_cover_all_urls(self, study):
        paired = study.campaign_result.paired_visits[0]
        phases = paired_entry_reductions(paired)
        assert len(phases) == len(paired.h3.entries)
        urls = {p.url for p in phases}
        assert urls == {e.url for e in paired.h2.entries}


class TestTable2:
    def test_rows_sum_to_total(self, study):
        table = study.table2()
        total = sum(
            table.cell(row, "all").requests
            for row in (ROW_H2, ROW_H3, ROW_OTHERS)
        )
        assert total == table.total_requests
        assert table.cell(ROW_ALL, "all").requests == total

    def test_cdn_dominates_requests(self, study):
        # Paper: 67.0 % of requests are CDN.
        assert 0.55 <= study.table2().cdn_share <= 0.75

    def test_h3_share_near_paper(self, study):
        # Paper: 32.6 %.
        assert 0.24 <= study.table2().h3_share <= 0.42

    def test_most_h3_requests_are_cdn(self, study):
        # Paper: 78.8 % of H3 requests come from CDNs (full scale
        # measures ~0.79; allow slack at 45 sites).
        assert study.table2().h3_cdn_share_of_h3 > 0.58

    def test_others_bucket_small_and_non_cdn(self, study):
        table = study.table2()
        assert table.cell(ROW_OTHERS, "all").percent < 12.0
        assert table.cell(ROW_OTHERS, "cdn").requests == 0

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            adoption_table([])


class TestFig2:
    def test_google_and_cloudflare_dominate_h3(self, study):
        shares = h3_share_by_provider(study.fig2())
        assert shares.get("google", 0) > 0.3
        assert shares.get("google", 0) + shares.get("cloudflare", 0) > 0.6

    def test_google_nearly_all_h3(self, study):
        rows = {r.provider: r for r in study.fig2()}
        assert rows["google"].h3_fraction > 0.8

    def test_amazon_mostly_h2(self, study):
        rows = {r.provider: r for r in study.fig2()}
        if "amazon" in rows:
            assert rows["amazon"].h3_fraction < 0.4


class TestFig3to5:
    def test_fig3_majority_cdn(self, study):
        # Paper: 75 % of pages exceed 50 % CDN resources.
        assert 0.6 <= study.fig3().ccdf(0.5) <= 0.9

    def test_fig3_from_entries_agrees_with_ground_truth(self, study):
        per_page_entries = (
            visit.entries for visit in study.campaign_result.visits("h3-enabled")
        )
        from_har = cdn_fraction_ccdf_from_entries(per_page_entries)
        assert from_har.ccdf(0.5) == pytest.approx(study.fig3().ccdf(0.5), abs=0.05)

    def test_fig4a_top_providers_widespread(self, study):
        probabilities = list(study.fig4a().values())
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] > 0.5

    def test_fig4b_multi_provider_pages(self, study):
        counts = study.fig4b()
        total = sum(counts.values())
        multi = sum(n for k, n in counts.items() if k >= 2)
        assert multi / total >= 0.85
        assert multi_provider_share(study.universe.pages) == multi / total

    def test_fig5_big_providers_host_many_resources(self, study):
        ccdfs = study.fig5(("cloudflare", "google"))
        for name, dist in ccdfs.items():
            assert dist.ccdf(10.0) > 0.35, name

    def test_fig5_unknown_provider_rejected(self, study):
        with pytest.raises(ValueError):
            provider_resource_ccdf(study.universe.pages, "nonexistent")


class TestFig6:
    def test_groups_cover_all_pages_equally(self, study):
        groups = study.fig6a()
        assert [g.label for g in groups] == list(GROUP_LABELS)
        sizes = [g.n_pages for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_h3_adoption_increases_across_groups(self, study):
        means = [g.mean_h3_entries for g in study.fig6a()]
        assert means == sorted(means)

    def test_all_groups_see_positive_reduction(self, study):
        # Paper: "all groups exhibit a positive PLT reduction".
        for group in study.fig6a():
            assert group.mean_plt_reduction_ms > -15.0, group.label

    def test_fig6b_median_signs(self, study):
        dists = study.fig6b()
        # Paper: connection median > 0, wait median < 0, receive ~ 0.
        assert dists["connection"].median > 0.0
        assert dists["wait"].median < 0.0
        assert abs(dists["receive"].median) < 6.0


class TestFig7:
    def test_reuse_grows_with_group_level(self, study):
        reuse = study.fig7a()
        h2_means = [g.mean_reused_h2 for g in reuse]
        # Directional at this scale: High group reuses far more than Low
        # (strict monotonicity is checked at full scale by the bench).
        assert h2_means[-1] > h2_means[0]
        assert h2_means[-1] > 1.3 * h2_means[0]

    def test_h2_reuses_more_than_h3(self, study):
        # Paper: "H2 triggers more reused HTTP connections than H3".
        for group in study.fig7a():
            assert group.mean_reused_h2 >= group.mean_reused_h3, group.label
        assert sum(g.mean_difference for g in study.fig7a()) > 0

    def test_fig7c_bins_cover_pages(self, study):
        bins = study.fig7c()
        assert sum(b.n_pages for b in bins) == len(study.campaign_result.paired_visits)

    def test_fig7c_invalid_bins_rejected(self, study):
        with pytest.raises(ValueError):
            study.fig7c(n_bins=0)


class TestFig8AndTable3:
    def test_fig8b_resumption_grows_with_providers(self, study):
        resumed = study.fig8b()
        assert len(resumed) >= 3
        counts = sorted(resumed)
        # Directional at this scale (tiny extreme buckets are noisy):
        # the upper half of the buckets resumes more than the lower.
        half = len(counts) // 2
        low = sum(resumed[k] for k in counts[:half]) / half
        high = sum(resumed[k] for k in counts[-half:]) / half
        assert high > low

    def test_fig8a_reductions_mostly_positive(self, study):
        values = list(study.fig8a().values())
        assert sum(1 for v in values if v > 0) >= len(values) / 2

    def test_domain_vectors_shape(self, study):
        domains, vectors, kept = domain_vectors(study.universe.pages)
        assert vectors
        assert all(len(v) == len(domains) for v in vectors)
        assert len(kept) == len(vectors)
        assert all(set(v) <= {0, 1} for v in vectors)

    def test_case_study_high_shares_more(self, study):
        result = study.table3()
        # Paper Table III: C_H has more providers, more resumed
        # connections, and a larger PLT reduction than C_L.
        assert result.high.avg_shared_providers > result.low.avg_shared_providers
        assert result.high.avg_resumed_connections > result.low.avg_resumed_connections

    def test_case_study_too_few_pages_rejected(self, study):
        with pytest.raises(ValueError):
            case_study(study.universe, pages=study.universe.pages[:2])


class TestFig9:
    def test_series_structure(self, study):
        series = study.fig9()
        assert [s.loss_rate for s in series] == [0.0, 0.005, 0.01]
        for s in series:
            assert len(s.points) == 8
            assert s.fit.n == 8

    def test_loss_inflates_page_load_times(self, study):
        """Robust physics at any scale: 1 % loss slows pages down for
        both protocols (Mathis-capped congestion windows).  The paper's
        headline — H3's *reduction slope* growing with loss — is far
        too noisy at 8 pages, so it is asserted at scale by
        benchmarks/bench_fig9.py instead."""
        from repro.measurement import Campaign, CampaignConfig

        pages = study.universe.pages[:4]
        clean = Campaign(study.universe, CampaignConfig(seed=3)).run(pages)
        lossy = Campaign(
            study.universe, CampaignConfig(seed=3, loss_rate=0.01)
        ).run(pages)
        for mode in ("h2-only", "h3-enabled"):
            clean_mean = sum(v.plt_ms for v in clean.visits(mode)) / len(pages)
            lossy_mean = sum(v.plt_ms for v in lossy.visits(mode)) / len(pages)
            assert lossy_mean > clean_mean, mode

    def test_slopes_are_ordered_helper(self, study):
        series = study.fig9()
        ordered = slopes_are_ordered(series)
        assert isinstance(ordered, bool)


class TestAdvisor:
    def test_h3_for_lossy_cdn_heavy_page(self, study):
        page = max(study.universe.pages, key=lambda p: len(p.cdn_resources))
        advice = advise(
            page, study.universe,
            network=ProbeNetProfile(loss_rate=0.01),
            consecutive_browsing=True,
        )
        assert advice.protocol == "h3"
        assert advice.reasons

    def test_score_moves_with_conditions(self, study):
        page = study.universe.pages[10]
        clean = advise(page, study.universe, network=ProbeNetProfile())
        lossy = advise(page, study.universe, network=ProbeNetProfile(loss_rate=0.02))
        assert lossy.score > clean.score

    def test_consecutive_browsing_favours_h3(self, study):
        page = study.universe.pages[10]
        solo = advise(page, study.universe)
        browsing = advise(page, study.universe, consecutive_browsing=True)
        assert browsing.score >= solo.score
