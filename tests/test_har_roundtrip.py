"""HAR serialization round-trips and foreign-HAR ingestion."""

import json
import random

import pytest

from repro.browser import Browser, BrowserConfig
from repro.browser.har import HarLog
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def visit():
    universe = TopSitesGenerator(GeneratorConfig(n_sites=6)).generate(seed=13)
    loop = EventLoop()
    farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(), rng=random.Random(1))
    farm.warm_caches(universe.pages)
    browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(2))
    return browser.visit(universe.pages[4])


class TestRoundTrip:
    def test_entry_count_preserved(self, visit):
        restored = HarLog.from_dict(visit.har.to_dict())
        assert len(restored.entries) == len(visit.entries)

    def test_page_timing_preserved(self, visit):
        restored = HarLog.from_dict(visit.har.to_dict())
        assert restored.on_load_ms == visit.plt_ms
        assert restored.page_url == visit.page_url

    def test_entry_fields_preserved(self, visit):
        restored = HarLog.from_dict(visit.har.to_dict())
        for original, parsed in zip(visit.entries, restored.entries):
            assert parsed.url == original.url
            assert parsed.protocol == original.protocol
            assert parsed.is_cdn == original.is_cdn
            assert parsed.provider == original.provider
            assert parsed.reused == original.reused
            assert parsed.resumed == original.resumed
            assert parsed.timings.connect == original.timings.connect
            assert parsed.timings.wait == original.timings.wait
            assert parsed.response_bytes == original.response_bytes

    def test_survives_json_round_trip(self, visit):
        blob = json.dumps(visit.har.to_dict())
        restored = HarLog.from_dict(json.loads(blob))
        assert restored.reused_connection_count() == visit.har.reused_connection_count()
        assert restored.resumed_connection_count() == visit.har.resumed_connection_count()

    def test_analyses_agree_on_restored_log(self, visit):
        restored = HarLog.from_dict(visit.har.to_dict())
        assert len(restored.cdn_entries()) == len(visit.har.cdn_entries())
        assert restored.total_bytes() == visit.har.total_bytes()


class TestForeignHar:
    """A minimal Chrome-style HAR without our extension fields."""

    FOREIGN = {
        "log": {
            "version": "1.2",
            "pages": [{"id": "https://example.com/", "startedDateTime": 0.0,
                       "pageTimings": {"onLoad": 1234.0}}],
            "entries": [
                {
                    "startedDateTime": 0.0,
                    "time": 120.0,
                    "request": {"url": "https://fonts.gstatic.com/a.woff2",
                                "headersSize": 420},
                    "response": {
                        "status": 200,
                        "httpVersion": "h3",
                        "bodySize": 9000,
                        "headers": [{"name": "server", "value": "gws"}],
                    },
                    "timings": {"connect": 25.0, "ssl": 25.0, "wait": 40.0,
                                "receive": 55.0},
                },
                {
                    "startedDateTime": 10.0,
                    "time": 80.0,
                    "request": {"url": "https://www.example.com/app.js",
                                "headersSize": 400},
                    "response": {"status": 200, "httpVersion": "h2",
                                 "bodySize": 5000,
                                 "headers": [{"name": "server", "value": "nginx"}]},
                    "timings": {"connect": 0.0, "wait": 30.0, "receive": 50.0},
                },
            ],
        }
    }

    def test_classifies_foreign_entries(self):
        har = HarLog.from_dict(self.FOREIGN)
        gstatic, appjs = har.entries
        assert gstatic.is_cdn and gstatic.provider == "google"
        assert not appjs.is_cdn

    def test_reuse_inferred_from_connect_time(self):
        har = HarLog.from_dict(self.FOREIGN)
        assert not har.entries[0].used_reused_connection
        assert har.entries[1].used_reused_connection

    def test_adoption_table_consumes_foreign_har(self):
        from repro.core.adoption import adoption_table

        har = HarLog.from_dict(self.FOREIGN)
        table = adoption_table(har.entries)
        assert table.total_requests == 2
        assert table.cell("HTTP/3", "cdn").requests == 1
