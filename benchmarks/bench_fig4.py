"""Bench: regenerate Fig. 4 (provider appearance + providers per page).

Paper targets: top-4 providers each appear on > 50 % of pages (we allow
the 4th a little slack at bench scale); 94.8 % of pages use >= 2
providers.
"""

from repro.experiments import run_experiment


def test_fig4(benchmark, study):
    result = benchmark(run_experiment, "fig4", study)
    print()
    print(result.render())
    probabilities = sorted(
        result.data["appearance_probability"].values(), reverse=True
    )
    assert probabilities[0] > 0.5
    assert probabilities[2] > 0.45
    assert probabilities[3] > 0.35
    assert result.data["share_2plus"] >= 0.90  # paper 0.948
