"""Bench: regenerate Fig. 8 (shared providers under consecutive visits).

Paper targets: (b) resumed connections grow with the number of used
providers — the load-bearing mechanism; (a) PLT reductions positive on
average with an upward tendency (this panel is the noisiest of the
paper's figures at simulation scale; the strict trend is asserted on
the resumption counts).
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig8(benchmark, study, consecutive):
    result = run_once(benchmark, run_experiment, "fig8", study)
    print()
    print(result.render())
    resumed = result.data["resumed_by_providers"]
    counts = sorted(resumed)
    # Fig 8(b): the top-sharing bucket resumes more than the bottom
    # (strict 1.5x separation holds at full scale; extreme buckets are
    # small at bench scale).
    assert resumed[counts[-1]] > 1.1 * resumed[counts[0]]
    # Directional monotonicity: Spearman-style check that resumption
    # rank-correlates with provider count.
    values = [resumed[k] for k in counts]
    increases = sum(
        1 for a, b in zip(values, values[1:]) if b >= a
    )
    assert increases >= (len(values) - 1) / 2
    reductions = result.data["plt_reduction_by_providers"]
    assert sum(reductions.values()) > 0  # H3 wins overall
