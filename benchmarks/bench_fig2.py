"""Bench: regenerate Fig. 2 (per-provider H3 adoption + market share).

Paper targets: Google ≈ 50 % of H3-enabled CDN requests, Cloudflare the
runner-up at ≈ 45 %, together > 85 %; Google's own traffic almost fully
H3; Amazon/Fastly/rest mostly H2.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig2(benchmark, study, campaign):
    result = run_once(benchmark, run_experiment, "fig2", study)
    print()
    print(result.render())
    shares = result.data["h3_share_by_provider"]
    own = result.data["own_h3_fraction"]
    assert shares["google"] > 0.35
    assert shares["google"] + shares.get("cloudflare", 0.0) > 0.70
    assert own["google"] > 0.85
    if "amazon" in own:
        assert own["amazon"] < 0.35
