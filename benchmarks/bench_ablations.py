"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation disables one mechanism and shows the corresponding paper
effect disappearing, demonstrating the mechanism is load-bearing:

* transport HoL semantics  → Fig. 9's H3 edge under loss
* 0-RTT session resumption → Fig. 8's consecutive-visit speedup
* H3 server CPU overhead   → Fig. 6(b)'s negative wait median
* TLS 1.3 early data       → H2 resumption latency (off by default,
  as in real browsers)
"""

import random

import pytest
from conftest import run_once

from repro.browser.browser import H3_ENABLED
from repro.core.groups import phase_reduction_distributions
from repro.events import EventLoop
from repro.measurement import Campaign, CampaignConfig, ConsecutiveVisitRunner
from repro.netsim import NetemProfile, NetworkPath, PacketKind
from repro.transport import QuicConnection, TcpConnection, TransportConfig
from repro.web import GeneratorConfig, TopSitesGenerator


@pytest.fixture(scope="module")
def small_universe():
    return TopSitesGenerator(GeneratorConfig(n_sites=25)).generate(seed=5)


def test_ablation_hol_blocking(benchmark):
    """Under identical single-packet loss, TCP delays the unrelated
    stream by about one RTT; QUIC does not.  This per-connection gap is
    the mechanism behind Fig. 9."""

    def run(cls):
        loop = EventLoop()
        path = NetworkPath(
            loop, NetemProfile(delay_ms=15.0, rate_mbps=None), rng=random.Random(0)
        )
        state = {"dropped": False}

        def drop_first_stream1_data(pkt):
            if (
                not state["dropped"]
                and pkt.kind is PacketKind.DATA
                and pkt.chunks
                and pkt.chunks[0].stream_id == 1
            ):
                state["dropped"] = True
                return True
            return False

        path.downlink.drop_filter = drop_first_stream1_data
        conn = cls(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        s1 = conn.request(400, 5000)
        s2 = conn.request(400, 5000)
        loop.run_until(lambda: s1.complete and s2.complete)
        return s2.t_complete - s2.opened_at

    def both():
        return run(TcpConnection), run(QuicConnection)

    tcp_time, quic_time = run_once(benchmark, both)
    print(f"\nunrelated-stream completion: tcp={tcp_time:.1f}ms quic={quic_time:.1f}ms")
    assert tcp_time > quic_time + 20.0  # ~1 RTT of HoL stall


def test_ablation_zero_rtt_resumption(benchmark, small_universe):
    """Disabling session tickets must collapse Fig. 8(b) to zero and
    shrink the consecutive-visit PLT advantage."""

    def walk(tickets):
        runner = ConsecutiveVisitRunner(
            small_universe, seed=5, use_session_tickets=tickets
        )
        run = runner.run(list(small_universe.pages), H3_ENABLED)
        return sum(run.resumed_connections()), sum(v.plt_ms for v in run.visits)

    def both():
        return walk(True), walk(False)

    (resumed_on, plt_on), (resumed_off, plt_off) = run_once(benchmark, both)
    print(f"\nresumed: with tickets={resumed_on}, without={resumed_off}")
    assert resumed_off == 0
    assert resumed_on > 100
    assert plt_on < plt_off  # 0-RTT makes the whole walk faster


def test_ablation_h3_compute_overhead(benchmark, small_universe):
    """Zeroing the H3 server CPU overhead flips Fig. 6(b)'s wait median
    from negative to ~non-negative."""

    def median_wait(h3_overhead):
        config = GeneratorConfig(
            n_sites=25,
            h3_overhead_range_ms=(h3_overhead, h3_overhead + 1e-6),
        )
        universe = TopSitesGenerator(config).generate(seed=5)
        result = Campaign(universe, CampaignConfig(seed=5)).run(universe.pages[:15])
        dists = phase_reduction_distributions(result)
        return dists["wait"].median

    def both():
        return median_wait(4.0), median_wait(0.0)

    with_overhead, without_overhead = run_once(benchmark, both)
    print(f"\nwait-median: overhead=4ms -> {with_overhead:.2f}ms, 0ms -> {without_overhead:.2f}ms")
    assert with_overhead < 0.0
    assert without_overhead > with_overhead


def test_ablation_tls13_early_data(benchmark):
    """With TCP early data enabled, resumed H2 saves the TLS round trip
    (1 RTT total); browsers ship with it off (2 RTT)."""

    def resumed_connect(early_data):
        loop = EventLoop()
        path = NetworkPath(
            loop, NetemProfile(delay_ms=15.0, rate_mbps=None), rng=random.Random(0)
        )
        conn = TcpConnection(
            loop,
            path,
            config=TransportConfig(tls13_early_data=early_data),
            resumed=True,
        )
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        return done[0].connect_ms

    def both():
        return resumed_connect(False), resumed_connect(True)

    off, on = run_once(benchmark, both)
    print(f"\nresumed H2 connect: early-data off={off:.0f}ms on={on:.0f}ms")
    assert off == pytest.approx(60.0)
    assert on == pytest.approx(30.0)
