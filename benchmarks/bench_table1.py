"""Bench: regenerate Table I (provider registry metadata)."""

from repro.experiments import run_experiment


def test_table1(benchmark, study):
    result = benchmark(run_experiment, "table1", study)
    print()
    print(result.render())
    # Paper Table I release years, verbatim.
    years = result.data["release_years"]
    assert years["cloudflare"] == 2019
    assert years["google"] == 2021
    assert years["fastly"] == 2021
    assert years["quic_cloud"] == 2021
    assert years["amazon"] == 2022
    assert years["meta"] == 2022
    assert years["akamai"] == 2023
