"""Bench: regenerate Fig. 6 (group PLT reductions + phase reductions).

Paper targets: (a) every group shows a positive mean PLT reduction,
with an interior maximum — the High group gains less than the peak
group ("reused HTTP connections diminish H3 adoption benefits");
(b) median connection reduction > 0, median wait reduction < 0, median
receive reduction ≈ 0.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig6(benchmark, study, campaign):
    result = run_once(benchmark, run_experiment, "fig6", study)
    print()
    print(result.render())
    reductions = result.data["group_reductions"]
    values = [reductions[label] for label in ("Low", "Medium-Low", "Medium-High", "High")]
    # All groups benefit (small negative tolerance for bench scale) and
    # the cohort-wide mean reduction is positive.  The interior-maximum
    # "turning point" is draw-sensitive at this scale — its appearance
    # across cohorts is recorded in EXPERIMENTS.md; the mechanism is
    # asserted by bench_fig7.
    assert all(v > -10.0 for v in values), values
    assert sum(values) / len(values) > 0.0
    medians = result.data["phase_medians"]
    assert medians["connection"] > 0.0
    assert medians["wait"] < 0.0
    assert abs(medians["receive"]) < 5.0
