"""Bench: regenerate Fig. 7 (reused connections vs PLT reduction).

Paper targets: (a) reuse grows with group level and H2 reuses more
than H3; (b) the reuse difference is positive, widest in the upper
groups; (c) the PLT reduction shrinks as the difference grows.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig7(benchmark, study, campaign):
    result = run_once(benchmark, run_experiment, "fig7", study)
    print()
    print(result.render())
    reuse = result.data["reuse_by_group"]
    labels = ("Low", "Medium-Low", "Medium-High", "High")
    h2_counts = [reuse[label][0] for label in labels]
    # Reuse grows with group level (High ≫ Low).
    assert h2_counts[-1] > h2_counts[0]
    # H2 reuses more than H3 in every group.
    for label in labels:
        assert reuse[label][0] >= reuse[label][1], label
    differences = result.data["difference_by_group"]
    assert sum(differences.values()) > 0
    # Fig 7(c): first-vs-last bin ordering (reduction shrinks).
    bins = result.data["reduction_by_difference"]
    assert len(bins) >= 2
    assert bins[0][1] > bins[-1][1]
