"""Bench: regenerate Table II (requests by HTTP version × CDN/non-CDN).

Paper targets: CDN 67.0 % of requests, H3 32.6 % of requests, 78.8 % of
H3 requests served by CDNs, "Others" (HTTP/1.x) small and non-CDN.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_table2(benchmark, study, campaign):
    result = run_once(benchmark, run_experiment, "table2", study)
    print()
    print(result.render())
    assert 0.55 <= result.data["cdn_share"] <= 0.75          # paper 0.670
    assert 0.25 <= result.data["h3_share"] <= 0.42           # paper 0.326
    assert result.data["h3_cdn_share_of_h3"] > 0.65          # paper 0.788
