"""Bench: regenerate Fig. 5 (per-provider per-page resource CCDFs).

Paper target: for pages using Cloudflare or Google, roughly half carry
more than 10 resources of that provider.
"""

from repro.experiments import run_experiment


def test_fig5(benchmark, study):
    result = benchmark(run_experiment, "fig5", study)
    print()
    print(result.render())
    over10 = result.data["ccdf_over_10"]
    assert over10["cloudflare"] > 0.40
    assert over10["google"] > 0.40
    # The small-share providers host fewer resources per page.
    assert over10["fastly"] <= over10["cloudflare"]
