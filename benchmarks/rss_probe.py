#!/usr/bin/env python3
"""Peak-RSS probe for the streaming executor — run one per subprocess.

``ru_maxrss`` is a process-lifetime high-water mark, so comparing the
memory footprint of two page counts requires one fresh interpreter per
count; ``bench_campaign.py --sections memory`` spawns this script once
per point.  Runs a serial, summary-only streaming campaign over a lazy
universe (tiny pages — the subject is executor memory, not page
complexity) and prints one JSON object on stdout.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, required=True)
    parser.add_argument(
        "--sites", type=int, default=100_000,
        help="lazy-universe size (default 100k: footprint must not "
        "depend on it)",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    from repro.measurement.campaign import CampaignConfig
    from repro.measurement.executor import CampaignPlan, execute
    from repro.web.topsites import GeneratorConfig, lazy_universe

    generator_config = GeneratorConfig(
        n_sites=max(args.sites, args.pages),
        resources_per_page_median=8.0,
        min_resources=5,
        max_resources=16,
    )
    universe = lazy_universe(generator_config, seed=args.seed)
    config = CampaignConfig(
        visits_per_page=1,
        probes_per_vantage=1,
        max_vantage_points=1,
        seed=args.seed,
    )
    start = time.time()
    result = execute(CampaignPlan(
        universe=universe,
        sim=config,
        page_count=args.pages,
        summary_only=True,
    ))
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({
        "pages": args.pages,
        "sites": generator_config.n_sites,
        "visits": result.summary.total_visits,
        "peak_rss_kb": peak_kb,
        "seconds": round(time.time() - start, 3),
    }))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
