"""Bench: regenerate Fig. 9 (loss sweep with fitted slopes).

Paper targets: PLT reduction grows with the number of CDN resources,
faster at higher loss rates; fitted slopes ordered 0 % < 0.5 % < 1 %
(paper: 0.80 < 1.42 < 2.15 ms/resource).  At bench scale we assert the
ends of the ordering (1 % ≫ 0 %); the middle point is reported.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig9(benchmark, study):
    result = run_once(benchmark, run_experiment, "fig9", study)
    print()
    print(result.render())
    slopes = result.data["slopes"]
    # Both lossy slopes clearly exceed the lossless one (the paper's
    # 0.5% vs 1% ordering needs full-scale statistics; see
    # EXPERIMENTS.md for the 3-repetition full-scale numbers).
    assert slopes[0.005] > slopes[0.0] + 0.5
    assert slopes[0.01] > slopes[0.0] + 0.5
    # The lossless slope should be near zero (handshake savings vs the
    # reuse turning point roughly balance), far below the lossy slopes.
    assert abs(slopes[0.0]) < 1.0
