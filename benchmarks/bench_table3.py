"""Bench: regenerate Table III (high/low sharing case study).

Paper targets: C_H has more shared providers (4.16 vs 2.58), more
resumed connections (101.64 vs 73.74), and a larger PLT reduction
(109.3 ms vs 54.35 ms) than C_L.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_table3(benchmark, study):
    result = run_once(benchmark, run_experiment, "table3", study)
    print()
    print(result.render())
    high, low = result.data["high"], result.data["low"]
    assert high["avg_shared_providers"] > low["avg_shared_providers"]
    # Resumption and reduction orderings are strict at full scale (see
    # EXPERIMENTS.md: 60.4 vs 53.3 resumed, 26.5 vs 25.1 ms at 325
    # sites, stable across seeds); bench-scale clusters are small, so
    # both get noise slack here.
    assert high["avg_resumed_connections"] > 0.7 * low["avg_resumed_connections"]
    assert high["plt_reduction_ms"] > low["plt_reduction_ms"] - 20.0
