"""Campaign-engine benchmark: serial vs parallel wall-clock + substrate.

Standalone script (not a pytest-benchmark module) so the perf
trajectory of the parallel runner is tracked as one JSON artifact::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --pages 32 --workers 2,4 --out BENCH_campaign.json

It measures, on one ≥32-page universe:

* serial (``workers=1``) campaign wall-clock and CPU time,
* parallel campaign wall-clock per worker count, with a determinism
  check against the serial result (skipped — and annotated — when the
  host exposes fewer than two CPUs: a pool cannot beat the serial run
  there and a sub-1.0 "speedup" would only pollute the history),
* observability overhead: the same campaign with counters only and
  with full tracing, as both wall-clock and CPU-time percentages (CPU
  time is the stable estimator on noisy shared hosts),
* metrics-sampler overhead: the sim-time sampler
  (``CampaignConfig.metrics_interval_ms``) on vs off with the paired
  median-ratio estimator, an off-vs-off canary that bounds what the
  host can resolve, and a result-fingerprint identity check,
* the analytic transport fast path (``TransportConfig.fast_path``) on
  vs off, with a PLT-identity audit of the paired visits,
* DES substrate events/sec for **every** scheduler implementation
  (binary heap, calendar queue, C kernel when built) on two shapes:
  a chained-callback hot loop and a schedule/cancel timer churn — so
  the calendar queue's and C core's advantages stay measured, not
  assumed — plus a lossy 500 KB transfer on the default loop.

Speedup expectations scale with *available cores* (recorded in the
output): on a single-core container the pool cannot beat the serial
run, and the artifact says so rather than pretending otherwise.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import statistics
import subprocess
import sys
import tempfile
import time
from collections import deque

from repro.events import EventLoop
from repro.events.loop import CalendarEventLoop, CEventLoop, HeapEventLoop
from repro.measurement import CampaignConfig, CampaignPlan, execute
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection, TransportConfig
from repro.web.topsites import GeneratorConfig, cached_universe


def campaign_runner(universe, config):
    """A ``run(pages, ...)`` callable over the streaming executor.

    Mirrors the deprecated ``Campaign(universe, config).run`` shape the
    bench's timing helpers expect, without the deprecation warning.
    """
    def run(pages, workers=1, store=None, run_name=None):
        return execute(CampaignPlan(
            universe=universe,
            sim=config,
            pages=tuple(pages),
            workers=workers,
            store=store,
            run_name=run_name,
        ))
    return run


def git_sha() -> str | None:
    """The current commit, or None outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip()
            or None
        )
    except OSError:
        return None


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def timed(fn, *args, **kwargs):
    """``(result, wall_seconds, cpu_seconds)`` for one call.

    Collects then freezes the heap first so the cyclic GC only scans
    objects the measured call itself allocates.  Without this, sections
    that run later in the bench get billed for collections that scan
    every retained result from *earlier* sections — on the smoke scale
    that mismeasured tracing overhead by >20 points.
    """
    gc.collect()
    gc.freeze()
    wall = time.perf_counter()
    cpu = time.process_time()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - wall, time.process_time() - cpu


def timed_best(repeats, fn, *args, **kwargs):
    """``timed`` over ``repeats`` calls, keeping the minimum times.

    Minimum-of-N is the standard noise estimator for CPU-bound work: a
    run can only be slowed down by interference, never sped up, so the
    minimum is the closest observation to the true cost.  Overhead
    percentages at smoke scale (~1.5 s runs on shared 1-CPU hosts)
    swing by tens of points single-shot; min-of-3 makes them gateable.
    """
    result, best_wall, best_cpu = timed(fn, *args, **kwargs)
    for _ in range(repeats - 1):
        _, wall_s, cpu_s = timed(fn, *args, **kwargs)
        best_wall = min(best_wall, wall_s)
        best_cpu = min(best_cpu, cpu_s)
    return result, best_wall, best_cpu


def bench_store_cold_vs_warm(universe, pages, config) -> dict:
    """Cold (all misses, write-through) vs warm (100% replay) campaign.

    The warm number is the store's raison d'être: replaying should cost
    file reads and JSON decoding, not simulation.
    """
    from repro.store import ResultStore

    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(os.path.join(tmp, "store")) as store:
            run = campaign_runner(universe, config)
            start = time.perf_counter()
            cold = run(pages, store=store, run_name="bench")
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = run(pages, store=store, run_name="bench")
            warm_s = time.perf_counter() - start
            if fingerprint(warm) != fingerprint(cold):
                raise SystemExit("warm store replay diverged from cold run")
            return {
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "replay_speedup": cold_s / warm_s if warm_s > 0 else None,
                "hits": warm.store_stats.hits,
                "misses": cold.store_stats.misses,
            }


def append_history(payload: dict, out_path: str) -> dict:
    """Fold ``payload`` into the artifact's append-only history.

    Each invocation appends one ``{sha, timestamp, ...headline}`` entry
    to a ``history`` list carried across runs of the same artifact, so
    the perf trajectory is greppable from the single JSON file.
    ``--sections`` runs omit whole payload sections, so every headline
    read is ``.get``-tolerant and absent values are dropped.
    """
    history: list[dict] = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as handle:
                history = json.load(handle).get("history", [])
        except (ValueError, OSError):
            history = []
    tracing = payload.get("tracing") or {}
    substrate = payload.get("substrate") or {}
    metrics = payload.get("metrics_sampler") or {}
    entry = {
        "git_sha": git_sha(),
        "timestamp_unix": time.time(),
        "serial_seconds": payload["serial_seconds"],
        "parallel": {
            workers: run["seconds"]
            for workers, run in (payload.get("parallel") or {}).items()
        },
        "store_warm_seconds": (payload.get("store") or {}).get("warm_seconds"),
        "kernel_events_per_sec": substrate.get("kernel_events_per_sec"),
        "kernel_chain": {
            name: impl["chain_events_per_sec"]
            for name, impl in (substrate.get("kernels") or {}).items()
        },
        "tracing_overhead_cpu_pct": tracing.get("overhead_cpu_pct"),
        "tracing_overhead_cpu_pct_paired":
            tracing.get("overhead_cpu_pct_paired"),
        "fast_path_speedup": (payload.get("fast_path") or {}).get("cpu_speedup"),
        "metrics_overhead_cpu_pct_paired":
            metrics.get("overhead_cpu_pct_paired"),
        "metrics_disabled_canary_pct": metrics.get("disabled_canary_pct"),
        "metrics_disabled_canary_minmin_pct":
            metrics.get("disabled_canary_minmin_pct"),
        "streaming_rss_growth_ratio":
            (payload.get("streaming_memory") or {}).get("rss_growth_ratio"),
    }
    history.append({k: v for k, v in entry.items() if v is not None})
    payload["history"] = history
    return payload


def _kernel_impls() -> dict[str, type]:
    impls: dict[str, type] = {
        "heap": HeapEventLoop,
        "calendar": CalendarEventLoop,
    }
    if CEventLoop is not None:
        impls["c"] = CEventLoop
    return impls


def bench_kernel_chain(loop_cls, n_events: int = 200_000) -> float:
    """Chained call_later throughput: the scheduler's inner loop."""
    loop = loop_cls()
    state = {"n": 0}

    def tick() -> None:
        state["n"] += 1
        if state["n"] < n_events:
            loop.call_later(0.01, tick)

    loop.call_later(0.0, tick)
    start = time.perf_counter()
    loop.run()
    return n_events / (time.perf_counter() - start)


def bench_kernel_churn(loop_cls, n_events: int = 200_000) -> float:
    """Schedule-then-cancel churn: the delayed-ack/PTO re-arm pattern.

    Every tick arms a fresh 7.5 ms timer and cancels the one armed two
    ticks earlier, so nearly every timer dies before its bucket drains
    — the shape the calendar queue's bulk purge is built for.
    """
    loop = loop_cls()
    timers: deque = deque()
    state = {"n": 0}

    def noop() -> None:  # pragma: no cover - cancelled before firing
        pass

    def tick() -> None:
        state["n"] += 1
        timers.append(loop.call_later(7.5, noop))
        if len(timers) > 2:
            timers.popleft().cancel()
        if state["n"] < n_events:
            loop.call_later(0.01, tick)

    loop.call_later(0.0, tick)
    start = time.perf_counter()
    loop.run()
    return n_events / (time.perf_counter() - start)


def bench_kernels(n_events: int = 200_000) -> dict:
    """Both shapes across every built scheduler implementation."""
    return {
        name: {
            "chain_events_per_sec": bench_kernel_chain(cls, n_events),
            "churn_events_per_sec": bench_kernel_churn(cls, n_events),
        }
        for name, cls in _kernel_impls().items()
    }


def bench_transfer_events_per_sec(response_bytes: int = 500_000) -> dict:
    """A lossy QUIC transfer: packets, acks, timers — the real mix."""
    loop = EventLoop()
    path = NetworkPath(
        loop,
        NetemProfile(delay_ms=15.0, loss_rate=0.02, rate_mbps=50.0),
        rng=random.Random(7),
    )
    conn = QuicConnection(loop, path)
    done: list = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    stream = conn.request(400, response_bytes)
    start = time.perf_counter()
    loop.run_until(lambda: stream.complete)
    elapsed = time.perf_counter() - start
    return {
        "events": loop.processed_events,
        "events_per_sec": loop.processed_events / elapsed,
    }


def bench_fast_path(universe, pages, slow_result, slow_cpu_s, repeats=1) -> dict:
    """The analytic fast path vs the packet path, plus a fidelity audit.

    ``slow_result``/``slow_cpu_s`` are the default serial campaign
    (fast path off) measured by the caller.  The audit counts paired
    visits whose PLT is bit-identical across the two paths and reports
    the worst relative divergence — the documented residual is
    same-instant tie-breaking, so this should sit at ~0%.
    """
    run_fast = campaign_runner(
        universe,
        CampaignConfig(seed=3, transport_config=TransportConfig(fast_path=True)),
    )
    fast, fast_wall_s, fast_cpu_s = timed_best(
        repeats, run_fast, pages, workers=1
    )
    visits = identical = 0
    worst = 0.0
    for slow_pv, fast_pv in zip(slow_result.paired_visits, fast.paired_visits):
        for slow_v, fast_v in ((slow_pv.h2, fast_pv.h2), (slow_pv.h3, fast_pv.h3)):
            visits += 1
            if slow_v.plt_ms == fast_v.plt_ms:
                identical += 1
            if slow_v.plt_ms:
                worst = max(
                    worst, abs(slow_v.plt_ms - fast_v.plt_ms) / slow_v.plt_ms
                )
    return {
        "off_cpu_seconds": slow_cpu_s,
        "on_cpu_seconds": fast_cpu_s,
        "on_seconds": fast_wall_s,
        "cpu_speedup": slow_cpu_s / fast_cpu_s if fast_cpu_s > 0 else None,
        "visits": visits,
        "plt_identical": identical,
        "plt_worst_rel_delta_pct": worst * 100.0,
    }


def bench_metrics_sampler(universe, pages, repeats: int) -> dict:
    """Sim-time metrics sampler on vs off, with a resolution canary.

    Each round runs six campaigns in the *position-balanced* order
    ``offA, offB, on, on, offB, offA``: within a round, every variant
    occupies symmetric positions, so both linear host drift and the
    first-run-is-faster positional bias (which reads as a phantom +10%
    on small runs) cancel out of the within-round ratios.

    * ``overhead_cpu_pct_paired`` — median over rounds of on-pair CPU
      over the off runs (the gateable number),
    * ``overhead_cpu_pct`` — min-of-series over min-of-series
      (continuity with the tracing section; resolution-limited),
    * ``disabled_canary_pct`` / ``disabled_canary_minmin_pct`` — the
      balanced-paired and the min-over-min estimators applied to the
      two *identical* off series.  Whatever they read is pure host
      noise; they bound what this host can resolve, and stand in for
      the disabled-path overhead claim (the sampler-off code differs
      from a telemetry-free build only by falsy-guard checks — the
      hard guarantee is bit-identity, asserted via fingerprints here
      and in the tests).  The min/min form converges fast (a run can
      only be slowed, never sped up, so series minima of identical
      work agree closely) and is the one the obs-smoke gate reads.

    One full round runs untimed first: cold processes spend their first
    ~10 runs 15–30% above steady state (allocator/branch-predictor
    warm-up), a curvature the balanced order cannot cancel.

    Rounds are *adaptive*: the canary doubles as a measurement-validity
    check, so while it reads ≥2% (i.e. the run was polluted by a host
    noise burst — identical code cannot differ) the loop keeps adding
    rounds, up to ``3 × repeats``, letting the medians and series
    minima converge before anything is reported or gated.
    """
    run_off_a = campaign_runner(universe, CampaignConfig(seed=3))
    run_off_b = campaign_runner(universe, CampaignConfig(seed=3))
    run_on = campaign_runner(
        universe, CampaignConfig(seed=3, metrics_interval_ms=5.0)
    )
    for run in (run_off_a, run_off_b, run_on):
        timed(run, pages, workers=1)
        timed(run, pages, workers=1)
    off_a_series: list[float] = []
    off_b_series: list[float] = []
    on_series: list[float] = []
    on_ratios: list[float] = []
    canary_ratios: list[float] = []
    off_result = on_result = None
    rounds = 0
    while True:
        off_result, _, off_a1 = timed(run_off_a, pages, workers=1)
        _, _, off_b1 = timed(run_off_b, pages, workers=1)
        on_result, _, on_1 = timed(run_on, pages, workers=1)
        _, _, on_2 = timed(run_on, pages, workers=1)
        _, _, off_b2 = timed(run_off_b, pages, workers=1)
        _, _, off_a2 = timed(run_off_a, pages, workers=1)
        off_a_series += [off_a1, off_a2]
        off_b_series += [off_b1, off_b2]
        on_series += [on_1, on_2]
        off_mean = (off_a1 + off_a2 + off_b1 + off_b2) / 2.0
        on_ratios.append((on_1 + on_2) / off_mean)
        canary_ratios.append((off_b1 + off_b2) / (off_a1 + off_a2))
        rounds += 1
        canary_paired = statistics.median(canary_ratios) - 1.0
        canary_minmin = min(off_b_series) / min(off_a_series) - 1.0
        converged = min(abs(canary_paired), abs(canary_minmin)) < 0.02
        if rounds >= repeats and (converged or rounds >= 3 * repeats):
            break
    off_series = off_a_series + off_b_series
    if fingerprint(on_result) != fingerprint(off_result):
        raise SystemExit("metrics-sampler run diverged from the plain run")
    samples = sum(1 for _ in on_result.metrics_events())
    off_cpu_s = min(off_series)
    on_cpu_s = min(on_series)
    return {
        "interval_ms": 5.0,
        "samples": samples,
        "rounds": rounds,
        "off_cpu_seconds": off_cpu_s,
        "on_cpu_seconds": on_cpu_s,
        "overhead_cpu_pct": 100.0 * (on_cpu_s - off_cpu_s) / off_cpu_s,
        "overhead_cpu_pct_paired": 100.0 * (
            statistics.median(on_ratios) - 1.0
        ),
        "disabled_canary_pct": 100.0 * canary_paired,
        "disabled_canary_minmin_pct": 100.0 * canary_minmin,
        "fingerprint_identical": True,
    }


def fingerprint(result) -> list:
    return [
        (pv.probe_name, pv.page.url, pv.h2.plt_ms, pv.h3.plt_ms)
        for pv in result.paired_visits
    ]


def bench_streaming_memory(
    pages_small: int = 256, pages_large: int = 2048
) -> dict:
    """Peak RSS of a summary-only streaming campaign vs page count.

    The streaming executor's contract: memory is O(in-flight window +
    folded summary), not O(pages).  Each point runs in its own
    subprocess (``rss_probe.py``) because ``ru_maxrss`` is a process-
    lifetime high-water mark.  The recorded ratio should stay ~1.0; the
    stream-smoke CI gate asserts < 1.15.
    """
    probe = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "rss_probe.py")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(probe)), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    points = {}
    for n_pages in (pages_small, pages_large):
        output = subprocess.run(
            [sys.executable, probe, "--pages", str(n_pages)],
            check=True, capture_output=True, text=True, env=env,
        ).stdout
        points[n_pages] = json.loads(output)
    small, large = points[pages_small], points[pages_large]
    return {
        "pages_small": pages_small,
        "pages_large": pages_large,
        "rss_small_kb": small["peak_rss_kb"],
        "rss_large_kb": large["peak_rss_kb"],
        "rss_growth_ratio": large["peak_rss_kb"] / small["peak_rss_kb"],
        "seconds_small": small["seconds"],
        "seconds_large": large["seconds"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=32)
    parser.add_argument("--sites", type=int, default=32)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="2,4",
                        help="comma-separated worker counts to benchmark")
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="repeat timed campaign runs, keep the min (noise control "
        "for short smoke runs; see timed_best)",
    )
    parser.add_argument(
        "--sections", default="all",
        help="comma-separated sections to run (default all): "
        "parallel,tracing,fastpath,store,substrate,metrics,memory — "
        "the serial baseline always runs",
    )
    args = parser.parse_args(argv)

    all_sections = {"parallel", "tracing", "fastpath", "store",
                    "substrate", "metrics", "memory"}
    if args.sections == "all":
        sections = all_sections
    else:
        sections = {s.strip() for s in args.sections.split(",") if s.strip()}
        unknown = sections - all_sections
        if unknown:
            parser.error(f"unknown sections: {', '.join(sorted(unknown))}")

    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    universe = cached_universe(GeneratorConfig(n_sites=args.sites), seed=args.seed)
    pages = universe.pages[: args.pages]
    config = CampaignConfig(seed=3)
    run_campaign = campaign_runner(universe, config)
    cpus = available_cpus()

    print(f"universe: {args.sites} sites, measuring {len(pages)} pages")
    # Warm-up pass: the very first campaign pays one-off costs (lazy
    # imports, allocator growth, universe asset generation) that would
    # otherwise inflate the serial baseline — and with it every
    # overhead/speedup percentage computed against it.  Matters most at
    # smoke scale, where warm-up is a large share of a ~2s run.
    run_campaign(pages[: min(4, len(pages))], workers=1)
    serial, serial_s, serial_cpu_s = timed_best(
        args.repeats, run_campaign, pages, workers=1
    )
    print(f"serial (workers=1): {serial_s:.2f}s wall, {serial_cpu_s:.2f}s cpu")

    runs: dict[str, dict] = {}
    parallel_note = None
    if "parallel" not in sections:
        parallel_note = "skipped by --sections"
    elif cpus < 2:
        # A worker pool cannot outrun the serial loop on one CPU; a
        # recorded sub-1.0 "speedup" would read as a regression in the
        # history, so skip the measurement and say why.
        parallel_note = (
            f"skipped: only {cpus} CPU available to this process; "
            "pool speedup is not measurable here"
        )
        print(f"parallel: {parallel_note}")
    else:
        serial_print = fingerprint(serial)
        for workers in worker_counts:
            start = time.perf_counter()
            result = run_campaign(pages, workers=workers)
            elapsed = time.perf_counter() - start
            identical = fingerprint(result) == serial_print
            runs[str(workers)] = {
                "seconds": elapsed,
                "speedup_vs_serial": serial_s / elapsed,
                "identical_to_serial": identical,
            }
            print(
                f"workers={workers}: {elapsed:.2f}s "
                f"(speedup {serial_s / elapsed:.2f}x, identical={identical})"
            )
            if not identical:
                raise SystemExit(f"workers={workers} diverged from the serial run")

    # Observability overhead: the same serial campaign untraced, with
    # counters only, and with full tracing.  Wall-clock is reported for
    # continuity, but the acceptance numbers are CPU-time percentages:
    # on shared hosts the wall clock wobbles far more than the work
    # does.  The three variants are run *interleaved* (off, counters,
    # traced, off, counters, ...) and each series keeps its minimum —
    # host frequency scaling drifts on a timescale of seconds, so
    # back-to-back runs see the same clock and sequential series don't.
    tracing = None
    off_cpu_s = serial_cpu_s
    if "tracing" in sections:
        run_counters = campaign_runner(
            universe, CampaignConfig(seed=3, collect_counters=True)
        )
        run_traced = campaign_runner(
            universe, CampaignConfig(seed=3, collect_counters=True, trace=True)
        )
        off_series: list[float] = []
        counters_series: list[float] = []
        traced_series: list[float] = []
        counters_s = traced_s = float("inf")
        for _ in range(args.repeats):
            _, _, cpu_s = timed(run_campaign, pages, workers=1)
            off_series.append(cpu_s)
            _, wall_s, cpu_s = timed(run_counters, pages, workers=1)
            counters_s = min(counters_s, wall_s)
            counters_series.append(cpu_s)
            _, wall_s, cpu_s = timed(run_traced, pages, workers=1)
            traced_s = min(traced_s, wall_s)
            traced_series.append(cpu_s)
        off_cpu_s = min(off_series)
        counters_cpu_s = min(counters_series)
        traced_cpu_s = min(traced_series)

        tracing = {
            "off_seconds": serial_s,
            "off_cpu_seconds": off_cpu_s,
            "counters_seconds": counters_s,
            "counters_overhead_pct": 100.0 * (counters_s - serial_s) / serial_s,
            "counters_overhead_cpu_pct":
                100.0 * (counters_cpu_s - off_cpu_s) / off_cpu_s,
            "on_seconds": traced_s,
            "overhead_pct": 100.0 * (traced_s - serial_s) / serial_s,
            "overhead_cpu_pct": 100.0 * (traced_cpu_s - off_cpu_s) / off_cpu_s,
            # Median over rounds of the *within-round* traced/off ratio.
            # Each round's pair ran back to back under the same host
            # clock, so the ratio cancels between-round speed drift, and
            # the median sheds rounds where interference hit one member
            # of the pair.  This is the estimator bench-smoke gates on:
            # min/min across series cannot resolve <20% on hosts where
            # identical work varies by tens of percent (the ≈free
            # counters run reads anywhere from -6% to +11% by min/min on
            # such hosts).
            "overhead_cpu_pct_paired": 100.0 * (
                statistics.median(
                    t / o for t, o in zip(traced_series, off_series)
                ) - 1.0
            ),
        }
        print(
            f"tracing (cpu): off {off_cpu_s:.2f}s, "
            f"counters {counters_cpu_s:.2f}s "
            f"({tracing['counters_overhead_cpu_pct']:+.1f}%), "
            f"traced {traced_cpu_s:.2f}s ({tracing['overhead_cpu_pct']:+.1f}%, "
            f"paired {tracing['overhead_cpu_pct_paired']:+.1f}%)"
        )

    metrics_sampler = None
    if "metrics" in sections:
        metrics_sampler = bench_metrics_sampler(universe, pages, args.repeats)
        print(
            f"metrics sampler (cpu): off "
            f"{metrics_sampler['off_cpu_seconds']:.2f}s, on "
            f"{metrics_sampler['on_cpu_seconds']:.2f}s "
            f"({metrics_sampler['overhead_cpu_pct']:+.1f}%, paired "
            f"{metrics_sampler['overhead_cpu_pct_paired']:+.1f}%, canary "
            f"{metrics_sampler['disabled_canary_pct']:+.1f}%), "
            f"{metrics_sampler['samples']} samples"
        )

    fast_path = None
    if "fastpath" in sections:
        fast_path = bench_fast_path(
            universe, pages, serial, off_cpu_s, repeats=args.repeats
        )
        print(
            f"fast path (cpu): off {fast_path['off_cpu_seconds']:.2f}s, "
            f"on {fast_path['on_cpu_seconds']:.2f}s "
            f"(speedup {fast_path['cpu_speedup']:.2f}x, "
            f"{fast_path['plt_identical']}/{fast_path['visits']} PLTs "
            f"identical, "
            f"worst delta {fast_path['plt_worst_rel_delta_pct']:.3f}%)"
        )

    memory_bench = None
    if "memory" in sections:
        memory_bench = bench_streaming_memory()
        print(
            f"memory: {memory_bench['pages_small']} pages "
            f"{memory_bench['rss_small_kb'] / 1024:.0f} MB peak vs "
            f"{memory_bench['pages_large']} pages "
            f"{memory_bench['rss_large_kb'] / 1024:.0f} MB peak "
            f"(growth {memory_bench['rss_growth_ratio']:.3f}x)"
        )

    store_bench = None
    if "store" in sections:
        store_bench = bench_store_cold_vs_warm(universe, pages, config)
        print(
            f"store: cold {store_bench['cold_seconds']:.2f}s, "
            f"warm {store_bench['warm_seconds']:.2f}s "
            f"(replay speedup {store_bench['replay_speedup']:.1f}x, "
            f"{store_bench['hits']} hits)"
        )

    substrate = None
    if "substrate" in sections:
        kernels = bench_kernels()
        transfer = bench_transfer_events_per_sec()
        for name, impl in kernels.items():
            print(
                f"substrate kernel [{name}]: "
                f"chain {impl['chain_events_per_sec']:,.0f} events/s, "
                f"churn {impl['churn_events_per_sec']:,.0f} events/s"
            )
        print(
            f"substrate transfer: {transfer['events']} events, "
            f"{transfer['events_per_sec']:,.0f} events/s"
        )
        default_kernel = (
            "c" if CEventLoop is not None and EventLoop is CEventLoop
            else ("heap" if EventLoop is HeapEventLoop else "calendar")
        )
        substrate = {
            "default_kernel": default_kernel,
            "kernels": kernels,
            # Headline number: the default loop's chain throughput
            # (field name kept stable for older history entries).
            "kernel_events_per_sec":
                kernels[default_kernel]["chain_events_per_sec"],
            "transfer_events": transfer["events"],
            "transfer_events_per_sec": transfer["events_per_sec"],
        }

    payload = {
        "benchmark": "campaign-engine",
        "pages": len(pages),
        "sites": args.sites,
        "cpu_count": os.cpu_count(),
        "sched_affinity_cpus": cpus,
        "serial_seconds": serial_s,
        "serial_cpu_seconds": serial_cpu_s,
        "parallel": runs,
        "parallel_note": parallel_note,
        "note": (
            "speedup is bounded by available cores; on a 1-core host the "
            "pool adds serialization overhead instead of parallelism"
        ),
    }
    for key, section in (
        ("tracing", tracing),
        ("metrics_sampler", metrics_sampler),
        ("fast_path", fast_path),
        ("store", store_bench),
        ("substrate", substrate),
        ("streaming_memory", memory_bench),
    ):
        if section is not None:
            payload[key] = section
    payload = append_history(payload, args.out)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.out} ({len(payload['history'])} history entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
