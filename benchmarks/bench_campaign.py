"""Campaign-engine benchmark: serial vs parallel wall-clock + substrate.

Standalone script (not a pytest-benchmark module) so the perf
trajectory of the parallel runner is tracked as one JSON artifact::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --pages 32 --workers 2,4 --out BENCH_campaign.json

It measures, on one ≥32-page universe:

* serial (``workers=1``) campaign wall-clock,
* parallel campaign wall-clock per worker count, with a determinism
  check against the serial result,
* DES substrate events/sec (event-loop kernel and a lossy 500 KB
  transfer), the numbers the hot-path pass is accountable for.

Speedup expectations scale with *available cores* (recorded in the
output): on a single-core container the pool cannot beat the serial
run, and the artifact says so rather than pretending otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import tempfile
import time

from repro.events import EventLoop
from repro.measurement import Campaign, CampaignConfig
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection
from repro.web.topsites import GeneratorConfig, cached_universe


def git_sha() -> str | None:
    """The current commit, or None outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip()
            or None
        )
    except OSError:
        return None


def bench_store_cold_vs_warm(universe, pages, config) -> dict:
    """Cold (all misses, write-through) vs warm (100% replay) campaign.

    The warm number is the store's raison d'être: replaying should cost
    file reads and JSON decoding, not simulation.
    """
    from repro.store import ResultStore

    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(os.path.join(tmp, "store")) as store:
            campaign = Campaign(universe, config)
            start = time.perf_counter()
            cold = campaign.run(pages, store=store, run_name="bench")
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = campaign.run(pages, store=store, run_name="bench")
            warm_s = time.perf_counter() - start
            if fingerprint(warm) != fingerprint(cold):
                raise SystemExit("warm store replay diverged from cold run")
            return {
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "replay_speedup": cold_s / warm_s if warm_s > 0 else None,
                "hits": warm.store_stats.hits,
                "misses": cold.store_stats.misses,
            }


def append_history(payload: dict, out_path: str) -> dict:
    """Fold ``payload`` into the artifact's append-only history.

    Each invocation appends one ``{sha, timestamp, ...headline}`` entry
    to a ``history`` list carried across runs of the same artifact, so
    the perf trajectory is greppable from the single JSON file.
    """
    history: list[dict] = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as handle:
                history = json.load(handle).get("history", [])
        except (ValueError, OSError):
            history = []
    entry = {
        "git_sha": git_sha(),
        "timestamp_unix": time.time(),
        "serial_seconds": payload["serial_seconds"],
        "parallel": {
            workers: run["seconds"] for workers, run in payload["parallel"].items()
        },
        "store_warm_seconds": payload["store"]["warm_seconds"],
        "kernel_events_per_sec": payload["substrate"]["kernel_events_per_sec"],
    }
    history.append(entry)
    payload["history"] = history
    return payload


def bench_kernel_events_per_sec(n_events: int = 200_000) -> float:
    """Chained call_later throughput: the scheduler's inner loop."""
    loop = EventLoop()
    state = {"n": 0}

    def tick() -> None:
        state["n"] += 1
        if state["n"] < n_events:
            loop.call_later(0.01, tick)

    loop.call_later(0.0, tick)
    start = time.perf_counter()
    loop.run()
    return n_events / (time.perf_counter() - start)


def bench_transfer_events_per_sec(response_bytes: int = 500_000) -> dict:
    """A lossy QUIC transfer: packets, acks, timers — the real mix."""
    loop = EventLoop()
    path = NetworkPath(
        loop,
        NetemProfile(delay_ms=15.0, loss_rate=0.02, rate_mbps=50.0),
        rng=random.Random(7),
    )
    conn = QuicConnection(loop, path)
    done: list = []
    conn.connect(done.append)
    loop.run_until(lambda: bool(done))
    stream = conn.request(400, response_bytes)
    start = time.perf_counter()
    loop.run_until(lambda: stream.complete)
    elapsed = time.perf_counter() - start
    return {
        "events": loop.processed_events,
        "events_per_sec": loop.processed_events / elapsed,
    }


def fingerprint(result) -> list:
    return [
        (pv.probe_name, pv.page.url, pv.h2.plt_ms, pv.h3.plt_ms)
        for pv in result.paired_visits
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=32)
    parser.add_argument("--sites", type=int, default=32)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="2,4",
                        help="comma-separated worker counts to benchmark")
    parser.add_argument("--out", default="BENCH_campaign.json")
    args = parser.parse_args(argv)

    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    universe = cached_universe(GeneratorConfig(n_sites=args.sites), seed=args.seed)
    pages = universe.pages[: args.pages]
    config = CampaignConfig(seed=3)
    campaign = Campaign(universe, config)

    print(f"universe: {args.sites} sites, measuring {len(pages)} pages")
    start = time.perf_counter()
    serial = campaign.run(pages, workers=1)
    serial_s = time.perf_counter() - start
    print(f"serial (workers=1): {serial_s:.2f}s")

    runs = {}
    serial_print = fingerprint(serial)
    for workers in worker_counts:
        start = time.perf_counter()
        result = campaign.run(pages, workers=workers)
        elapsed = time.perf_counter() - start
        identical = fingerprint(result) == serial_print
        runs[str(workers)] = {
            "seconds": elapsed,
            "speedup_vs_serial": serial_s / elapsed,
            "identical_to_serial": identical,
        }
        print(
            f"workers={workers}: {elapsed:.2f}s "
            f"(speedup {serial_s / elapsed:.2f}x, identical={identical})"
        )
        if not identical:
            raise SystemExit(f"workers={workers} diverged from the serial run")

    # Observability overhead: the same serial campaign with counters
    # only, then with full tracing.  The tracer-off run above is the
    # baseline; the acceptance bar is "counters ≈ free, tracing cheap".
    start = time.perf_counter()
    campaign_counters = Campaign(
        universe, CampaignConfig(seed=3, collect_counters=True)
    )
    campaign_counters.run(pages, workers=1)
    counters_s = time.perf_counter() - start

    start = time.perf_counter()
    campaign_traced = Campaign(
        universe, CampaignConfig(seed=3, collect_counters=True, trace=True)
    )
    campaign_traced.run(pages, workers=1)
    traced_s = time.perf_counter() - start

    tracing = {
        "off_seconds": serial_s,
        "counters_seconds": counters_s,
        "counters_overhead_pct": 100.0 * (counters_s - serial_s) / serial_s,
        "on_seconds": traced_s,
        "overhead_pct": 100.0 * (traced_s - serial_s) / serial_s,
    }
    print(
        f"tracing: off {serial_s:.2f}s, counters {counters_s:.2f}s "
        f"({tracing['counters_overhead_pct']:+.1f}%), "
        f"traced {traced_s:.2f}s ({tracing['overhead_pct']:+.1f}%)"
    )

    store_bench = bench_store_cold_vs_warm(universe, pages, config)
    print(
        f"store: cold {store_bench['cold_seconds']:.2f}s, "
        f"warm {store_bench['warm_seconds']:.2f}s "
        f"(replay speedup {store_bench['replay_speedup']:.1f}x, "
        f"{store_bench['hits']} hits)"
    )

    kernel = bench_kernel_events_per_sec()
    transfer = bench_transfer_events_per_sec()
    print(f"substrate kernel: {kernel:,.0f} events/s")
    print(
        f"substrate transfer: {transfer['events']} events, "
        f"{transfer['events_per_sec']:,.0f} events/s"
    )

    payload = {
        "benchmark": "campaign-engine",
        "pages": len(pages),
        "sites": args.sites,
        "cpu_count": os.cpu_count(),
        "sched_affinity_cpus": (
            len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else None
        ),
        "serial_seconds": serial_s,
        "parallel": runs,
        "tracing": tracing,
        "store": store_bench,
        "substrate": {
            "kernel_events_per_sec": kernel,
            "transfer_events": transfer["events"],
            "transfer_events_per_sec": transfer["events_per_sec"],
        },
        "note": (
            "speedup is bounded by available cores; on a 1-core host the "
            "pool adds serialization overhead instead of parallelism"
        ),
    }
    payload = append_history(payload, args.out)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.out} ({len(payload['history'])} history entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
