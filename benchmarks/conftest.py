"""Shared fixtures for the benchmark harness.

One session-scoped :class:`H3CdnStudy` backs all per-figure benches so
the expensive stages (universe generation, the paired campaign, the
consecutive walk, the loss sweep) run exactly once.  The scale — 60
sites, 40-page loss sweep with 2 repetitions — is chosen so the full
bench suite finishes in minutes while every paper *shape* is resolvable
above simulation noise.  EXPERIMENTS.md records the full-scale (325
site) numbers produced by ``repro-h3cdn --scale full``.
"""

import pytest

from repro.core import H3CdnStudy, StudyConfig

BENCH_SITES = 60
BENCH_SEED = 7


@pytest.fixture(scope="session")
def study():
    return H3CdnStudy(
        StudyConfig(
            n_sites=BENCH_SITES,
            seed=BENCH_SEED,
            max_loss_sweep_pages=40,
            loss_sweep_repetitions=2,
        )
    )


@pytest.fixture(scope="session")
def campaign(study):
    """Force the paired campaign to run (cached on the study)."""
    return study.campaign_result


@pytest.fixture(scope="session")
def consecutive(study):
    """Force the consecutive walk to run (cached on the study)."""
    return study.consecutive_runs


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy function with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
