"""Microbenchmarks of the simulation substrate itself.

These measure raw performance (events/second, page visits/second) so
regressions in the simulator's hot paths are visible, independent of
the paper's experiments.
"""

import random

import pytest

from repro.browser import Browser, BrowserConfig
from repro.events import EventLoop
from repro.measurement import ProbeNetProfile, ServerFarm
from repro.netsim import NetemProfile, NetworkPath
from repro.transport import QuicConnection, TcpConnection
from repro.web import GeneratorConfig, TopSitesGenerator


def test_event_loop_throughput(benchmark):
    """Schedule-and-run cycles per second of the DES kernel."""

    def run():
        loop = EventLoop()
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 10_000:
                loop.call_later(0.001, tick)

        loop.call_later(0.0, tick)
        loop.run()
        return counter["n"]

    assert benchmark(run) == 10_000


@pytest.mark.parametrize("conn_cls", [TcpConnection, QuicConnection])
def test_bulk_transfer(benchmark, conn_cls):
    """One 500 KB transfer over a clean 30 ms-RTT 50 Mbps path."""

    def run():
        loop = EventLoop()
        path = NetworkPath(
            loop, NetemProfile(delay_ms=15.0, rate_mbps=50.0), rng=random.Random(1)
        )
        conn = conn_cls(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 500_000)
        loop.run_until(lambda: stream.complete)
        return stream.received

    assert benchmark(run) == 500_000


def test_lossy_transfer(benchmark):
    """The same transfer at 1 % loss (exercises recovery machinery)."""

    def run():
        loop = EventLoop()
        path = NetworkPath(
            loop,
            NetemProfile(delay_ms=15.0, rate_mbps=50.0, loss_rate=0.01),
            rng=random.Random(1),
        )
        conn = QuicConnection(loop, path)
        done = []
        conn.connect(done.append)
        loop.run_until(lambda: bool(done))
        stream = conn.request(400, 500_000)
        loop.run_until(lambda: stream.complete)
        return stream.received

    assert benchmark(run) == 500_000


def test_universe_generation(benchmark):
    """Generate a 325-site universe (the paper's scale)."""
    universe = benchmark(TopSitesGenerator().generate, 42)
    assert len(universe.websites) == 325


def test_page_visit(benchmark):
    """One full H3-enabled page load through the browser stack."""
    universe = TopSitesGenerator(GeneratorConfig(n_sites=5)).generate(seed=2)
    page = universe.pages[4]

    def run():
        loop = EventLoop()
        farm = ServerFarm(loop, universe.hosts, ProbeNetProfile(), rng=random.Random(3))
        farm.warm_caches([page])
        browser = Browser(loop, farm, BrowserConfig(), rng=random.Random(4))
        return browser.visit(page)

    visit = benchmark(run)
    assert visit.plt_ms > 0
    assert len(visit.entries) == page.total_requests
