"""Bench: regenerate Fig. 3 (CCDF of per-page CDN resource share).

Paper target: 75 % of pages have more than 50 % CDN resources.
"""

from repro.experiments import run_experiment


def test_fig3(benchmark, study):
    result = benchmark(run_experiment, "fig3", study)
    print()
    print(result.render())
    assert 0.60 <= result.data["ccdf_at_half"] <= 0.90  # paper 0.75
    # CCDF must be monotone non-increasing.
    ys = [y for __, y in result.data["ccdf_series"]]
    assert ys == sorted(ys, reverse=True)
