"""Setup shim for environments without the `wheel` package (PEP 660
editable installs need it; `pip install -e . --no-use-pep517` does not)."""
from setuptools import setup

setup()
