"""Registry of all experiment specs, in paper order."""

from __future__ import annotations

from repro.core.study import H3CdnStudy
from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig_amplification,
    fig_fallback,
    fig_flash_crowd,
    fig_migration,
    fig_miss_storm,
    table1,
    table2,
    table3,
)
from repro.experiments.base import ExperimentResult, ExperimentSpec

#: Experiment id → :class:`ExperimentSpec`.  Iteration order follows the
#: paper's presentation order; the fallback extension comes last.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    module.SPEC.name: module.SPEC
    for module in (
        table1, table2, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table3,
        fig9, fig_fallback, fig_migration, fig_amplification, fig_miss_storm,
        fig_flash_crowd,
    )
}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up one spec by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str, study: H3CdnStudy, **overrides
) -> ExperimentResult:
    """Run one experiment by id (``overrides`` shadow the spec params)."""
    return get_spec(experiment_id).execute(study, **overrides)


def run_all(study: H3CdnStudy) -> list[ExperimentResult]:
    """Run every experiment (sharing the study's cached stages)."""
    return [spec.execute(study) for spec in EXPERIMENTS.values()]
