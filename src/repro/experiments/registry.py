"""Registry of all experiment drivers, in paper order."""

from __future__ import annotations

from typing import Callable

from repro.core.study import H3CdnStudy
from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
    table3,
)
from repro.experiments.base import ExperimentResult

#: Experiment id → (title, run callable).  Iteration order follows the
#: paper's presentation order.
EXPERIMENTS: dict[str, tuple[str, Callable[[H3CdnStudy], ExperimentResult]]] = {
    module.EXPERIMENT_ID: (module.TITLE, module.run)
    for module in (
        table1, table2, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table3, fig9
    )
}


def run_experiment(experiment_id: str, study: H3CdnStudy) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        __, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(study)


def run_all(study: H3CdnStudy) -> list[ExperimentResult]:
    """Run every experiment (sharing the study's cached stages)."""
    return [runner(study) for __, runner in EXPERIMENTS.values()]
