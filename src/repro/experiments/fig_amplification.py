"""Amplification sweep — identity-demanding clients vs a Brotli origin.

Not a figure from the paper: this is the adversarial-economics scenario
the cache hierarchy and compression subsystems enable, after the
bandwidth-amplification attack shape of Lin et al.  The origin stores
compressible content Brotli-encoded; a fraction of clients demands
``Accept-Encoding: identity``, forcing the edge to decompress on
egress.  The provider then ships ~3.3x the bytes it ingested for those
objects — the egress/ingress factor must exceed 1 wherever any client
demands identity, and it must grow monotonically with the demanding
fraction (the per-URL demand sets are nested across ratios).
"""

from __future__ import annotations

from repro.core.cdn_scenarios import (
    amplification_exceeds_unity,
    amplification_monotone,
)
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig-amplification"
TITLE = "Egress/ingress amplification vs identity-demand ratio"


def run(ctx: ExperimentContext) -> ExperimentResult:
    points = ctx.study.fig_amplification(ctx.param("identity_ratios"))
    rows = [
        (
            p.label,
            p.egress_bytes,
            p.origin_bytes,
            fmt(p.amplification, 2),
            pct(p.offload_ratio),
            p.conversions,
            fmt(p.h2_mean_plt_ms),
            fmt(p.h3_mean_plt_ms),
            p.paired_visits,
        )
        for p in points
    ]
    lines = format_table(
        (
            "cell",
            "egress (B)",
            "origin (B)",
            "amplification",
            "offload",
            "conversions",
            "H2 PLT (ms)",
            "H3 PLT (ms)",
            "pairs",
        ),
        rows,
    )
    exceeds = amplification_exceeds_unity(points)
    monotone = amplification_monotone(points)
    lines.append(
        f"  amplification factor > 1 under attack: {exceeds}; "
        f"monotone in identity-demand ratio: {monotone}"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "cells": {
                p.label: {
                    "egress_bytes": p.egress_bytes,
                    "origin_bytes": p.origin_bytes,
                    "cache_served_bytes": p.cache_served_bytes,
                    "transfer_bytes": p.transfer_bytes,
                    "amplification": p.amplification,
                    "offload_ratio": p.offload_ratio,
                    "conversions": p.conversions,
                    "tier_hits": p.tier_hits,
                    "misses": p.misses,
                    "h2_mean_plt_ms": p.h2_mean_plt_ms,
                    "h3_mean_plt_ms": p.h3_mean_plt_ms,
                    "paired_visits": p.paired_visits,
                }
                for p in points
            },
            "amplification_exceeds_unity": exceeds,
            "amplification_monotone": monotone,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
