"""Fig. 7 — reused connections and their effect on PLT reduction."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "fig7"
TITLE = "Reused connections vs PLT reduction (paper Fig. 7)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    reuse = study.fig7a()
    lines = ["  (a)+(b) reused connections per group (H2 vs H3):"]
    lines += format_table(
        ("group", "H2 reused", "H3 reused", "difference"),
        [
            (g.label, fmt(g.mean_reused_h2), fmt(g.mean_reused_h3), fmt(g.mean_difference, 2))
            for g in reuse
        ],
    )
    bins = study.fig7c()
    lines.append("  (c) PLT reduction vs reused-connection difference:")
    lines += format_table(
        ("difference", "pages", "PLT reduction (ms)"),
        [
            (f"[{b.difference_low}, {b.difference_high}]", b.n_pages,
             fmt(b.mean_plt_reduction_ms))
            for b in bins
        ],
    )
    lines.append(
        "  (paper: H2 reuses more than H3, gap widest in High group; "
        "reduction shrinks as the reuse difference grows)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "reuse_by_group": {
                g.label: (g.mean_reused_h2, g.mean_reused_h3) for g in reuse
            },
            "difference_by_group": {g.label: g.mean_difference for g in reuse},
            "reduction_by_difference": [
                (b.center, b.mean_plt_reduction_ms, b.n_pages) for b in bins
            ],
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
