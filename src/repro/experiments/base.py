"""The unified experiment API: spec, context, result, rendering.

Every table/figure driver is described by one :class:`ExperimentSpec`
(name, title, default params, ``run`` callable).  A driver's ``run``
takes an :class:`ExperimentContext` — the study plus the merged
parameter mapping — and returns an :class:`ExperimentResult`.  The
registry holds specs, and the CLI dispatches exclusively through
:meth:`ExperimentSpec.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.study import H3CdnStudy


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``lines`` is the human-readable rendering (what the CLI prints);
    ``data`` holds the raw values so tests and EXPERIMENTS.md tooling
    can assert on them without re-parsing text.
    """

    experiment_id: str
    title: str
    lines: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines])


@dataclass(frozen=True)
class ExperimentContext:
    """Everything a driver's ``run`` gets to see.

    ``params`` is the spec's defaults merged with any per-invocation
    overrides; :meth:`param` is the lookup drivers should use so that
    an absent key falls back explicitly rather than raising.
    """

    study: "H3CdnStudy"
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described: the registry's unit of record."""

    name: str
    title: str
    run: Callable[[ExperimentContext], ExperimentResult]
    #: Default parameters, overridable per invocation via ``execute``.
    params: Mapping[str, Any] = field(default_factory=dict)

    def execute(self, study: "H3CdnStudy", **overrides: Any) -> ExperimentResult:
        """Run this experiment against ``study``.

        ``overrides`` shadow the spec's default ``params`` key-by-key.
        """
        merged = {**self.params, **overrides}
        return self.run(ExperimentContext(study=study, params=merged))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], indent: str = "  "
) -> list[str]:
    """Render an ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = indent + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append(indent + "  ".join("-" * width for width in widths))
    return lines


def fmt(value: float, digits: int = 1) -> str:
    """Uniform float formatting for tables."""
    return f"{value:.{digits}f}"


def pct(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
