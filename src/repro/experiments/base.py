"""Shared result type and plain-text rendering for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``lines`` is the human-readable rendering (what the CLI prints);
    ``data`` holds the raw values so tests and EXPERIMENTS.md tooling
    can assert on them without re-parsing text.
    """

    experiment_id: str
    title: str
    lines: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines])


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], indent: str = "  "
) -> list[str]:
    """Render an ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = indent + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append(indent + "  ".join("-" * width for width in widths))
    return lines


def fmt(value: float, digits: int = 1) -> str:
    """Uniform float formatting for tables."""
    return f"{value:.{digits}f}"


def pct(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
