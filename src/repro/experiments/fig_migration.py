"""Migration sweep — QUIC migration vs TCP reconnect across topologies.

Not a figure from the paper: this is the testbed extension the proxy
and migration subsystems enable.  It crosses path topology (direct,
CONNECT tunnel, MASQUE relay) with a mid-visit client address change
and shows (a) QUIC connections migrating where TCP must reconnect,
(b) the CONNECT tunnel erasing that edge entirely — its TCP
termination downgrades the H3 lane to H2, so both lanes reconnect —
and (c) the MASQUE relay preserving it end-to-end.
"""

from __future__ import annotations

from repro.core.migration import (
    tunnel_downgrades_h3,
    tunnel_erases_migration_edge,
)
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig-migration"
TITLE = "QUIC migration vs TCP reconnect across proxy topologies"


def run(ctx: ExperimentContext) -> ExperimentResult:
    points = ctx.study.fig_migration(
        ctx.param("topologies"), ctx.param("fault_kinds")
    )
    rows = [
        (
            p.topology,
            p.fault,
            fmt(p.h2_mean_plt_ms),
            fmt(p.h3_mean_plt_ms),
            fmt(p.mean_plt_reduction_ms),
            p.quic_migrations,
            p.migration_reconnects,
            p.proxy_h3_downgrades,
            pct(p.h3_share),
            p.paired_visits,
        )
        for p in points
    ]
    lines = format_table(
        (
            "topology",
            "fault",
            "H2 PLT (ms)",
            "H3 PLT (ms)",
            "reduction (ms)",
            "migrated",
            "reconnected",
            "downgraded",
            "H3 share",
            "pairs",
        ),
        rows,
    )
    erased = tunnel_erases_migration_edge(points)
    downgraded = tunnel_downgrades_h3(points)
    lines.append(
        f"  connect-tunnel erases the migration edge: {erased}; "
        f"connect-tunnel downgrades all H3: {downgraded}"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "cells": {
                f"{p.topology}/{p.fault}": {
                    "h2_mean_plt_ms": p.h2_mean_plt_ms,
                    "h3_mean_plt_ms": p.h3_mean_plt_ms,
                    "mean_plt_reduction_ms": p.mean_plt_reduction_ms,
                    "quic_migrations": p.quic_migrations,
                    "migration_reconnects": p.migration_reconnects,
                    "proxy_h3_downgrades": p.proxy_h3_downgrades,
                    "h3_share": p.h3_share,
                    "degraded_visits": p.degraded_visits,
                    "failed_visits": p.failed_visits,
                    "paired_visits": p.paired_visits,
                }
                for p in points
            },
            "tunnel_erases_migration_edge": erased,
            "tunnel_downgrades_h3": downgraded,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
