"""Fallback sweep — H3's edge under rising UDP blackholing.

Not a figure from the paper: this is the testbed extension the fault
subsystem enables.  It sweeps the fraction of hosts whose UDP/443 is
dropped and shows (a) the H3→H2 fallback rate rising monotonically and
(b) the mean PLT reduction shrinking and finally inverting — a blocked
H3 attempt pays its connect timeout and *then* runs over TCP, so it is
strictly worse than native H2.
"""

from __future__ import annotations

from repro.core.fallback import edge_inverts, fallback_rates_are_monotone
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig-fallback"
TITLE = "H3 fallback rate and PLT edge vs UDP-blackhole intensity"


def run(ctx: ExperimentContext) -> ExperimentResult:
    points = ctx.study.fig_fallback(ctx.param("intensities"))
    rows = [
        (
            pct(p.intensity, 0),
            pct(p.fallback_rate),
            fmt(p.mean_plt_reduction_ms),
            p.degraded_visits,
            p.failed_visits,
            p.paired_visits,
        )
        for p in points
    ]
    lines = format_table(
        (
            "blackholed hosts",
            "fallback rate",
            "mean PLT reduction (ms)",
            "degraded",
            "failed",
            "pairs",
        ),
        rows,
    )
    monotone = fallback_rates_are_monotone(points)
    inverts = edge_inverts(points)
    lines.append(
        f"  fallback rate monotone in intensity: {monotone}; "
        f"H3 edge inverts at full blackholing: {inverts}"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "fallback_rates": {p.intensity: p.fallback_rate for p in points},
            "plt_reduction_by_intensity": {
                p.intensity: p.mean_plt_reduction_ms for p in points
            },
            "degraded_visits": {p.intensity: p.degraded_visits for p in points},
            "failed_visits": {p.intensity: p.failed_visits for p in points},
            "monotone_fallback": monotone,
            "edge_inverts": inverts,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
