"""Fig. 8 — shared providers and connection resumption in consecutive visits."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "fig8"
TITLE = "Shared providers, resumption and PLT under consecutive visits (Fig. 8)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    reductions = study.fig8a()
    resumed = study.fig8b()
    rows = [
        (k, fmt(reductions.get(k, float("nan"))), fmt(resumed.get(k, float("nan"))))
        for k in sorted(set(reductions) | set(resumed))
    ]
    lines = format_table(
        ("#providers", "PLT reduction (ms)", "resumed connections"), rows
    )
    lines.append(
        "  (paper: both PLT reduction and resumed connections grow with the "
        "number of used providers)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "plt_reduction_by_providers": reductions,
            "resumed_by_providers": resumed,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
