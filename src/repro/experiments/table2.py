"""Table II — requests and share of total by HTTP version × CDN/non-CDN."""

from __future__ import annotations

from repro.core.adoption import ROW_ALL, ROW_H2, ROW_H3, ROW_OTHERS
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "table2"
TITLE = "Requests and percentage of total by HTTP version (paper Table II)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    table = study.table2()
    rows = []
    for row_label in (ROW_H2, ROW_H3, ROW_OTHERS, ROW_ALL):
        cdn = table.cell(row_label, "cdn")
        non_cdn = table.cell(row_label, "non_cdn")
        total = table.cell(row_label, "all")
        rows.append(
            (
                row_label,
                cdn.requests, fmt(cdn.percent), non_cdn.requests,
                fmt(non_cdn.percent), total.requests, fmt(total.percent),
            )
        )
    lines = format_table(
        ("Protocol", "CDN #", "CDN %", "NonCDN #", "NonCDN %", "All #", "All %"),
        rows,
    )
    lines.append(
        f"  (paper: CDN 67.0% of requests; H3 32.6% overall; "
        f"{table.h3_cdn_share_of_h3 * 100:.1f}% of H3 requests are CDN "
        f"vs paper's 78.8%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "total_requests": table.total_requests,
            "cdn_share": table.cdn_share,
            "h3_share": table.h3_share,
            "h3_cdn_share_of_h3": table.h3_cdn_share_of_h3,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
