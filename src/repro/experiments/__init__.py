"""Experiment drivers: one module per table/figure in the paper.

Each driver exposes an :class:`~repro.experiments.base.ExperimentSpec`
named ``SPEC`` whose ``run(ctx) -> ExperimentResult`` regenerates the
corresponding table or figure's rows/series from a (possibly
scaled-down) :class:`~repro.core.study.H3CdnStudy`.  The registry maps
experiment ids (``table1`` … ``fig9``, plus the ``fig-fallback``
extension) to specs, and the CLI (``repro-h3cdn``) dispatches through
:meth:`ExperimentSpec.execute`.
"""

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    get_spec,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "ExperimentSpec",
    "format_table",
    "get_spec",
    "run_all",
    "run_experiment",
]
