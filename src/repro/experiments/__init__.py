"""Experiment drivers: one module per table/figure in the paper.

Each driver exposes ``run(study) -> ExperimentResult`` that regenerates
the corresponding table or figure's rows/series from a (possibly
scaled-down) :class:`~repro.core.study.H3CdnStudy`.  The registry maps
experiment ids (``table1`` … ``fig9``) to drivers, and the CLI
(``repro-h3cdn``) runs any subset from the command line.
"""

from repro.experiments.base import ExperimentResult, format_table
from repro.experiments.registry import EXPERIMENTS, run_experiment, run_all

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "run_all",
    "run_experiment",
]
