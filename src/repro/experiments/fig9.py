"""Fig. 9 — PLT reduction vs CDN resources under different loss rates."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "fig9"
TITLE = "PLT reduction vs #CDN resources under loss (paper Fig. 9)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    series = study.fig9()
    rows = [
        (
            f"{s.loss_rate * 100:g}%",
            len(s.points),
            fmt(s.slope, 2),
            fmt(s.fit.intercept, 1),
            fmt(s.robust_fit.slope, 2),
        )
        for s in series
    ]
    lines = format_table(
        ("loss rate", "points", "slope (ms/res)", "intercept", "binned-median slope"),
        rows,
    )
    ordered = sorted(series, key=lambda s: s.loss_rate)
    verdict = all(a.slope < b.slope for a, b in zip(ordered, ordered[1:]))
    lines.append(
        f"  slopes strictly ordered by loss rate: {verdict} "
        "(paper: 0.80 < 1.42 < 2.15)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "slopes": {s.loss_rate: s.slope for s in series},
            "ordered": verdict,
            "points": {s.loss_rate: list(s.points) for s in series},
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
