"""Fig. 4 — shared giant providers across webpages.

(a) probability of each CDN provider appearing on a page;
(b) number and percentage of pages using k providers.
"""

from __future__ import annotations

from repro.core.characteristics import multi_provider_share
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig4"
TITLE = "Shared giant providers across webpages (paper Fig. 4)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    appearance = study.fig4a()
    by_count = study.fig4b()
    total_pages = sum(by_count.values())

    lines = ["  (a) provider appearance probability:"]
    lines += format_table(
        ("provider", "P(appears)"),
        [(name, pct(p)) for name, p in appearance.items()],
    )
    lines.append("  (b) pages by number of providers used:")
    lines += format_table(
        ("#providers", "pages", "share"),
        [(k, n, pct(n / total_pages)) for k, n in by_count.items()],
    )
    share_2plus = multi_provider_share(study.universe.pages)
    lines.append(
        f"  (paper: 94.8% of pages use >= 2 providers; measured {share_2plus * 100:.1f}%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "appearance_probability": appearance,
            "pages_by_provider_count": by_count,
            "share_2plus": share_2plus,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
