"""Fig. 2 — H3 adoption by CDN provider and market share."""

from __future__ import annotations

from repro.core.adoption import h3_share_by_provider
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig2"
TITLE = "H3 adoption by CDN provider and market share (paper Fig. 2)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    rows_data = study.fig2()
    total_cdn = sum(r.total for r in rows_data)
    h3_shares = h3_share_by_provider(rows_data)
    rows = [
        (
            r.provider,
            r.h3_requests,
            r.h2_requests,
            pct(r.h3_fraction),
            pct(r.total / total_cdn),
            pct(h3_shares[r.provider]),
        )
        for r in rows_data
    ]
    lines = format_table(
        ("Provider", "H3 req", "H2 req", "own H3%", "mkt share", "share of H3"),
        rows,
    )
    lines.append(
        "  (paper: Google ~50% and Cloudflare 45.2% of H3-enabled CDN requests;"
        " Google almost fully H3)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "h3_share_by_provider": h3_shares,
            "market_share": {r.provider: r.total / total_cdn for r in rows_data},
            "own_h3_fraction": {r.provider: r.h3_fraction for r in rows_data},
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
