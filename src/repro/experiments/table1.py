"""Table I — release year of H3 support per CDN and performance report."""

from __future__ import annotations

from repro.cdn.provider import default_providers
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
)

EXPERIMENT_ID = "table1"
TITLE = "Release year of H3 support in various CDNs and performance reports"


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Render Table I from the provider registry (static metadata)."""
    providers = [p for p in default_providers() if p.h3_release_year is not None]
    providers.sort(key=lambda p: (p.h3_release_year, p.name))
    rows = [
        (p.display_name, p.h3_release_year, p.performance_report)
        for p in providers
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=format_table(("Provider", "Release Year", "Performance Report"), rows),
        data={
            "release_years": {p.name: p.h3_release_year for p in providers},
            "reports": {p.name: p.performance_report for p in providers},
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
