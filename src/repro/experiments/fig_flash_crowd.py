"""Flash-crowd comparison — a tier hierarchy absorbs popularity skew.

Not a figure from the paper: the capacity-planning scenario the cache
hierarchy enables.  A popularity-skewed burst hits a deliberately small
edge cache.  Flat, the edge thrashes and every miss goes to the origin;
backed by a large regional tier, the same edge refills from one tier
over (25 ms instead of 60 ms) and the origin barely notices.  The
structural claims: the hierarchy cell ships fewer origin bytes, loads
faster in both modes, and records actual regional-tier hits.
"""

from __future__ import annotations

from repro.core.cdn_scenarios import hierarchy_absorbs_flash_crowd
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig-flash-crowd"
TITLE = "Flat cache vs tier hierarchy under a flash crowd"


def run(ctx: ExperimentContext) -> ExperimentResult:
    points = ctx.study.fig_flash_crowd()
    rows = [
        (
            p.label,
            pct(p.offload_ratio),
            p.origin_bytes,
            p.misses,
            ", ".join(f"{t}={n}" for t, n in sorted(p.tier_hits.items()))
            or "-",
            fmt(p.h2_mean_plt_ms),
            fmt(p.h3_mean_plt_ms),
            p.paired_visits,
        )
        for p in points
    ]
    lines = format_table(
        (
            "topology",
            "offload",
            "origin (B)",
            "misses",
            "tier hits",
            "H2 PLT (ms)",
            "H3 PLT (ms)",
            "pairs",
        ),
        rows,
    )
    absorbed = hierarchy_absorbs_flash_crowd(points)
    lines.append(f"  hierarchy absorbs the flash crowd: {absorbed}")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "cells": {
                p.label: {
                    "offload_ratio": p.offload_ratio,
                    "egress_bytes": p.egress_bytes,
                    "origin_bytes": p.origin_bytes,
                    "misses": p.misses,
                    "tier_hits": p.tier_hits,
                    "h2_mean_plt_ms": p.h2_mean_plt_ms,
                    "h3_mean_plt_ms": p.h3_mean_plt_ms,
                    "paired_visits": p.paired_visits,
                }
                for p in points
            },
            "hierarchy_absorbs_flash_crowd": absorbed,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
