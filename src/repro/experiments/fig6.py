"""Fig. 6 — PLT reduction by H3-adoption group + phase-reduction CDFs."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "fig6"
TITLE = "PLT reduction per group and phase reductions (paper Fig. 6)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    groups = study.fig6a()
    lines = ["  (a) PLT reduction by H3-enabled-resource quartile group:"]
    lines += format_table(
        ("group", "pages", "mean H3 entries", "PLT reduction (ms)"),
        [
            (g.label, g.n_pages, fmt(g.mean_h3_entries), fmt(g.mean_plt_reduction_ms))
            for g in groups
        ],
    )
    dists = study.fig6b()
    lines.append("  (b) per-page phase reduction distributions (ms):")
    lines += format_table(
        ("phase", "median", "p25", "p75"),
        [
            (
                phase,
                fmt(dist.median, 2),
                fmt(dist.quantile(0.25), 2),
                fmt(dist.quantile(0.75), 2),
            )
            for phase, dist in dists.items()
        ],
    )
    lines.append(
        "  (paper: all groups positive, interior maximum, High lowest among "
        "upper groups; medians: connection > 0, wait < 0, receive ~ 0)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "group_reductions": {g.label: g.mean_plt_reduction_ms for g in groups},
            "phase_medians": {phase: dist.median for phase, dist in dists.items()},
            "phase_cdf_series": {
                phase: dist.cdf_series(points=40) for phase, dist in dists.items()
            },
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
