"""Fig. 5 — CCDF of per-page CDN resource counts for four giants."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig5"
TITLE = "CCDF of per-page resources from Amazon/Cloudflare/Google/Fastly (Fig. 5)"

PROVIDERS = ("amazon", "cloudflare", "google", "fastly")
PROBE_COUNTS = (1, 5, 10, 20, 50)


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    ccdfs = study.fig5(PROVIDERS)
    rows = []
    for provider in PROVIDERS:
        dist = ccdfs[provider]
        rows.append(
            (provider, *(pct(dist.ccdf(float(c))) for c in PROBE_COUNTS))
        )
    lines = format_table(
        ("provider", *(f">{c} res" for c in PROBE_COUNTS)), rows
    )
    lines.append(
        "  (paper: ~50% of pages using Cloudflare/Google carry >10 of that "
        "provider's resources; measured "
        + ", ".join(
            f"{p}={ccdfs[p].ccdf(10.0) * 100:.0f}%" for p in ("cloudflare", "google")
        )
        + ")"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "ccdf_over_10": {p: ccdfs[p].ccdf(10.0) for p in PROVIDERS},
            "medians": {p: ccdfs[p].median for p in PROVIDERS},
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
