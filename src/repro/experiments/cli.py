"""Command-line entry point: ``repro-h3cdn``.

Examples
--------
Run everything at a quick scale::

    repro-h3cdn --scale quick

Reproduce the paper's Table II and Fig. 9 at full scale::

    repro-h3cdn --scale full --experiments table2,fig9
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

from repro.cdn.hierarchy import HIERARCHY_PRESETS
from repro.core.study import H3CdnStudy, StudyConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.faults import FAULT_PROFILES
from repro.netsim.proxy import PROXY_MODELS
from repro.obs import build_run_manifest, write_run_manifest
from repro.scenario import Scenario

#: Predefined scales: (sites, campaign pages, consecutive pages,
#: loss-sweep pages, loss repetitions).
SCALES = {
    "smoke": (12, 12, 12, 6, 1),
    "quick": (60, 60, 60, 25, 1),
    "medium": (150, 150, 150, 60, 2),
    "full": (325, None, None, 120, 3),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-h3cdn",
        description=(
            "Reproduce the tables and figures of 'Dissecting the Applicability "
            "of HTTP/3 in Content Delivery Networks' (ICDCS 2024) on a "
            "simulated web/CDN universe."
        ),
    )
    parser.add_argument(
        "--experiments",
        default="all",
        help="comma-separated experiment ids (default: all): "
        + ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="predefined study scale (default: quick)",
    )
    parser.add_argument("--sites", type=int, help="override number of sites")
    parser.add_argument("--seed", type=int, default=7, help="study seed (default 7)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for campaigns and the loss sweep "
        "(default 1 = in-process; results are identical for any value)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render ASCII charts of each figure's series",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write every experiment's raw data (plus the run manifest) "
        "as machine-readable JSON to PATH",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="enable qlog-style connection tracing and write trace.jsonl "
        "plus a run.json manifest into DIR",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="collect the campaign counter registry and print merged totals",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        metavar="MS",
        help="sample transport/link metrics (cwnd, in-flight, sRTT, "
        "goodput, queue depth) every MS of simulated time; with "
        "--trace-dir the samples land in metrics.jsonl "
        "(results are bit-identical with or without sampling)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="record hierarchical visit/phase/transfer spans; with "
        "--trace-dir they land in spans.jsonl (Perfetto-exportable "
        "via python -m repro.obs.export)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile event-loop callbacks (wall-clock) and record the "
        "top entries in the run manifest",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print live progress heartbeats to stderr while campaigns "
        "run and record the summary in the run manifest",
    )
    parser.add_argument(
        "--faults",
        choices=sorted(FAULT_PROFILES),
        help="apply a named fault profile to every campaign "
        "(default: no faults — results are bit-identical to fault-free builds)",
    )
    parser.add_argument(
        "--proxy",
        choices=PROXY_MODELS,
        help="route every campaign path through a proxy hop: "
        "connect-tunnel (TCP-terminating CONNECT proxy; H3 downgrades "
        "to H2 at the proxy) or masque-relay (UDP relay; QUIC passes "
        "through end-to-end)",
    )
    parser.add_argument(
        "--cache-tiers",
        choices=sorted(HIERARCHY_PRESETS),
        help="layer every edge's cache into a tier chain "
        "(edge-regional or edge-metro-regional); default is the flat "
        "per-edge LRU",
    )
    parser.add_argument(
        "--compression",
        type=float,
        metavar="RATIO",
        help="enable compression negotiation on every edge; RATIO is "
        "the fraction of clients demanding identity encoding "
        "(0 = everyone accepts Brotli, 1 = the full Lin et al. "
        "amplification attack)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="run every visit under the repro.check invariant checker; "
        "the first violation aborts the run (results are identical "
        "with or without --strict)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="attach a persistent result store at DIR: visits already "
        "stored are replayed bit-identically instead of re-simulated, "
        "fresh visits are journaled as they complete "
        "(inspect with `python -m repro.store`)",
    )
    parser.add_argument(
        "--run",
        metavar="NAME",
        help="base run name recorded in the store (default: the scale "
        "name); each experiment stage appends its own suffix",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --store: continue an interrupted run of the same "
        "name, executing only the visits its journal is missing",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore --store (escape hatch for scripts that always "
        "pass one); results are bit-identical either way",
    )
    parser.add_argument(
        "--stream-pages",
        type=int,
        metavar="N",
        help="instead of the experiment suite, run a constant-memory "
        "streaming campaign over the first N pages of a lazily "
        "generated universe (pages materialize on demand; outcomes "
        "fold into a summary instead of accumulating) and print the "
        "folded report; honours --sites/--seed/--workers/--store "
        "(memory stays flat in N — try N far beyond --sites' default)",
    )
    return parser


def render_plots(result) -> list[str]:
    """ASCII charts for the figure series a result carries (if any).

    Degrades gracefully: a series key holding empty data (possible at
    tiny scales where e.g. no page uses 3+ providers) is skipped with a
    note instead of raising from the plotting primitives.
    """
    from repro.analysis.textplot import bar_chart, line_chart

    data = result.data
    lines: list[str] = []

    def skipped(key: str) -> list[str]:
        return [f"  [plot skipped: {key} is empty]"]

    if "ccdf_series" in data:
        if data["ccdf_series"]:
            lines += line_chart({"CCDF": data["ccdf_series"]},
                                x_label="CDN share", y_label="P(X>x)")
        else:
            lines += skipped("ccdf_series")
    if "phase_cdf_series" in data:
        populated = {k: v for k, v in data["phase_cdf_series"].items() if v}
        if populated:
            lines += line_chart(populated,
                                x_label="reduction (ms)", y_label="CDF")
        else:
            lines += skipped("phase_cdf_series")
    if "group_reductions" in data:
        if data["group_reductions"]:
            lines += bar_chart(data["group_reductions"], unit="ms")
        else:
            lines += skipped("group_reductions")
    if "plt_reduction_by_providers" in data:
        if data["plt_reduction_by_providers"]:
            lines += bar_chart(
                {f"{k} providers": v
                 for k, v in data["plt_reduction_by_providers"].items()},
                unit="ms",
            )
        else:
            lines += skipped("plt_reduction_by_providers")
        if data.get("resumed_by_providers"):
            lines += bar_chart(
                {f"{k} providers": v
                 for k, v in data["resumed_by_providers"].items()},
                unit=" resumed",
            )
        else:
            lines += skipped("resumed_by_providers")
    if "points" in data and isinstance(data["points"], dict):
        series = {
            f"{rate:.1%} loss": points
            for rate, points in data["points"].items()
            if points
        }
        if series:
            lines += line_chart(series, x_label="#CDN resources",
                                y_label="PLT reduction (ms)")
        else:
            lines += skipped("points")
    return lines


def make_study(args: argparse.Namespace, store=None) -> H3CdnStudy:
    sites, campaign_pages, consecutive_pages, loss_pages, loss_reps = SCALES[args.scale]
    if args.sites is not None:
        sites = args.sites
    trace = bool(getattr(args, "trace_dir", None))
    collect = trace or bool(getattr(args, "counters", False) or
                            getattr(args, "json", None))
    faults_name = getattr(args, "faults", None)
    scenario = Scenario(name="paper-default")
    if faults_name:
        scenario = scenario.with_faults(faults_name)
    if getattr(args, "proxy", None):
        scenario = scenario.with_proxy(args.proxy)
    if getattr(args, "cache_tiers", None):
        scenario = scenario.with_cache_tiers(args.cache_tiers)
    if getattr(args, "compression", None) is not None:
        scenario = scenario.with_compression(args.compression)
    if getattr(args, "strict", False):
        scenario = scenario.with_strict()
    return H3CdnStudy(
        StudyConfig(
            n_sites=sites,
            seed=args.seed,
            campaign_config=scenario.campaign_config(
                collect_counters=collect,
                trace=trace,
                metrics_interval_ms=getattr(args, "metrics_interval", None),
                spans=bool(getattr(args, "spans", False)),
                profile_loop=bool(getattr(args, "profile", False)),
                progress=bool(getattr(args, "progress", False)),
            ),
            max_campaign_pages=campaign_pages,
            max_consecutive_pages=consecutive_pages,
            max_loss_sweep_pages=loss_pages,
            loss_sweep_repetitions=loss_reps,
            workers=args.workers,
            store=store,
            run_name=getattr(args, "run", None) or args.scale,
            resume=bool(getattr(args, "resume", False)),
        )
    )


def run_streaming(args: argparse.Namespace) -> int:
    """``--stream-pages N``: a summary-only campaign over a lazy universe."""
    from repro.measurement.executor import CampaignPlan, execute
    from repro.measurement.report import campaign_report
    from repro.scenario import Scenario
    from repro.web.topsites import GeneratorConfig, lazy_universe

    n_pages = args.stream_pages
    sites = args.sites if args.sites is not None else max(
        n_pages, SCALES[args.scale][0]
    )
    if n_pages > sites:
        print(
            f"--stream-pages {n_pages} exceeds the universe's {sites} sites",
            file=sys.stderr,
        )
        return 2
    scenario = Scenario(name="paper-default")
    if getattr(args, "faults", None):
        scenario = scenario.with_faults(args.faults)
    if getattr(args, "proxy", None):
        scenario = scenario.with_proxy(args.proxy)
    if getattr(args, "cache_tiers", None):
        scenario = scenario.with_cache_tiers(args.cache_tiers)
    if getattr(args, "compression", None) is not None:
        scenario = scenario.with_compression(args.compression)
    if getattr(args, "strict", False):
        scenario = scenario.with_strict()
    config = scenario.campaign_config(
        seed=args.seed,
        progress=bool(getattr(args, "progress", False)),
    )
    universe = lazy_universe(GeneratorConfig(n_sites=sites), seed=args.seed)
    store = None
    if args.store and not args.no_store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    print(
        f"# repro-h3cdn streaming pages={n_pages} sites={sites} "
        f"seed={args.seed} workers={args.workers}"
        + (f" store={args.store}" if store else "")
    )
    start = time.time()
    result = execute(CampaignPlan(
        universe=universe,
        sim=config,
        page_count=n_pages,
        workers=args.workers,
        summary_only=True,
        store=store,
        run_name=(getattr(args, "run", None) or f"stream-{n_pages}")
        if store
        else None,
        resume=bool(getattr(args, "resume", False)),
    ))
    wall_clock = time.time() - start
    print()
    print(campaign_report(result).render())
    summary = result.summary
    print(
        f"  fallback: {summary.fallback_fell_back}/{summary.fallback_eligible} "
        f"H3-eligible requests fell back ({summary.fallback_rate:.1%})"
    )
    if result.exec_stats:
        stats = result.exec_stats
        print(
            f"  executor: {stats['mode']} mode, "
            f"{stats['units_submitted']} units, "
            f"in-flight peak {stats['max_in_flight_seen']}, "
            f"reorder backlog peak {stats['max_ready_backlog']}"
        )
    print(f"  [{wall_clock:.1f}s]")
    if store is not None:
        store.close()
    return 0


def _jsonable(value):
    """Best-effort conversion of experiment data to JSON-safe values."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(v) for v in value), key=repr)
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return _jsonable(to_dict())
    if dataclasses.is_dataclass(value):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id, spec in EXPERIMENTS.items():
            print(f"{experiment_id:12s} {spec.title}")
        return 0
    if args.stream_pages is not None:
        return run_streaming(args)
    wanted = (
        list(EXPERIMENTS)
        if args.experiments == "all"
        else [item.strip() for item in args.experiments.split(",") if item.strip()]
    )
    unknown = [item for item in wanted if item not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    store = None
    if args.store and not args.no_store:
        from repro.store import ResultStore

        store = ResultStore(args.store)
    study = make_study(args, store=store)
    print(
        f"# repro-h3cdn scale={args.scale} sites={study.config.n_sites} "
        f"seed={args.seed}"
        + (f" store={args.store} run={study.config.run_name}" if store else "")
    )
    experiment_records: list[dict] = []
    results: dict[str, object] = {}
    for experiment_id in wanted:
        start = time.time()
        result = run_experiment(experiment_id, study)
        wall_clock = time.time() - start
        experiment_records.append(
            {
                "id": experiment_id,
                "title": result.title,
                "wall_clock_s": round(wall_clock, 3),
            }
        )
        results[experiment_id] = result
        print()
        print(result.render())
        if args.plot:
            for line in render_plots(result):
                print(line)
        print(f"  [{wall_clock:.1f}s]")

    # -- observability exports ----------------------------------------
    campaign = study.campaign_result_or_none()
    totals = campaign.counter_totals() if campaign is not None else None
    counters_dict = totals.to_dict() if totals else None

    classifiers_section = None
    if campaign is not None:
        # Classifier realism check: how often the header-based
        # (LocEdge-style) and dictionary-based (detect_website_cdn-
        # style) classifiers disagree over this campaign's HAR entries.
        from repro.cdn.classifier import classifier_disagreement

        classifiers_section = classifier_disagreement(
            campaign.entries("h3-enabled")
        )

    store_section = None
    if store is not None:
        stats = store.stats
        print()
        print(
            f"== store: {stats.hits} hits / {stats.misses} misses "
            f"({stats.hit_rate:.0%} hit rate), {stats.resumed} resumed, "
            f"{stats.writes} written =="
        )
        store_section = {
            "path": args.store,
            "run_name": study.config.run_name,
            "resume": bool(args.resume),
            "stats": stats.to_dict(),
            "summary": store.stats_summary(),
        }
    if args.counters:
        print()
        print("== counters: merged campaign totals ==")
        if totals:
            for line in totals.render():
                print(line)
        else:
            print("  (no campaign counters collected — no experiment "
                  "materialized the paired campaign)")

    trace_files: list[str] = []
    metrics_section = None
    spans_section = None
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        trace_path = os.path.join(args.trace_dir, "trace.jsonl")
        n_events = 0
        with open(trace_path, "w") as handle:
            if campaign is not None:
                for event in campaign.trace_events():
                    handle.write(json.dumps(event))
                    handle.write("\n")
                    n_events += 1
        trace_files.append("trace.jsonl")
        print(f"\nwrote {n_events} trace events to {trace_path}")
        if args.metrics_interval is not None:
            metrics_path = os.path.join(args.trace_dir, "metrics.jsonl")
            n_samples = 0
            with open(metrics_path, "w") as handle:
                if campaign is not None:
                    for record in campaign.metrics_events():
                        handle.write(json.dumps(record))
                        handle.write("\n")
                        n_samples += 1
            trace_files.append("metrics.jsonl")
            metrics_section = {
                "interval_ms": args.metrics_interval,
                "records": n_samples,
            }
            print(f"wrote {n_samples} metrics samples to {metrics_path}")
        if args.spans:
            spans_path = os.path.join(args.trace_dir, "spans.jsonl")
            n_spans = 0
            with open(spans_path, "w") as handle:
                # One synthetic campaign root span: sim clocks restart
                # per visit, so its extent is wall-clock only.
                root = {
                    "id": 1,
                    "parent": None,
                    "kind": "campaign",
                    "name": f"{args.scale}:{study.config.run_name}",
                    "t0": 0.0,
                    "t1": 0.0,
                    "wall_ms": round(
                        1000.0 * sum(
                            e.get("wall_clock_s", 0.0)
                            for e in experiment_records
                        ),
                        3,
                    ),
                }
                handle.write(json.dumps(root))
                handle.write("\n")
                n_spans += 1
                if campaign is not None:
                    for record in campaign.span_records():
                        handle.write(json.dumps(record))
                        handle.write("\n")
                        n_spans += 1
            trace_files.append("spans.jsonl")
            spans_section = {"records": n_spans}
            print(f"wrote {n_spans} spans to {spans_path}")

    progress_section = (
        dict(campaign.progress)
        if campaign is not None and campaign.progress is not None
        else None
    )
    profile_section = None
    if args.profile and campaign is not None and campaign.loop_profile:
        # Top callbacks by cumulative wall-clock (profile_stats order).
        profile_section = dict(list(campaign.loop_profile.items())[:25])
        print()
        print("== loop profile: top callbacks by cumulative wall-clock ==")
        for name, entry in list(campaign.loop_profile.items())[:10]:
            print(
                f"  {entry['total_ms']:10.1f} ms  {entry['count']:>9d}×  {name}"
            )

    if args.trace_dir or args.json:
        from repro.store.keys import campaign_config_hash

        manifest = build_run_manifest(
            invocation={
                "argv": list(argv) if argv is not None else sys.argv[1:],
                "scale": args.scale,
                "sites": study.config.n_sites,
                "seed": args.seed,
                "workers": args.workers,
                "experiments": wanted,
                "counters": bool(args.counters),
                "trace": bool(args.trace_dir),
                "faults": args.faults,
                "proxy": args.proxy,
                "cache_tiers": args.cache_tiers,
                "compression": args.compression,
                "strict": bool(args.strict),
                "metrics_interval_ms": args.metrics_interval,
                "spans": bool(args.spans),
                "profile": bool(args.profile),
                "progress": bool(args.progress),
            },
            experiments=experiment_records,
            counters=counters_dict,
            trace_files=trace_files,
            fallback_sweep=(
                _jsonable(results["fig-fallback"].data)
                if "fig-fallback" in results
                else None
            ),
            migration_sweep=(
                _jsonable(results["fig-migration"].data)
                if "fig-migration" in results
                else None
            ),
            config_hash=campaign_config_hash(study.config.campaign_config),
            store=store_section,
            classifiers=classifiers_section,
            metrics=metrics_section,
            spans=spans_section,
            progress=progress_section,
            loop_profile=profile_section,
        )
        if args.trace_dir:
            manifest_path = os.path.join(args.trace_dir, "run.json")
            write_run_manifest(manifest_path, manifest)
            print(f"wrote run manifest to {manifest_path}")
        if args.json:
            payload = {
                "format": "repro-h3cdn-results/1",
                "manifest": manifest,
                "experiments": {
                    experiment_id: {
                        "title": result.title,
                        "data": _jsonable(result.data),
                    }
                    for experiment_id, result in results.items()
                },
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote results JSON to {args.json}")
    if store is not None:
        store.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
