"""Command-line entry point: ``repro-h3cdn``.

Examples
--------
Run everything at a quick scale::

    repro-h3cdn --scale quick

Reproduce the paper's Table II and Fig. 9 at full scale::

    repro-h3cdn --scale full --experiments table2,fig9
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.study import H3CdnStudy, StudyConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Predefined scales: (sites, campaign pages, consecutive pages,
#: loss-sweep pages, loss repetitions).
SCALES = {
    "smoke": (12, 12, 12, 6, 1),
    "quick": (60, 60, 60, 25, 1),
    "medium": (150, 150, 150, 60, 2),
    "full": (325, None, None, 120, 3),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-h3cdn",
        description=(
            "Reproduce the tables and figures of 'Dissecting the Applicability "
            "of HTTP/3 in Content Delivery Networks' (ICDCS 2024) on a "
            "simulated web/CDN universe."
        ),
    )
    parser.add_argument(
        "--experiments",
        default="all",
        help="comma-separated experiment ids (default: all): "
        + ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="predefined study scale (default: quick)",
    )
    parser.add_argument("--sites", type=int, help="override number of sites")
    parser.add_argument("--seed", type=int, default=7, help="study seed (default 7)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for campaigns and the loss sweep "
        "(default 1 = in-process; results are identical for any value)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render ASCII charts of each figure's series",
    )
    return parser


def render_plots(result) -> list[str]:
    """ASCII charts for the figure series a result carries (if any)."""
    from repro.analysis.textplot import bar_chart, line_chart

    data = result.data
    lines: list[str] = []
    if "ccdf_series" in data:
        lines += line_chart({"CCDF": data["ccdf_series"]},
                            x_label="CDN share", y_label="P(X>x)")
    if "phase_cdf_series" in data:
        lines += line_chart(data["phase_cdf_series"],
                            x_label="reduction (ms)", y_label="CDF")
    if "group_reductions" in data:
        lines += bar_chart(data["group_reductions"], unit="ms")
    if "plt_reduction_by_providers" in data:
        lines += bar_chart(
            {f"{k} providers": v for k, v in data["plt_reduction_by_providers"].items()},
            unit="ms",
        )
        lines += bar_chart(
            {f"{k} providers": v for k, v in data["resumed_by_providers"].items()},
            unit=" resumed",
        )
    if "points" in data and isinstance(data["points"], dict):
        series = {
            f"{rate:.1%} loss": points for rate, points in data["points"].items()
        }
        lines += line_chart(series, x_label="#CDN resources",
                            y_label="PLT reduction (ms)")
    return lines


def make_study(args: argparse.Namespace) -> H3CdnStudy:
    sites, campaign_pages, consecutive_pages, loss_pages, loss_reps = SCALES[args.scale]
    if args.sites is not None:
        sites = args.sites
    return H3CdnStudy(
        StudyConfig(
            n_sites=sites,
            seed=args.seed,
            max_campaign_pages=campaign_pages,
            max_consecutive_pages=consecutive_pages,
            max_loss_sweep_pages=loss_pages,
            loss_sweep_repetitions=loss_reps,
            workers=args.workers,
        )
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id, (title, __) in EXPERIMENTS.items():
            print(f"{experiment_id:8s} {title}")
        return 0
    wanted = (
        list(EXPERIMENTS)
        if args.experiments == "all"
        else [item.strip() for item in args.experiments.split(",") if item.strip()]
    )
    unknown = [item for item in wanted if item not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    study = make_study(args)
    print(
        f"# repro-h3cdn scale={args.scale} sites={study.config.n_sites} "
        f"seed={args.seed}"
    )
    for experiment_id in wanted:
        start = time.time()
        result = run_experiment(experiment_id, study)
        print()
        print(result.render())
        if args.plot:
            for line in render_plots(result):
                print(line)
        print(f"  [{time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
