"""Fig. 3 — CCDF of the percentage of CDN resources on each webpage."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig3"
TITLE = "CCDF of per-page CDN resource share (paper Fig. 3)"

#: x-axis probe points for the printed series.
PROBE_POINTS = (0.1, 0.25, 0.5, 0.75, 0.9)


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    dist = study.fig3()
    rows = [(pct(x, 0), pct(dist.ccdf(x))) for x in PROBE_POINTS]
    lines = format_table(("CDN share >", "fraction of pages"), rows)
    lines.append(
        f"  (paper: 75% of pages exceed 50% CDN resources; "
        f"measured {dist.ccdf(0.5) * 100:.1f}%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "ccdf_series": dist.ccdf_series(points=40),
            "ccdf_at_half": dist.ccdf(0.5),
            "median": dist.median,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
