"""Miss-storm sweep — origin offload collapse under tier squeeze.

Not a figure from the paper: a provider-side stress scenario on the
cache hierarchy.  Tier capacities shrink from the default preset
(everything fits) through a starved edge (the regional tier absorbs)
to a fully starved chain (requests fall through to the origin).  The
structural claims: origin offload collapses strictly level by level,
and mean PLT degrades tier by tier in both protocol modes as every
request pays more of the fetch-through chain.
"""

from __future__ import annotations

from repro.core.cdn_scenarios import (
    offload_collapses,
    plt_degrades_tier_by_tier,
)
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
    pct,
)

EXPERIMENT_ID = "fig-miss-storm"
TITLE = "Origin offload collapse under cache-tier squeeze"


def run(ctx: ExperimentContext) -> ExperimentResult:
    points = ctx.study.fig_miss_storm()
    rows = [
        (
            p.label,
            pct(p.offload_ratio),
            p.origin_bytes,
            p.misses,
            ", ".join(f"{t}={n}" for t, n in sorted(p.tier_hits.items()))
            or "-",
            fmt(p.h2_mean_plt_ms),
            fmt(p.h3_mean_plt_ms),
            p.paired_visits,
        )
        for p in points
    ]
    lines = format_table(
        (
            "level",
            "offload",
            "origin (B)",
            "misses",
            "tier hits",
            "H2 PLT (ms)",
            "H3 PLT (ms)",
            "pairs",
        ),
        rows,
    )
    collapses = offload_collapses(points)
    degrades = plt_degrades_tier_by_tier(points)
    lines.append(
        f"  offload collapses level by level: {collapses}; "
        f"PLT degrades tier by tier: {degrades}"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "cells": {
                p.label: {
                    "offload_ratio": p.offload_ratio,
                    "egress_bytes": p.egress_bytes,
                    "origin_bytes": p.origin_bytes,
                    "misses": p.misses,
                    "tier_hits": p.tier_hits,
                    "h2_mean_plt_ms": p.h2_mean_plt_ms,
                    "h3_mean_plt_ms": p.h3_mean_plt_ms,
                    "paired_visits": p.paired_visits,
                }
                for p in points
            },
            "offload_collapses": collapses,
            "plt_degrades_tier_by_tier": degrades,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
