"""Table III — high-sharing vs low-sharing case study (k-means groups)."""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    ExperimentSpec,
    fmt,
    format_table,
)

EXPERIMENT_ID = "table3"
TITLE = "PLT reduction for high/low sharing-degree groups (paper Table III)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = ctx.study
    result = study.table3()
    rows = [
        (
            "Avg num. of shared providers",
            fmt(result.high.avg_shared_providers, 2),
            fmt(result.low.avg_shared_providers, 2),
        ),
        (
            "Avg num. of resumed connections",
            fmt(result.high.avg_resumed_connections, 2),
            fmt(result.low.avg_resumed_connections, 2),
        ),
        (
            "PLT reduction (ms)",
            fmt(result.high.plt_reduction_ms, 2),
            fmt(result.low.plt_reduction_ms, 2),
        ),
        ("Pages in group", result.high.n_pages, result.low.n_pages),
    ]
    lines = format_table(("Metric", "High sharing C_H", "Low sharing C_L"), rows)
    lines.append(
        f"  (clustered over {result.n_domains} shared domains, "
        f"{result.outliers_removed} outlier pages removed; paper: 58 domains, "
        "C_H 4.16/101.64/109.3ms vs C_L 2.58/73.74/54.35ms)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        lines=lines,
        data={
            "high": result.high.__dict__,
            "low": result.low.__dict__,
            "n_domains": result.n_domains,
            "outliers_removed": result.outliers_removed,
        },
    )


SPEC = ExperimentSpec(name=EXPERIMENT_ID, title=TITLE, run=run)
