"""DNS resolution substrate.

Every first contact with a hostname costs a recursive lookup; browsers
then cache the answer.  The paper's HAR timing taxonomy includes the
``dns`` phase, and its related-work section discusses DNS-over-QUIC
(DoQ, RFC 9250) — both are modelled here: a caching stub resolver with
configurable upstream transport (classic UDP, DoT-like TCP, or DoQ),
whose latency semantics mirror the transport handshake differences.
"""

from repro.dns.resolver import DnsConfig, DnsResolver, DnsTransport

__all__ = ["DnsConfig", "DnsResolver", "DnsTransport"]
