"""A caching stub resolver with pluggable upstream transport.

Latency model
-------------

A cache hit answers instantly.  A miss pays:

* one round trip to the recursive resolver, scaled by the upstream
  transport's connection cost —

  ============  =============================================
  ``UDP``       1 × RTT (classic Do53, no connection)
  ``TCP_TLS``   3 × RTT on first use (TCP+TLS1.3 handshake),
                1 × RTT once the connection is warm (DoT/DoH)
  ``QUIC``      2 × RTT on first use (QUIC handshake),
                1 × RTT warm (DoQ, RFC 9250)
  ============  =============================================

* plus the recursive resolver's own upstream work for names not in
  *its* cache (popular names are answered immediately; the long tail
  pays an extra recursion delay).

Kosek et al. (IMC'22), cited by the paper, measure exactly these DoQ
vs DoUDP trade-offs; the model reproduces their qualitative ordering.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.events import EventLoop


class DnsTransport(enum.Enum):
    """Upstream transport between the stub and the recursive resolver."""

    UDP = "udp"
    TCP_TLS = "tcp-tls"
    QUIC = "doq"

    @property
    def cold_round_trips(self) -> float:
        if self is DnsTransport.UDP:
            return 1.0
        if self is DnsTransport.TCP_TLS:
            return 3.0
        return 2.0  # QUIC

    @property
    def warm_round_trips(self) -> float:
        return 1.0


@dataclass(frozen=True)
class DnsConfig:
    """Resolver behaviour knobs."""

    #: RTT between the probe and its recursive resolver.  Testbed
    #: probes (CloudLab) sit next to a campus resolver.
    resolver_rtt_ms: float = 2.5
    #: Positive cache TTL in the stub (browsers cap around a minute).
    cache_ttl_ms: float = 60_000.0
    #: Probability the recursive resolver already has the name cached
    #: (popular names — CDN hostnames overwhelmingly are).
    recursive_hit_rate: float = 0.97
    #: Extra delay when the recursive resolver must walk the hierarchy.
    recursion_ms_range: tuple[float, float] = (20.0, 80.0)
    #: Upstream transport (the DoQ extension knob).
    transport: DnsTransport = DnsTransport.UDP

    def __post_init__(self) -> None:
        if self.resolver_rtt_ms < 0:
            raise ValueError("resolver_rtt_ms must be >= 0")
        if not 0.0 <= self.recursive_hit_rate <= 1.0:
            raise ValueError("recursive_hit_rate must be in [0, 1]")


class DnsResolver:
    """Stub resolver with a TTL cache and in-flight deduplication."""

    def __init__(
        self,
        loop: EventLoop,
        config: DnsConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.loop = loop
        self.config = config or DnsConfig()
        self.rng = rng or random.Random(0)
        self._cache: dict[str, float] = {}  # host -> expiry time
        # host -> [(callback, joined_at), ...]: each waiter remembers
        # when *it* asked, so coalesced callers are billed their own
        # elapsed time rather than the first caller's.
        self._inflight: dict[str, list[tuple[Callable[[float], None], float]]] = {}
        self._upstream_warm = False
        self.hits = 0
        self.misses = 0
        self.lookups_sent = 0
        #: Optional fault hook: ``fail_filter(host) -> bool`` decides
        #: whether an *upstream* lookup SERVFAILs right now (installed
        #: by the browser when fault injection is active).  Cached
        #: answers keep resolving through an upstream outage.
        self.fail_filter: Callable[[str], bool] | None = None
        self.failures = 0

    def resolve(
        self,
        host: str,
        on_done: Callable[[float], None],
        on_fail: Callable[[], None] | None = None,
    ) -> None:
        """Resolve ``host``; ``on_done(latency_ms)`` fires when ready.

        Cache hits complete synchronously with latency 0.  Concurrent
        lookups for the same name coalesce onto one upstream query;
        each caller is reported the latency *it* experienced (from its
        own ``resolve`` call to the shared answer).

        When a :attr:`fail_filter` is installed and ``on_fail`` is
        provided, an upstream lookup inside a fault window SERVFAILs:
        ``on_fail()`` fires after one resolver round trip and nothing
        is cached.  Callers that pass no ``on_fail`` keep the legacy
        always-succeeds behaviour.
        """
        now = self.loop.now
        expiry = self._cache.get(host)
        if expiry is not None and now < expiry:
            self.hits += 1
            on_done(0.0)
            return
        if (
            on_fail is not None
            and self.fail_filter is not None
            and self.fail_filter(host)
        ):
            self.failures += 1
            self.loop.call_later(self.config.resolver_rtt_ms, on_fail)
            return
        self.misses += 1
        waiters = self._inflight.get(host)
        if waiters is not None:
            waiters.append((on_done, now))
            return
        self._inflight[host] = [(on_done, now)]
        latency = self._lookup_latency_ms(host)
        self.lookups_sent += 1
        self.loop.call_later(latency, self._complete, host)

    def _complete(self, host: str) -> None:
        now = self.loop.now
        self._cache[host] = now + self.config.cache_ttl_ms
        for waiter, joined_at in self._inflight.pop(host, []):
            waiter(now - joined_at)

    def _lookup_latency_ms(self, host: str) -> float:
        cfg = self.config
        if self._upstream_warm:
            round_trips = cfg.transport.warm_round_trips
        else:
            round_trips = cfg.transport.cold_round_trips
            self._upstream_warm = True
        latency = round_trips * cfg.resolver_rtt_ms
        # The recursion cost is a *property of the name* (its delegation
        # chain and popularity), not a fresh random draw: a host that is
        # slow to resolve is slow for every probe and protocol run.
        # Deriving it from a stable hash keeps H2/H3 comparisons paired.
        host_rng = random.Random(zlib.crc32(host.encode()))
        if host_rng.random() >= cfg.recursive_hit_rate:
            latency += host_rng.uniform(*cfg.recursion_ms_range)
        return latency

    def clear(self) -> None:
        """Flush the stub cache (and forget upstream connection state)."""
        self._cache.clear()
        self._upstream_warm = False

    def cached_hosts(self) -> frozenset[str]:
        return frozenset(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
