"""Named fault profiles shared by the CLI, scenarios and tests.

``FAULT_PROFILES`` maps the ``--faults <name>`` CLI vocabulary to ready
profiles.  :func:`udp_blackhole_profile` is the parameterized builder
behind the ``fig-fallback`` intensity sweep: all intensities share one
salt, so the affected host sets are nested and the fallback rate is
monotone in the fraction by construction.
"""

from __future__ import annotations

from repro.faults.profile import (
    MIGRATION_KINDS,
    FaultEvent,
    FaultProfile,
    RetryPolicy,
)

#: Salt shared by every ``udp_blackhole_profile`` so that host subsets
#: nest across intensities (see ``FaultEvent.targets``).
UDP_SWEEP_SALT = 0x5EED


def udp_blackhole_profile(
    fraction: float = 1.0, name: str | None = None
) -> FaultProfile:
    """UDP blackholed for ``fraction`` of hosts, for the whole visit.

    QUIC handshakes to affected hosts can never complete; the pool's
    connect timeout fires and the visit falls back to H2/H1 over TCP.
    """
    if name is None:
        name = f"udp-blackhole-{fraction:g}"
    return FaultProfile(
        name=name,
        events=(
            FaultEvent(
                kind="udp_blackhole",
                host_fraction=fraction,
                salt=UDP_SWEEP_SALT,
            ),
        ),
        # A tight connect timeout keeps the fallback penalty in the
        # hundreds of milliseconds instead of waiting out the QUIC
        # handshake retry ladder (~tens of seconds of simulated time).
        retry=RetryPolicy(connect_timeout_ms=1000.0),
    )


def migration_profile(
    kind: str = "nat_rebind",
    at_ms: float = 400.0,
    gap_ms: float = 150.0,
    name: str | None = None,
) -> FaultProfile:
    """A mid-visit client address change (``fig-migration`` builder).

    The window ``[at_ms, at_ms + gap_ms)`` is the rebind/handover gap:
    every packet drops while the new address comes up.  When it closes,
    QUIC connections resume on the same connection ID (a path
    migration); TCP connections were torn down at ``at_ms`` and are
    reconnecting — through the tail of the gap, realistically.
    """
    if kind not in MIGRATION_KINDS:
        raise ValueError(
            f"kind must be one of {MIGRATION_KINDS}, got {kind!r}"
        )
    if name is None:
        name = kind.replace("_", "-")
    return FaultProfile(
        name=name,
        events=(
            FaultEvent(kind=kind, start_ms=at_ms, end_ms=at_ms + gap_ms),
        ),
        # Reconnects race the request timeout; keep it tight enough
        # that a stuck fetch re-dispatches within the visit.
        retry=RetryPolicy(request_timeout_ms=8000.0),
    )


FAULT_PROFILES: dict[str, FaultProfile] = {
    # Every QUIC packet is eaten by a middlebox; the entire page must
    # complete over TCP via H3→H2 fallback.  The acceptance profile for
    # "zero hung visits".
    "udp-blocked": udp_blackhole_profile(1.0, name="udp-blocked"),
    # A mid-visit link flap: all traffic drops for 400 ms, recovery is
    # carried by retransmission/PTO plus pool request timeouts.
    "flaky-link": FaultProfile(
        name="flaky-link",
        events=(FaultEvent(kind="blackout", start_ms=300.0, end_ms=700.0),),
        retry=RetryPolicy(request_timeout_ms=8000.0, max_retries=2),
    ),
    # 30 % of edges refuse requests for the first 400 ms of the visit;
    # bounded retries with backoff ride out the outage window.
    "edge-outage": FaultProfile(
        name="edge-outage",
        events=(
            FaultEvent(
                kind="edge_outage",
                end_ms=400.0,
                host_fraction=0.3,
                salt=7,
            ),
        ),
        retry=RetryPolicy(max_retries=3, backoff_base_ms=150.0),
    ),
    # Resolution SERVFAILs for 30 % of hosts during the first 250 ms;
    # the browser retries resolution with backoff until the window
    # lifts.
    "dns-flaky": FaultProfile(
        name="dns-flaky",
        events=(
            FaultEvent(
                kind="dns_failure",
                end_ms=250.0,
                host_fraction=0.3,
                salt=11,
            ),
        ),
        retry=RetryPolicy(max_retries=3, backoff_base_ms=100.0),
    ),
    # Every established connection is reset 250 ms into the visit;
    # in-flight requests re-dispatch on fresh connections.
    "reset-storm": FaultProfile(
        name="reset-storm",
        events=(
            FaultEvent(kind="connection_reset", start_ms=250.0, end_ms=260.0),
        ),
    ),
    # Session tickets are refused for the whole visit (key rotation):
    # every connection pays the full handshake, isolating the 0-RTT
    # contribution to H3's edge.
    "no-0rtt": FaultProfile(
        name="no-0rtt",
        events=(FaultEvent(kind="zero_rtt_reject"),),
    ),
    # The vantage's NAT mapping rebinds 400 ms into the visit (150 ms
    # gap): QUIC migrates live connections by connection ID, TCP
    # reconnects from scratch.
    "nat-rebind": migration_profile("nat_rebind", at_ms=400.0, gap_ms=150.0),
    # A WiFi→cellular handover 500 ms in, with a longer (250 ms) gap —
    # the headline migration scenario from the QUIC design docs.
    "wifi-to-cellular": migration_profile(
        "wifi_to_cellular", at_ms=500.0, gap_ms=250.0
    ),
}
