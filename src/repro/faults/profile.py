"""Fault profiles: declarative, seed-free descriptions of what breaks.

A :class:`FaultProfile` is a frozen, picklable value object that scripts
*time-windowed* faults onto a page visit.  Windows are expressed relative
to the start of each visit (``t = 0`` when the browser begins loading the
page), so the same profile means the same thing for every page, probe and
worker — a prerequisite for the bit-identical ``workers=1`` vs
``workers=N`` guarantee the parallel campaign engine makes.

Host targeting is deterministic without a ``random.Random``: each
:class:`FaultEvent` hashes ``"{salt}:{host}"`` with BLAKE2b and compares
the result against ``host_fraction``.  Because the per-host draw depends
only on the salt, the affected host sets are *nested* across fractions
(every host hit at 0.25 is also hit at 0.5), which is what makes the
``fig-fallback`` intensity sweep monotone by construction.

The taxonomy (see ``docs/faults.md``):

``blackout``
    The network path drops every packet in the window — models a link
    flap.  Both QUIC and TCP are affected.
``udp_blackhole``
    Only QUIC (UDP) packets are dropped — models the UDP-hostile
    middleboxes that force H3→H2 fallback in the wild.
``edge_outage``
    The edge/origin serving a host refuses requests in the window —
    models a CDN PoP incident.
``dns_failure``
    Resolution for a host SERVFAILs in the window.
``connection_reset``
    Established connections to a host are torn down when the window
    opens — models an idle-timeout or middlebox RST mid-transfer.
``zero_rtt_reject``
    Session-ticket resumption is refused in the window — models server
    key rotation; connections complete a full handshake instead.
``nat_rebind``
    The vantage's NAT mapping is rebound mid-visit: packets drop for
    the (short) rebind gap and the client's address changes.  QUIC
    survives by connection ID (a path migration); TCP connections are
    bound to the 4-tuple and must reconnect.
``wifi_to_cellular``
    The vantage switches networks mid-visit (e.g. walking out of WiFi
    range).  Same mechanics as ``nat_rebind`` with a longer gap —
    QUIC migrates the live connection, TCP reconnects from scratch.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

#: Every fault kind a :class:`FaultEvent` may carry.
FAULT_KINDS = frozenset(
    {
        "blackout",
        "udp_blackhole",
        "edge_outage",
        "dns_failure",
        "connection_reset",
        "zero_rtt_reject",
        "nat_rebind",
        "wifi_to_cellular",
    }
)

#: Fault kinds that model a mid-visit client address change — the
#: connection-migration family.  QUIC survives these by connection ID;
#: TCP must tear down and reconnect.
MIGRATION_KINDS = ("nat_rebind", "wifi_to_cellular")

#: Denominator for the stable per-host hash draw (2**64).
_HASH_SPAN = float(1 << 64)


def stable_host_fraction(salt: int, host: str) -> float:
    """A deterministic draw in ``[0, 1)`` for ``host`` under ``salt``.

    Independent of Python's hash randomization and of any RNG stream the
    simulation consumes, so adding faults never perturbs unrelated
    randomness.
    """
    digest = hashlib.blake2b(
        f"{salt}:{host}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _HASH_SPAN


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault window.

    ``start_ms``/``end_ms`` are relative to the visit start; ``end_ms``
    defaults to infinity (the fault never lifts within the visit).
    ``hosts`` restricts the fault to an explicit host list; otherwise
    ``host_fraction`` selects a stable pseudo-random subset (1.0 = every
    host).
    """

    kind: str
    start_ms: float = 0.0
    end_ms: float = math.inf
    hosts: tuple[str, ...] | None = None
    host_fraction: float = 1.0
    salt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.start_ms < 0:
            raise ValueError("fault window cannot start before the visit")
        if self.end_ms <= self.start_ms:
            raise ValueError("fault window must have end_ms > start_ms")
        if not 0.0 <= self.host_fraction <= 1.0:
            raise ValueError("host_fraction must be within [0, 1]")
        if self.hosts is not None:
            object.__setattr__(self, "hosts", tuple(self.hosts))

    def active_at(self, rel_now_ms: float) -> bool:
        """Whether the window covers visit-relative time ``rel_now_ms``."""
        return self.start_ms <= rel_now_ms < self.end_ms

    def targets(self, host: str) -> bool:
        """Whether ``host`` falls inside this event's blast radius."""
        if self.hosts is not None:
            return host in self.hosts
        if self.host_fraction >= 1.0:
            return True
        if self.host_fraction <= 0.0:
            return False
        return stable_host_fraction(self.salt, host) < self.host_fraction


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side recovery knobs: timeouts, bounded retries, backoff.

    ``backoff_ms`` implements capped exponential backoff:
    ``min(base * 2**attempt, cap)`` — attempt 0 waits ``base`` ms.
    """

    connect_timeout_ms: float = 3000.0
    request_timeout_ms: float = 15000.0
    max_retries: int = 2
    backoff_base_ms: float = 100.0
    backoff_cap_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.connect_timeout_ms <= 0 or self.request_timeout_ms <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return min(
            self.backoff_base_ms * (2 ** max(attempt, 0)),
            self.backoff_cap_ms,
        )


@dataclass(frozen=True)
class FaultProfile:
    """A named bundle of fault events plus the recovery policy.

    Frozen and built from plain values only, so it pickles cleanly into
    campaign worker processes.  An *empty* profile (no events) wires the
    full fault/recovery machinery in but injects nothing — campaigns run
    with it must be bit-identical to campaigns run with no profile at
    all (regression-tested in ``tests/test_faults.py``).
    """

    name: str = "custom"
    events: tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        return not self.events

    def kinds(self) -> frozenset[str]:
        """The distinct fault kinds this profile scripts."""
        return frozenset(event.kind for event in self.events)

    def with_events(self, *events: FaultEvent) -> "FaultProfile":
        """A copy with ``events`` appended (builder-style)."""
        return replace(self, events=self.events + tuple(events))
