"""Runtime fault injection: the bridge between a profile and the DES.

One :class:`FaultInjector` lives per probe (it shares the probe's event
loop) and is consulted by the browser, the connection pool and the DNS
resolver.  It answers "is fault X active for host H *right now*?" by
translating the loop's absolute clock into visit-relative time — the
browser calls :meth:`begin_visit` at the top of every page load.

Every injected fault and every recovery action is reported through
:meth:`record_fault` / :meth:`record_recovery`, which feed the PR 2
observability layer: counters under ``faults.*`` / ``recovery.*`` and
trace events in the ``fault:`` / ``recovery:`` families (all names are
registered in :data:`repro.obs.trace.EVENT_NAMES` and validated by
``repro.obs.schema``).

:class:`FaultedPath` wraps a :class:`~repro.netsim.path.NetworkPath`
per-connection, dropping packets while a ``blackout`` (any transport) or
``udp_blackhole`` (QUIC only) window is open.  It is a pure pass-through
otherwise — it consumes no randomness and schedules no events, so
wrapping paths under an empty profile cannot change results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.profile import MIGRATION_KINDS, FaultProfile, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.loop import EventLoop
    from repro.netsim.path import NetworkPath
    from repro.obs.context import ObsContext


class FaultInjector:
    """Per-probe oracle for scripted faults.

    Parameters
    ----------
    profile:
        The fault script.  An empty profile makes every query return
        falsy, turning the injector into inert plumbing.
    loop:
        The probe's event loop; supplies the clock for window checks
        and timestamps for emitted trace events.
    obs:
        Optional observability context for counters/trace events.
    """

    __slots__ = ("profile", "loop", "obs", "_visit_started_at")

    def __init__(
        self,
        profile: FaultProfile,
        loop: "EventLoop",
        obs: "ObsContext | None" = None,
    ) -> None:
        self.profile = profile
        self.loop = loop
        self.obs = obs
        self._visit_started_at = 0.0

    # -- visit lifecycle ----------------------------------------------

    def begin_visit(self) -> None:
        """Re-anchor fault windows to the current loop time.

        Called by the browser at the top of every page visit so that
        profile windows (visit-relative) line up with the shared loop
        clock (absolute, monotone across visits).
        """
        self._visit_started_at = self.loop.now

    @property
    def retry(self) -> RetryPolicy:
        return self.profile.retry

    def _rel_now(self) -> float:
        return self.loop.now - self._visit_started_at

    # -- fault queries ------------------------------------------------

    def _active(self, kind: str, host: str) -> bool:
        rel_now = self._rel_now()
        for event in self.profile.events:
            if (
                event.kind == kind
                and event.active_at(rel_now)
                and event.targets(host)
            ):
                return True
        return False

    def blackout(self, host: str) -> bool:
        """All packets to/from ``host`` are being dropped."""
        return self._active("blackout", host)

    def udp_blackholed(self, host: str) -> bool:
        """UDP (QUIC) packets to/from ``host`` are being dropped."""
        return self._active("udp_blackhole", host)

    def edge_outage(self, host: str) -> bool:
        """The edge/origin serving ``host`` is refusing requests."""
        return self._active("edge_outage", host)

    def dns_failure(self, host: str) -> bool:
        """Resolution for ``host`` currently SERVFAILs."""
        return self._active("dns_failure", host)

    def zero_rtt_rejected(self, host: str) -> bool:
        """Session-ticket resumption for ``host`` is being refused."""
        return self._active("zero_rtt_reject", host)

    def migration_blackout(self, host: str) -> bool:
        """A client address change is in progress: the rebind/handover
        gap drops every packet regardless of transport."""
        for kind in MIGRATION_KINDS:
            if self._active(kind, host):
                return True
        return False

    def migration_at(self, host: str) -> "tuple[float, str] | None":
        """Absolute loop time at which the client's address changes.

        Returns the earliest instant ``>= now`` covered by a pending
        migration window for ``host`` together with the fault kind, or
        ``None`` when no such window lies ahead.  Mirrors
        :meth:`connection_reset_at`, which established connections use
        to arm a one-shot timer.
        """
        rel_now = self._rel_now()
        best: "tuple[float, str] | None" = None
        for event in self.profile.events:
            if event.kind not in MIGRATION_KINDS or not event.targets(host):
                continue
            if rel_now >= event.end_ms:
                continue
            fire_rel = max(event.start_ms, rel_now)
            if best is None or fire_rel < best[0]:
                best = (fire_rel, event.kind)
        if best is None:
            return None
        return self._visit_started_at + best[0], best[1]

    def connection_reset_at(self, host: str) -> float | None:
        """Absolute loop time at which a live connection gets reset.

        Returns the earliest instant ``>= now`` covered by a pending
        ``connection_reset`` window for ``host`` (``now`` itself when a
        window is already open), or ``None`` if no window lies ahead.
        """
        rel_now = self._rel_now()
        best: float | None = None
        for event in self.profile.events:
            if event.kind != "connection_reset" or not event.targets(host):
                continue
            if rel_now >= event.end_ms:
                continue
            fire_rel = max(event.start_ms, rel_now)
            if best is None or fire_rel < best:
                best = fire_rel
        if best is None:
            return None
        return self._visit_started_at + best

    # -- packet-level hooks -------------------------------------------

    def packet_dropped(self, host: str, quic: bool) -> bool:
        """Whether a packet to/from ``host`` is eaten by an open window."""
        if self.blackout(host):
            return True
        if self.migration_blackout(host):
            # The rebind/handover gap loses packets for both transports;
            # what differs is what happens *after* — QUIC resumes on the
            # migrated connection, TCP has already torn down to reconnect.
            return True
        return quic and self.udp_blackholed(host)

    def wrap_path(self, path: "NetworkPath", host: str, quic: bool) -> "FaultedPath":
        """A per-connection view of ``path`` subject to this injector."""
        return FaultedPath(path, self, host, quic)

    # -- observability ------------------------------------------------

    def record_fault(self, kind: str, host: str, **data) -> None:
        """Count an injected fault and (when tracing) emit ``fault:<kind>``."""
        obs = self.obs
        if obs is None:
            return
        obs.counters.incr(f"faults.{kind}")
        tracer = obs.fault_tracer()
        if tracer:
            tracer.event(self.loop.now, f"fault:{kind}", host=host, **data)

    def record_migration(
        self, host: str, migrated: bool, protocol: str, streams: int
    ) -> None:
        """Report the outcome of a client address change for one
        established connection: ``migrated`` (QUIC carried the
        connection across by connection ID) or a forced reconnect
        (TCP's 4-tuple binding died with the old address)."""
        obs = self.obs
        if obs is None:
            return
        outcome = "migrated" if migrated else "reconnect"
        obs.counters.incr(f"migration.{outcome}")
        tracer = obs.fault_tracer()
        if tracer:
            tracer.event(
                self.loop.now,
                f"migration:{outcome}",
                host=host,
                protocol=protocol,
                streams=streams,
            )

    def record_recovery(self, kind: str, host: str, **data) -> None:
        """Count a recovery action and (when tracing) emit ``recovery:<kind>``."""
        obs = self.obs
        if obs is None:
            return
        obs.counters.incr(f"recovery.{kind}")
        tracer = obs.fault_tracer()
        if tracer:
            tracer.event(self.loop.now, f"recovery:{kind}", host=host, **data)


class FaultedPath:
    """A :class:`NetworkPath` proxy that drops packets in fault windows.

    Wraps one connection's view of the path: the pool knows whether the
    connection is QUIC, so ``udp_blackhole`` windows drop only QUIC
    traffic while ``blackout`` windows drop everything.  All other
    attribute access delegates to the underlying path.
    """

    __slots__ = ("_path", "_injector", "_host", "_quic")

    #: A faulted view may start dropping packets at any scripted moment,
    #: so the analytic transport fast path must never reserve deliveries
    #: through it — even when the underlying links are loss-free.
    fast_path_eligible = False

    def __init__(
        self,
        path: "NetworkPath",
        injector: FaultInjector,
        host: str,
        quic: bool,
    ) -> None:
        self._path = path
        self._injector = injector
        self._host = host
        self._quic = quic

    def send_to_server(self, packet, on_deliver) -> bool:
        if self._injector.packet_dropped(self._host, self._quic):
            return False
        return self._path.send_to_server(packet, on_deliver)

    def send_to_client(self, packet, on_deliver) -> bool:
        if self._injector.packet_dropped(self._host, self._quic):
            return False
        return self._path.send_to_client(packet, on_deliver)

    def __getattr__(self, name: str):
        return getattr(self._path, name)
