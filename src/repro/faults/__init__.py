"""Deterministic fault injection and graceful degradation.

Declarative side (:mod:`repro.faults.profile`): frozen, picklable
:class:`FaultProfile` / :class:`FaultEvent` / :class:`RetryPolicy`
values scripting time-windowed faults relative to each page visit.

Runtime side (:mod:`repro.faults.inject`): a per-probe
:class:`FaultInjector` the browser, pool and resolver consult, plus the
packet-dropping :class:`FaultedPath` proxy.

Named profiles for the CLI's ``--faults`` flag live in
:mod:`repro.faults.presets`.
"""

from repro.faults.inject import FaultedPath, FaultInjector
from repro.faults.presets import (
    FAULT_PROFILES,
    migration_profile,
    udp_blackhole_profile,
)
from repro.faults.profile import (
    FAULT_KINDS,
    MIGRATION_KINDS,
    FaultEvent,
    FaultProfile,
    RetryPolicy,
    stable_host_fraction,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "MIGRATION_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultProfile",
    "FaultedPath",
    "RetryPolicy",
    "migration_profile",
    "stable_host_fraction",
    "udp_blackhole_profile",
]
