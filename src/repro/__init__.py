"""repro — a simulation reproduction of "Dissecting the Applicability of
HTTP/3 in Content Delivery Networks" (Zhou et al., ICDCS 2024).

The package rebuilds the paper's entire measurement ecosystem offline —
network, transports, TLS, HTTP, DNS, CDNs, a synthetic web, a browser,
and the collection protocol — and regenerates every table and figure of
the evaluation.  Start with :class:`repro.core.H3CdnStudy`:

>>> from repro import H3CdnStudy, StudyConfig
>>> study = H3CdnStudy(StudyConfig(n_sites=20, seed=7))
>>> table2 = study.table2()           # the paper's Table II
>>> round(table2.cdn_share, 2)        # doctest: +SKIP
0.67

or run the CLI: ``python -m repro.experiments.cli --scale quick``.

Subpackage map (bottom-up): :mod:`repro.events` (simulation kernel),
:mod:`repro.netsim` (links/loss), :mod:`repro.transport` (TCP/QUIC),
:mod:`repro.tls`, :mod:`repro.dns`, :mod:`repro.http`, :mod:`repro.cdn`,
:mod:`repro.web`, :mod:`repro.browser`, :mod:`repro.measurement`,
:mod:`repro.analysis`, :mod:`repro.core`, :mod:`repro.experiments`.
"""

from repro.core.study import H3CdnStudy, StudyConfig

__version__ = "1.0.0"

__all__ = ["H3CdnStudy", "StudyConfig", "__version__"]
