"""Chrome-like page loading and HAR capture.

The :class:`Browser` plays the role of the paper's instrumented Chrome
108: it loads a landing page's HTML, discovers subresources in waves,
schedules them through a per-origin connection pool under a chosen
protocol mode (``h2-only`` mirrors the paper's H2 baseline; the default
``h3-enabled`` mirrors Chrome with ``--enable-quic``), and emits a
Chrome-HAR-style record per request plus the page-level PLT.
"""

from repro.browser.browser import Browser, BrowserConfig, PageVisit
from repro.browser.har import HarEntry, HarLog

__all__ = ["Browser", "BrowserConfig", "HarEntry", "HarLog", "PageVisit"]
