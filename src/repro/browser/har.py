"""HAR (HTTP Archive) records, the measurement's unit of analysis.

The paper collects Chrome-HAR files and reads, per entry, the protocol,
the CDN classification, and the timing phases (connection / wait /
receive); and per page, the PLT.  :class:`HarEntry` carries exactly
those fields (plus provenance flags the analyses need), and
:class:`HarLog` can render a HAR-1.2-style dict for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http.messages import EntryTiming


@dataclass
class HarEntry:
    """One request/response exchange, as the paper's analyses see it."""

    url: str
    host: str
    protocol: str  # "http/1.1" | "h2" | "h3"
    started_at_ms: float
    time_ms: float
    timings: EntryTiming
    response_bytes: int
    request_bytes: int
    resource_type: str
    headers: dict[str, str] = field(default_factory=dict)
    status: int = 200
    #: Rode an existing connection (connect time 0) — Fig. 7 criterion.
    reused: bool = False
    #: Connection resumed from a session ticket — Fig. 8 criterion.
    resumed: bool = False
    #: Edge cache hit.
    cache_hit: bool = False
    #: LocEdge-style classification (filled at collection time).
    is_cdn: bool = False
    provider: str | None = None
    #: Fetch gave up after exhausting its fault-recovery retry budget
    #: (``status`` is 0, Chrome-style, for such entries).
    failed: bool = False

    @property
    def connection_time(self) -> float:
        """The paper's *Connection time* (handshake, incl. TLS)."""
        return self.timings.connect

    @property
    def wait_time(self) -> float:
        """The paper's *Wait time* (first request byte → first response byte)."""
        return self.timings.wait

    @property
    def receive_time(self) -> float:
        """The paper's *Receive time* (response transmission)."""
        return self.timings.receive

    @property
    def used_reused_connection(self) -> bool:
        """The paper's reuse test: 'if the connection time is 0, then it
        is a reused connection' (Section VI-C)."""
        return self.timings.connect == 0.0

    def to_dict(self) -> dict:
        """HAR-1.2-flavoured rendering of this entry.

        The ``_failed`` extension key appears only on failed entries,
        keeping fault-free documents byte-identical to older captures.
        """
        document = {
            "startedDateTime": self.started_at_ms,
            "time": self.time_ms,
            "request": {
                "method": "GET",
                "url": self.url,
                "headersSize": self.request_bytes,
            },
            "response": {
                "status": self.status,
                "httpVersion": self.protocol,
                "headers": [
                    {"name": name, "value": value}
                    for name, value in self.headers.items()
                ],
                "bodySize": self.response_bytes,
            },
            "timings": self.timings.as_dict(),
            "_resourceType": self.resource_type,
            "_cdn": {"isCdn": self.is_cdn, "provider": self.provider},
            "_reused": self.reused,
            "_resumed": self.resumed,
            "_cacheHit": self.cache_hit,
        }
        if self.failed:
            document["_failed"] = True
        return document


@dataclass
class HarLog:
    """All entries of one page visit plus page-level timing."""

    page_url: str
    entries: list[HarEntry] = field(default_factory=list)
    on_load_ms: float = 0.0  # PLT
    started_at_ms: float = 0.0

    @property
    def plt_ms(self) -> float:
        """Page Load Time: start of load → onLoad (paper Section III-C)."""
        return self.on_load_ms

    def entries_by_protocol(self, protocol: str) -> list[HarEntry]:
        return [e for e in self.entries if e.protocol == protocol]

    def cdn_entries(self) -> list[HarEntry]:
        return [e for e in self.entries if e.is_cdn]

    def reused_connection_count(self) -> int:
        """Entries served on reused connections (Fig. 7 metric)."""
        return sum(1 for e in self.entries if e.used_reused_connection)

    def resumed_connection_count(self) -> int:
        """Entries whose connection was ticket-resumed (Fig. 8 metric)."""
        return sum(1 for e in self.entries if e.resumed)

    def total_bytes(self) -> int:
        return sum(e.response_bytes for e in self.entries)

    def to_dict(self) -> dict:
        """Render the whole visit as a HAR-1.2-style document."""
        return {
            "log": {
                "version": "1.2",
                "creator": {"name": "repro-h3cdn", "version": "1.0"},
                "pages": [
                    {
                        "id": self.page_url,
                        "startedDateTime": self.started_at_ms,
                        "pageTimings": {"onLoad": self.on_load_ms},
                    }
                ],
                "entries": [entry.to_dict() for entry in self.entries],
            }
        }

    @classmethod
    def from_dict(cls, document: dict) -> "HarLog":
        """Parse a HAR document produced by :meth:`to_dict`.

        Round-tripping lets the analysis pipeline consume archived HAR
        files (simulated or — with the ``_cdn``/``_reused`` extension
        fields absent — real Chrome captures, re-classified on load).
        """
        log = document["log"]
        page = log["pages"][0]
        har = cls(
            page_url=page["id"],
            started_at_ms=page.get("startedDateTime", 0.0),
            on_load_ms=page.get("pageTimings", {}).get("onLoad", 0.0),
        )
        for raw in log["entries"]:
            timings = raw.get("timings", {})
            # Real Chrome HARs use -1 as "phase not applicable" (e.g.
            # dns/connect on reused connections); clamp negative
            # sentinels to 0 so downstream phase arithmetic and the
            # invariant checker see honest durations.
            timing = EntryTiming(
                **{
                    name: max(0.0, timings.get(name, 0.0))
                    for name in (
                        "blocked", "dns", "connect", "ssl",
                        "send", "wait", "receive",
                    )
                }
            )
            headers = {
                h["name"]: h["value"]
                for h in raw.get("response", {}).get("headers", [])
            }
            url = raw["request"]["url"]
            host = url.split("/")[2] if "//" in url else url
            cdn_extension = raw.get("_cdn")
            if cdn_extension is None:
                # A foreign HAR: classify the way the paper ran LocEdge.
                from repro.cdn.classifier import classify_response

                result = classify_response(host, headers)
                is_cdn, provider = result.is_cdn, result.provider_name
            else:
                is_cdn = cdn_extension.get("isCdn", False)
                provider = cdn_extension.get("provider")
            har.entries.append(
                HarEntry(
                    url=url,
                    host=host,
                    protocol=raw.get("response", {}).get("httpVersion", "h2"),
                    started_at_ms=raw.get("startedDateTime", 0.0),
                    time_ms=raw.get("time", timing.total),
                    timings=timing,
                    response_bytes=raw.get("response", {}).get("bodySize", 0),
                    request_bytes=raw.get("request", {}).get("headersSize", 0),
                    resource_type=raw.get("_resourceType", "other"),
                    headers=headers,
                    status=raw.get("response", {}).get("status", 200),
                    reused=raw.get("_reused", timing.connect == 0.0),
                    resumed=raw.get("_resumed", False),
                    cache_hit=raw.get("_cacheHit", False),
                    is_cdn=is_cdn,
                    provider=provider,
                    failed=raw.get("_failed", False),
                )
            )
        return har
