"""The browser: page loading, protocol selection, HAR capture.

Mirrors the paper's instrumented Chrome:

* Separate protocol modes per "browser instance" — ``h2-only`` for the
  H2 baseline, ``h3-enabled`` for the ``--enable-quic`` run (Section
  III-B's separate user-data directories).
* HTML loads first from the site origin; wave-0 subresources are
  discovered from the HTML; wave-1 resources (font files referenced by
  CSS, XHRs issued by scripts) dispatch once the wave-0 CSS/JS have
  loaded.
* Every response is classified CDN/non-CDN + provider at collection
  time (the paper runs LocEdge over its HAR files).
* PLT is the time from navigation start to completion of every
  resource (the ``onLoad`` event).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.browser.har import HarEntry, HarLog
from repro.cdn.classifier import classify_response
from repro.check.visit import check_visit
from repro.dns import DnsConfig, DnsResolver
from repro.events import EventLoop
from repro.faults.inject import FaultInjector
from repro.http.alt_svc import AltSvcCache
from repro.http.messages import EntryTiming, FetchRecord, HttpProtocol
from repro.http.pool import ConnectionPool, PoolStats
from repro.netsim.path import NetworkPath
from repro.tls.session_cache import SessionTicketCache
from repro.transport.config import TransportConfig
from repro.web.page import Webpage
from repro.web.resource import Resource, ResourceType


class Farm(TypingProtocol):
    """What the browser needs from the measurement-layer server farm."""

    def server(self, hostname: str):
        ...  # pragma: no cover - protocol stub

    def path(self, hostname: str) -> NetworkPath:
        ...  # pragma: no cover - protocol stub


#: Protocol modes the measurement harness uses.
H2_ONLY = "h2-only"
H3_ENABLED = "h3-enabled"

#: Chrome-like priority weights per resource type (opt-in).
RESOURCE_WEIGHTS = {
    ResourceType.HTML: 4,
    ResourceType.CSS: 3,
    ResourceType.JS: 3,
    ResourceType.FONT: 3,
    ResourceType.XHR: 2,
    ResourceType.IMAGE: 1,
    ResourceType.MEDIA: 1,
}


@dataclass
class BrowserConfig:
    """Browser-instance settings (one instance per protocol per probe)."""

    protocol_mode: str = H3_ENABLED
    #: If True, H3 is only used after an Alt-Svc advertisement has been
    #: seen for the host (standards path).  The paper's probes force
    #: QUIC, so the default is direct H3.
    use_alt_svc: bool = False
    #: Disables TLS session tickets entirely (Fig. 8 ablation).
    use_session_tickets: bool = True
    transport_config: TransportConfig = field(default_factory=TransportConfig)
    #: Stub-resolver behaviour (None disables DNS latency entirely).
    dns_config: DnsConfig | None = field(default_factory=DnsConfig)
    #: Weight render-blocking resources (CSS/JS) over images on
    #: multiplexed connections, as browsers do.  Off by default so the
    #: paper-calibrated scheduling stays plain round-robin.
    use_resource_priorities: bool = False
    #: Compression-negotiation campaign config
    #: (:class:`repro.cdn.compression.CompressionConfig`).  ``None``
    #: keeps requests Accept-Encoding-free and the legacy serve path.
    compression: object | None = None

    def __post_init__(self) -> None:
        if self.protocol_mode not in (H2_ONLY, H3_ENABLED):
            raise ValueError(
                f"protocol_mode must be {H2_ONLY!r} or {H3_ENABLED!r}, "
                f"got {self.protocol_mode!r}"
            )


@dataclass
class PageVisit:
    """Result of one page load."""

    page_url: str
    protocol_mode: str
    har: HarLog
    plt_ms: float
    pool_stats: PoolStats
    #: Per-visit counter-registry snapshot (``CounterRegistry.to_dict``)
    #: when observability was attached; ``None`` otherwise.
    counters: dict | None = None
    #: Per-visit qlog-style trace events when tracing was on.  Fresh
    #: in-process visits carry a lazy :class:`~repro.obs.trace.TraceLog`
    #: (list-of-dicts compatible); visits rebuilt by :meth:`from_dict`
    #: carry the materialized plain list.
    trace: list | None = None
    #: Per-visit sim-time metrics samples (``metrics:`` records) when
    #: the sampler was attached; ``None`` otherwise.
    metrics: list | None = None
    #: Per-visit hierarchical spans (visit → phase → transfer) when
    #: span recording was on; ``None`` otherwise.
    spans: list | None = None
    #: ``"ok"`` normally; ``"degraded"`` when fault injection forced
    #: retries/fallback or failed individual fetches.  Serialized only
    #: when not ``"ok"`` so fault-free payloads keep their exact shape.
    status: str = "ok"

    @property
    def entries(self) -> list[HarEntry]:
        return self.har.entries

    @property
    def failed_entries(self) -> int:
        """Number of fetches that exhausted their retry budget."""
        return sum(1 for entry in self.har.entries if entry.failed)

    def to_dict(self) -> dict:
        """Compact, picklable rendering of this visit.

        This is the parallel campaign runner's worker→parent boundary:
        a visit crosses the process gap as plain dicts (HAR-1.2 document
        plus counters) instead of a live ``EventLoop`` object graph.
        Telemetry keys appear only when collected, so documents from
        observability-free runs are byte-identical to before.
        """
        document = {
            "format": "repro-h3cdn-visit/1",
            "pageUrl": self.page_url,
            "protocolMode": self.protocol_mode,
            "pltMs": self.plt_ms,
            "poolStats": self.pool_stats.to_dict(),
            "har": self.har.to_dict(),
        }
        if self.counters is not None:
            document["counters"] = self.counters
        if self.trace is not None:
            trace = self.trace
            document["trace"] = (
                trace.to_jsonable() if hasattr(trace, "to_jsonable") else trace
            )
        if self.metrics is not None:
            document["metrics"] = self.metrics
        if self.spans is not None:
            document["spans"] = self.spans
        if self.status != "ok":
            document["status"] = self.status
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "PageVisit":
        """Reconstruct a visit rendered by :meth:`to_dict`."""
        if document.get("format") != "repro-h3cdn-visit/1":
            raise ValueError(
                f"unrecognized visit format: {document.get('format')!r}"
            )
        return cls(
            page_url=document["pageUrl"],
            protocol_mode=document["protocolMode"],
            har=HarLog.from_dict(document["har"]),
            plt_ms=document["pltMs"],
            pool_stats=PoolStats.from_dict(document["poolStats"]),
            counters=document.get("counters"),
            trace=document.get("trace"),
            metrics=document.get("metrics"),
            spans=document.get("spans"),
            status=document.get("status", "ok"),
        )


class Browser:
    """A simulated Chrome profile bound to one probe's network."""

    def __init__(
        self,
        loop: EventLoop,
        farm: Farm,
        config: BrowserConfig | None = None,
        session_cache: SessionTicketCache | None = None,
        rng: random.Random | None = None,
        obs=None,
        faults: FaultInjector | None = None,
        check=None,
    ) -> None:
        self.loop = loop
        self.farm = farm
        self.config = config or BrowserConfig()
        #: Optional :class:`repro.check.CheckContext` (strict mode);
        #: threaded into every pool/connection and run over each
        #: finished visit.
        self.check = check
        self.session_cache = (
            session_cache if session_cache is not None else SessionTicketCache()
        )
        #: Optional :class:`repro.obs.ObsContext`; drained per visit.
        self.obs = obs
        #: Optional :class:`repro.faults.FaultInjector` shared with the
        #: probe; ``None`` keeps every fault/recovery hook dormant.
        self.faults = faults
        if obs is not None:
            self.session_cache.attach_counters(obs.counters)
        self.rng = rng or random.Random(0)
        self.alt_svc = AltSvcCache()
        self.dns = (
            DnsResolver(
                loop,
                self.config.dns_config,
                rng=random.Random(self.rng.getrandbits(64)),
            )
            if self.config.dns_config is not None
            else None
        )
        if self.dns is not None and faults is not None:
            # Scripted SERVFAIL windows; cached answers keep resolving.
            self.dns.fail_filter = faults.dns_failure

    # ------------------------------------------------------------------

    def visit(self, page: Webpage) -> PageVisit:
        """Load ``page`` to completion and return the HAR + PLT.

        Each visit gets a fresh connection pool (the harness terminates
        all connections between visits); the session-ticket cache is
        owned by the browser and persists across visits until
        :meth:`clear_session_state` is called.
        """
        if self.faults is not None:
            self.faults.begin_visit()
        pool = ConnectionPool(
            self.loop,
            session_cache=self.session_cache,
            transport_config=self.config.transport_config,
            rng=random.Random(self.rng.getrandbits(64)),
            use_session_tickets=self.config.use_session_tickets,
            obs=self.obs,
            faults=self.faults,
            alt_svc=self.alt_svc,
            check=self.check,
            proxy_cache=getattr(self.farm, "proxy_cache", None),
        )
        har = HarLog(page_url=page.url, started_at_ms=self.loop.now)
        start = self.loop.now
        events_before = self.loop.processed_events
        spans = self.obs.spans if self.obs is not None else None
        visit_span = None
        if spans is not None:
            visit_span = spans.begin("visit", page.url, start)
            spans.current_visit = visit_span

        wave1 = [r for r in page.resources if r.wave == 1]
        wave0 = [r for r in page.resources if r.wave == 0]
        blocking0 = {
            r.url for r in wave0 if r.rtype in (ResourceType.CSS, ResourceType.JS)
        }
        state = {
            "outstanding": 1 + len(page.resources),
            "blocking_remaining": len(blocking0),
            "wave1_dispatched": not wave1,  # nothing to defer
        }

        def on_entry(
            resource: Resource,
            record: FetchRecord,
            dns_ms: float,
            requested_at: float,
        ) -> None:
            har.entries.append(
                self._to_har_entry(resource, record, dns_ms, requested_at)
            )
            state["outstanding"] -= 1
            if resource.url in blocking0:
                state["blocking_remaining"] -= 1
            if record.headers:
                self.alt_svc.observe(record.host, record.headers, self.loop.now)
            if resource.rtype is ResourceType.HTML:
                for sub in wave0:
                    self._fetch(pool, sub, on_entry)
                if not blocking0 and not state["wave1_dispatched"]:
                    state["wave1_dispatched"] = True
                    for sub in wave1:
                        self._fetch(pool, sub, on_entry)
            if (
                state["blocking_remaining"] == 0
                and not state["wave1_dispatched"]
            ):
                state["wave1_dispatched"] = True
                for sub in wave1:
                    self._fetch(pool, sub, on_entry)

        self._fetch(pool, page.html, on_entry)
        self.loop.run_until(lambda: state["outstanding"] == 0)
        har.on_load_ms = self.loop.now - start
        if visit_span is not None:
            spans.end(visit_span, self.loop.now)
            spans.current_visit = None
        pool.close()
        status = "ok"
        if self.faults is not None:
            stats = pool.stats
            touched_by_faults = (
                stats.failed_requests
                or stats.retried_requests
                or stats.h3_fallbacks
                or stats.connect_timeouts
                or stats.connection_resets
                or any(entry.failed for entry in har.entries)
            )
            if touched_by_faults:
                status = "degraded"
        visit = PageVisit(
            page_url=page.url,
            protocol_mode=self.config.protocol_mode,
            har=har,
            plt_ms=har.on_load_ms,
            pool_stats=pool.stats,
            status=status,
        )
        if self.obs is not None:
            # Deterministic (the loop is): the events this visit drove.
            self.obs.counters.incr(
                "loop.events_processed",
                self.loop.processed_events - events_before,
            )
            (
                visit.counters,
                visit.trace,
                visit.metrics,
                visit.spans,
            ) = self.obs.drain_visit()
        if self.check:
            check_visit(self.check, visit, faults_active=self.faults is not None)
        return visit

    def clear_session_state(self) -> None:
        """Forget tickets, Alt-Svc knowledge and DNS answers
        (a pristine profile)."""
        self.session_cache.clear()
        self.alt_svc.clear()
        if self.dns is not None:
            self.dns.clear()

    # ------------------------------------------------------------------

    def _fetch(self, pool: ConnectionPool, resource: Resource, on_entry) -> None:
        """Resolve the host, then issue the request through the pool."""
        requested_at = self.loop.now

        def after_dns(dns_ms: float) -> None:
            if dns_ms > 0 and self.obs is not None and self.obs.spans is not None:
                # Retroactive: the resolver just reported; zero-cost
                # cached answers are not worth a span each.
                spans = self.obs.spans
                spans.add(
                    "phase", f"dns:{resource.host}",
                    self.loop.now - dns_ms, self.loop.now,
                    parent=spans.current_visit,
                )
            server = self.farm.server(resource.host)
            protocol = self._pick_protocol(server)
            compression = self.config.compression
            if compression is not None:
                from repro.cdn.compression import client_accept_encoding

                accept = client_accept_encoding(
                    resource.url, resource.rtype.value, compression
                )
                rtype_val = resource.rtype.value
            else:
                accept = None
                rtype_val = None
            pool.fetch(
                server=server,
                path=self.farm.path(resource.host),
                protocol=protocol,
                url=resource.url,
                request_bytes=resource.request_bytes,
                response_bytes=resource.size_bytes,
                on_complete=lambda record: on_entry(
                    resource, record, dns_ms, requested_at
                ),
                resource_key=resource.url,
                weight=(
                    RESOURCE_WEIGHTS[resource.rtype]
                    if self.config.use_resource_priorities
                    else 1
                ),
                accept_encoding=accept,
                rtype=rtype_val,
            )

        if self.dns is None:
            after_dns(0.0)
            return
        if self.faults is None:
            self.dns.resolve(resource.host, after_dns)
            return

        def attempt_resolve(attempt: int) -> None:
            # On a retry the resolver would report only the *final*
            # attempt's latency; the entry's dns phase must cover the
            # whole span since the request was made (failed attempts
            # and backoff included) or the phases no longer sum to the
            # entry's total time.
            on_done = (
                after_dns
                if attempt == 0
                else lambda _ms: after_dns(self.loop.now - requested_at)
            )
            self.dns.resolve(
                resource.host,
                on_done,
                on_fail=lambda: on_dns_fail(attempt),
            )

        def on_dns_fail(attempt: int) -> None:
            faults = self.faults
            host = resource.host
            faults.record_fault("dns_failure", host, attempt=attempt)
            policy = faults.retry
            if attempt < policy.max_retries:
                faults.record_recovery("dns_retry", host, attempt=attempt + 1)
                self.loop.call_later(
                    policy.backoff_ms(attempt), attempt_resolve, attempt + 1
                )
                return
            # Resolution never succeeded: record a failed entry so the
            # page load still terminates (graceful degradation).
            now = self.loop.now
            timing = EntryTiming()
            timing.blocked = now - requested_at
            record = FetchRecord(
                url=resource.url,
                host=host,
                protocol=self._pick_protocol(self.farm.server(host)),
                started_at_ms=requested_at,
                timing=timing,
                response_bytes=0,
                request_bytes=resource.request_bytes,
                completed_at_ms=now,
                failed=True,
                error="dns_failure",
            )
            on_entry(resource, record, 0.0, requested_at)

        attempt_resolve(0)

    def _pick_protocol(self, server) -> HttpProtocol:
        """Choose the protocol lane for one request.

        In ``h3-enabled`` mode an H3-capable server is reached over H3
        (directly, or after Alt-Svc discovery when ``use_alt_svc`` is
        set).  Servers without H2 fall back to HTTP/1.1 — the paper's
        Table II "Others" row.
        """
        mode = self.config.protocol_mode
        if (
            mode == H3_ENABLED
            and server.supports_h3
            and not self.alt_svc.h3_broken(server.hostname, self.loop.now)
        ):
            if not self.config.use_alt_svc:
                return HttpProtocol.H3
            if self.alt_svc.knows_h3(server.hostname, self.loop.now):
                return HttpProtocol.H3
        if server.supports_h2:
            return HttpProtocol.H2
        return HttpProtocol.H1

    def _to_har_entry(
        self,
        resource: Resource,
        record: FetchRecord,
        dns_ms: float = 0.0,
        requested_at: float | None = None,
    ) -> HarEntry:
        classification = classify_response(record.host, record.headers)
        record.timing.dns = dns_ms
        started = requested_at if requested_at is not None else record.started_at_ms
        return HarEntry(
            url=record.url,
            host=record.host,
            protocol=record.protocol.value,
            started_at_ms=started,
            time_ms=record.completed_at_ms - started,
            timings=record.timing,
            response_bytes=record.response_bytes,
            request_bytes=record.request_bytes,
            resource_type=resource.rtype.value,
            headers=record.headers,
            reused=record.reused,
            resumed=record.resumed,
            cache_hit=record.cache_hit,
            is_cdn=classification.is_cdn,
            provider=classification.provider_name,
            status=0 if record.failed else 200,
            failed=record.failed,
        )
