"""Client-side TLS session-ticket cache (RFC 8446 §4.6.1 semantics).

The browser holds one cache per profile ("user data directory" in the
paper's Chrome setup).  Tickets are keyed by server hostname.  In the
consecutive-visit experiments the cache *survives* page transitions even
though connections are torn down and the HTTP cache is cleared — that is
exactly the mechanism that lets shared CDN providers accelerate the next
page (paper Section VI-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SessionTicket:
    """A pre-shared-key ticket issued by a server.

    ``host`` is the issuing hostname, ``issued_at_ms`` the simulation
    time of issuance, and ``lifetime_ms`` how long the client may use it
    (RFC 8446 caps this at 7 days; real CDNs use hours).
    """

    host: str
    issued_at_ms: float
    lifetime_ms: float = 3_600_000.0  # one hour, a common CDN default
    ticket_id: int = field(default_factory=itertools.count(1).__next__)

    def valid_at(self, now_ms: float) -> bool:
        """Whether the ticket can still be redeemed at ``now_ms``."""
        return self.issued_at_ms <= now_ms < self.issued_at_ms + self.lifetime_ms


class SessionTicketCache:
    """Hostname → newest ticket, with expiry and hit/miss accounting."""

    def __init__(self) -> None:
        self._tickets: dict[str, SessionTicket] = {}
        self.hits = 0
        self.misses = 0
        self.stored = 0
        # Optional observability registry; mirrored increments go to
        # ``tls.tickets.*`` counters when attached.
        self._counters = None

    def attach_counters(self, registry) -> None:
        """Mirror hit/miss/store accounting into a counter registry."""
        self._counters = registry

    def __len__(self) -> int:
        return len(self._tickets)

    def __contains__(self, host: str) -> bool:
        return host in self._tickets

    def store(self, host: str, now_ms: float, lifetime_ms: float = 3_600_000.0) -> SessionTicket:
        """Record a fresh ticket for ``host`` (replacing any older one)."""
        ticket = SessionTicket(host, issued_at_ms=now_ms, lifetime_ms=lifetime_ms)
        self._tickets[host] = ticket
        self.stored += 1
        if self._counters is not None:
            self._counters.incr("tls.tickets.stored")
        return ticket

    def lookup(self, host: str, now_ms: float) -> SessionTicket | None:
        """Return a valid ticket for ``host`` or ``None``.

        Expired tickets are evicted on lookup.  Hit/miss counters feed
        the Fig. 8(b) resumed-connection analysis.
        """
        ticket = self._tickets.get(host)
        if ticket is None:
            self.misses += 1
            if self._counters is not None:
                self._counters.incr("tls.tickets.misses")
            return None
        if not ticket.valid_at(now_ms):
            del self._tickets[host]
            self.misses += 1
            if self._counters is not None:
                self._counters.incr("tls.tickets.misses")
            return None
        self.hits += 1
        if self._counters is not None:
            self._counters.incr("tls.tickets.hits")
        return ticket

    def clear(self) -> None:
        """Forget everything (a fresh browser profile)."""
        self._tickets.clear()

    def hosts(self) -> frozenset[str]:
        """Hostnames with a stored (possibly expired) ticket."""
        return frozenset(self._tickets)
