"""TLS session-resumption substrate.

The handshake *latency* state machines live in :mod:`repro.transport`
(they are inseparable from packet exchange); this package owns the other
half of TLS that the paper's Fig. 8 / Table III analysis depends on:
**session tickets** and the client-side cache that decides whether the
next connection to a host can resume (H2: TCP round trip + 0-RTT TLS
early data; H3: full 0-RTT).
"""

from repro.tls.session_cache import SessionTicket, SessionTicketCache
from repro.tls.handshake import HandshakePlan, plan_handshake

__all__ = ["HandshakePlan", "SessionTicket", "SessionTicketCache", "plan_handshake"]
