"""Handshake planning: protocol suite + ticket state → round-trip cost.

This is the declarative summary of the latency semantics the transport
layer implements with real packet exchanges.  The HTTP layer uses it to
decide which connection class/flags to instantiate, and the docs/tests
use it as the single source of truth for the paper's RTT table
(Section II-A: H3 reduces the handshake "from three round-trip times to
just one").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.tcp import TlsVersion


@dataclass(frozen=True)
class HandshakePlan:
    """Round trips a protocol suite pays before the request may be sent."""

    protocol: str  # "h1", "h2" or "h3"
    tls_version: TlsVersion | None
    resumed: bool
    rtts_before_request: int

    @property
    def zero_rtt(self) -> bool:
        """True when application data rides the very first flight."""
        return self.rtts_before_request == 0


def plan_handshake(
    protocol: str,
    tls_version: TlsVersion = TlsVersion.TLS13,
    has_ticket: bool = False,
    tls13_early_data: bool = False,
) -> HandshakePlan:
    """Compute the handshake round trips for a protocol suite.

    ===================================  ==========
    Suite                                RTTs
    ===================================  ==========
    H1.1/H2 + TLS 1.2                    3
    H1.1/H2 + TLS 1.2 resumed            2
    H1.1/H2 + TLS 1.3                    2
    H1.1/H2 + TLS 1.3 resumed            2 (no latency win: browsers
                                            don't send TCP early data)
    H1.1/H2 + TLS 1.3 resumed + 0-RTT    1 (early data enabled)
    H3 (QUIC)                            1
    H3 resumed (0-RTT)                   0
    ===================================  ==========
    """
    protocol = protocol.lower()
    if protocol == "h3":
        return HandshakePlan("h3", None, has_ticket, 0 if has_ticket else 1)
    if protocol not in ("h1", "h2"):
        raise ValueError(f"unknown protocol {protocol!r}; expected h1, h2 or h3")
    if tls_version is TlsVersion.TLS12:
        rtts = 2 if has_ticket else 3
    elif has_ticket and tls13_early_data:
        rtts = 1
    else:
        rtts = 2
    return HandshakePlan(protocol, tls_version, has_ticket, rtts)
