"""TCP connection model: the substrate for HTTP/1.1 and HTTP/2.

Two properties of TCP matter for the paper and both live here:

* **Handshake cost.**  A TCP connection needs a SYN/SYN-ACK round trip
  before TLS can even start; TLS 1.2 adds two more round trips, TLS 1.3
  one, and a resumed TLS 1.3 session with early data rides the first
  application flight (so only the TCP round trip remains — this is why
  H2's "resumed" connections still pay 1 RTT while H3's 0-RTT pays none).
* **In-order delivery.**  The receiver releases bytes to the application
  strictly in connection order.  When a packet is lost, every
  later-arriving packet — *even ones carrying unrelated streams* — sits
  in the reorder buffer until the retransmission fills the gap.  That is
  head-of-line blocking, the mechanism behind the paper's Fig. 9.
"""

from __future__ import annotations

import enum

from repro.netsim.packet import Packet
from repro.transport.base import BaseConnection


class TlsVersion(enum.Enum):
    """TLS versions the paper's protocol suites use."""

    TLS12 = "tls1.2"
    TLS13 = "tls1.3"


class TcpConnection(BaseConnection):
    """A TCP+TLS connection between one probe and one server."""

    protocol_name = "tcp"

    def __init__(
        self,
        *args,
        tls_version: TlsVersion = TlsVersion.TLS13,
        resumed: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.tls_version = tls_version
        self.resumed = resumed
        # Receiver reassembly: next in-order connection byte expected,
        # plus a buffer of out-of-order packets keyed by stream position.
        self._rcv_next = 0
        self._reorder_buffer: dict[int, Packet] = {}
        # When the current HoL stall began (reorder buffer went
        # non-empty); None while delivery is flowing in order.
        self._stall_started_at: float | None = None

    def _handshake_flights(self) -> int:
        tcp_flights = 1  # SYN / SYN-ACK
        if self.tls_version is TlsVersion.TLS12:
            # TLS 1.2 has no early data; resumption (session IDs/tickets)
            # still saves one of its two round trips.
            tls_flights = 1 if self.resumed else 2
        else:
            # TLS 1.3 completes in one round trip either way.  A resumed
            # session only skips that round trip if the client ships the
            # request as 0-RTT early data — which browsers disable by
            # default (replay risk), so H2 resumption normally saves CPU
            # but no latency.  This asymmetry against QUIC's 0-RTT is
            # what the paper's Section VI-D measures.
            if self.resumed and self.config.tls13_early_data:
                tls_flights = 0
            else:
                tls_flights = 1
        return tcp_flights + tls_flights

    @property
    def tcp_connect_ms(self) -> float | None:
        """Duration of the TCP (pre-TLS) portion of the handshake."""
        if self.handshake is None or not self.handshake.flight_times_ms:
            return None
        return self.handshake.flight_times_ms[0]

    @property
    def ssl_ms(self) -> float | None:
        """Duration of the TLS portion of the handshake."""
        if self.handshake is None:
            return None
        tcp = self.tcp_connect_ms or 0.0
        return self.handshake.connect_ms - tcp

    # ------------------------------------------------------------------
    # In-order (head-of-line blocked) delivery
    # ------------------------------------------------------------------

    def _on_data_packet_received(self, pkt: Packet) -> None:
        start = pkt.conn_start
        if start < self._rcv_next:
            return  # duplicate of already-delivered data
        if start > self._rcv_next:
            # Gap: buffer and wait for the retransmission.  Everything
            # in this buffer — any stream — is HoL-blocked.
            if start not in self._reorder_buffer:
                if not self._reorder_buffer:
                    # The connection just became HoL-blocked.
                    self._stall_started_at = self.loop.now
                    if self.tracer:
                        self.tracer.event(
                            self.loop.now, "transport:hol_stall_started",
                            blocked_from=self._rcv_next,
                        )
                self._reorder_buffer[start] = pkt
                self.stats.hol_blocked_chunks += len(pkt.chunks)
            return
        self._release_packet(pkt)
        while self._rcv_next in self._reorder_buffer:
            self._release_packet(self._reorder_buffer.pop(self._rcv_next))
        if not self._reorder_buffer and self._stall_started_at is not None:
            duration = self.loop.now - self._stall_started_at
            self._stall_started_at = None
            self.stats.hol_stalls += 1
            self.stats.hol_stall_ms += duration
            if self.tracer:
                self.tracer.event(
                    self.loop.now, "transport:hol_stall_ended",
                    duration_ms=duration,
                )

    def _release_packet(self, pkt: Packet) -> None:
        self._rcv_next += pkt.payload_bytes
        for chunk in pkt.chunks:
            self._deliver_chunk(chunk)

    def _fast_path_sync(self, stream_ends: dict[int, int], payload_bytes: int) -> None:
        # A loss-free epoch delivers strictly in connection-byte order,
        # so the whole payload advances the in-order cursor at once (the
        # epoch never runs while the reorder buffer holds a gap: it
        # requires every in-flight packet to be acked first).
        self._rcv_next += payload_bytes

    @property
    def reorder_buffer_bytes(self) -> int:
        """Bytes currently stuck behind a gap (diagnostics)."""
        return sum(p.payload_bytes for p in self._reorder_buffer.values())
