"""Connection machinery shared by the TCP and QUIC models.

A :class:`BaseConnection` simulates *both* endpoints of one
client↔server connection, exchanging packets over a lossy
:class:`~repro.netsim.path.NetworkPath`:

* The **handshake** is a configurable number of sequential round trips
  (each flight is a real packet subject to loss, with timeout-based
  retransmission).  Subclasses define how many flights their protocol
  stack needs; zero flights models QUIC 0-RTT.
* The **client side** sends requests reliably (per-packet ack +
  retransmission timer) and reassembles response bytes.  How received
  packets are *released to the application* is the subclass hook where
  TCP's head-of-line blocking vs QUIC's stream independence lives.
* The **server side** queues response bytes per stream after a think
  time, round-robins MSS-sized chunks across active streams (emulating
  H2/H3 frame interleaving), and paces transmission with a pluggable
  congestion controller.  Loss detection uses QUIC-style packet numbers
  with a packet threshold, plus a probe timeout (PTO) fallback.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.check.context import NULL_CHECK
from repro.check.controller import CheckedController
from repro.events import EventLoop, Timer
from repro.netsim.packet import Packet, PacketKind, StreamChunk
from repro.netsim.path import NetworkPath
from repro.obs.metrics import NULL_SAMPLER
from repro.obs.trace import NULL_TRACER
from repro.transport import fastpath
from repro.transport.config import TransportConfig
from repro.transport.congestion import CongestionController, make_congestion_controller
from repro.transport.rtt import RttEstimator


class TransportError(RuntimeError):
    """Raised when a connection gives up (handshake/request retries exhausted)."""


@dataclass
class HandshakeResult:
    """Timing of a completed handshake.

    ``flight_times_ms`` holds the completion time of each round trip
    relative to ``connect()``; the HTTP layer uses the first entry to
    split HAR ``connect`` into TCP vs SSL portions.
    """

    connect_ms: float
    flight_times_ms: tuple[float, ...]
    zero_rtt: bool
    retries: int


@dataclass
class ConnectionStats:
    """Per-connection counters used by tests and the analysis layer."""

    data_packets_sent: int = 0
    data_packets_lost: int = 0
    retransmissions: int = 0
    acks_received: int = 0
    rto_events: int = 0
    handshake_retries: int = 0
    request_retransmissions: int = 0
    hol_blocked_chunks: int = 0
    #: Completed HoL-stall intervals (reorder buffer non-empty → empty).
    hol_stalls: int = 0
    hol_stall_ms: float = 0.0
    #: Analytic fast-path epochs run (response transfers advanced
    #: arithmetically instead of per-packet; 0 on the packet path).
    fast_path_epochs: int = 0


class ClientStream:
    """Client-side view of one request/response exchange."""

    __slots__ = (
        "stream_id",
        "request_bytes",
        "response_bytes",
        "on_first_byte",
        "on_complete",
        "opened_at",
        "received",
        "t_first_byte",
        "t_complete",
    )

    def __init__(
        self,
        stream_id: int,
        request_bytes: int,
        response_bytes: int,
        on_first_byte: Callable[[float], None] | None,
        on_complete: Callable[[float], None] | None,
        opened_at: float,
    ) -> None:
        self.stream_id = stream_id
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.on_first_byte = on_first_byte
        self.on_complete = on_complete
        self.opened_at = opened_at
        self.received = 0
        self.t_first_byte: float | None = None
        self.t_complete: float | None = None

    @property
    def complete(self) -> bool:
        return self.t_complete is not None


class _ServerStream:
    """Server-side state of one stream: request reassembly + send queue."""

    __slots__ = (
        "stream_id",
        "response_bytes",
        "think_ms",
        "weight",
        "request_received",
        "request_total",
        "request_offsets",
        "response_queued",
        "next_offset",
    )

    def __init__(
        self,
        stream_id: int,
        response_bytes: int,
        think_ms: float = 0.0,
        weight: int = 1,
    ) -> None:
        self.stream_id = stream_id
        self.response_bytes = response_bytes
        self.think_ms = think_ms
        #: H2/H3 priority weight: chunks sent per round-robin turn.
        self.weight = max(1, weight)
        self.request_received = 0
        self.request_total: int | None = None  # known once fin arrives
        self.request_offsets: set[int] = set()
        self.response_queued = False
        self.next_offset = 0  # next response byte to chunk for sending

    @property
    def request_complete(self) -> bool:
        return self.request_total is not None and self.request_received >= self.request_total

    @property
    def send_remaining(self) -> int:
        return self.response_bytes - self.next_offset if self.response_queued else 0


@dataclass(slots=True)
class _Inflight:
    """A data packet awaiting acknowledgement."""

    seq: int
    chunk: StreamChunk
    conn_start: int
    size_bytes: int
    sent_at: float
    retransmission: bool


@dataclass(slots=True)
class _PendingRequestPacket:
    packet: Packet
    timer: Timer
    tries: int = 0


class BaseConnection:
    """One simulated connection; see module docstring.

    Subclasses must implement :meth:`_handshake_flights` (round trips
    before requests may be sent) and :meth:`_on_data_packet_received`
    (delivery-order semantics).
    """

    protocol_name = "base"

    def __init__(
        self,
        loop: EventLoop,
        path: NetworkPath,
        config: TransportConfig | None = None,
        cc: CongestionController | None = None,
        rng: random.Random | None = None,
        server_think_ms: float = 0.0,
        name: str = "",
        tracer=None,
        check=None,
        sampler=None,
    ) -> None:
        self.loop = loop
        self.path = path
        self.config = config or TransportConfig()
        #: qlog-style event tracer.  The null tracer is *falsy*; every
        #: hot-path instrumentation point is guarded with
        #: ``if self.tracer:`` so disabled tracing costs one attribute
        #: load + bool check and results stay bit-identical.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Invariant checker (strict mode); same null-object pattern.
        self.check = check if check is not None else NULL_CHECK
        #: Sim-time metrics sampler (repro.obs.metrics); same falsy
        #: null-object pattern, guarded with ``if self.sampler:``.
        self.sampler = sampler if sampler is not None else NULL_SAMPLER
        self.cc = cc or make_congestion_controller(
            self.config.congestion_control,
            self.config.mss,
            self.config.initial_cwnd_packets,
        )
        if self.check:
            # Observe-only proxy: every CC transition is sanity-checked
            # but the wrapped controller's decisions are untouched.
            self.cc = CheckedController(self.cc, self.check, self.config.mss)
        self.rng = rng or random.Random(0)
        self.server_think_ms = server_think_ms
        self.name = name
        self.stats = ConnectionStats()
        self.rtt = RttEstimator(self.config.initial_rto_ms, self.config.min_rto_ms)

        # Handshake state.
        self.established = False
        self.zero_rtt = False
        self.closed = False
        self.handshake: HandshakeResult | None = None
        self._connect_started_at: float | None = None
        self._hs_flight = 0
        self._hs_total = 0
        self._hs_retries = 0
        self._hs_flight_times: list[float] = []
        self._hs_timer = Timer(loop, self._on_handshake_timeout)
        self._on_established: Callable[[HandshakeResult], None] | None = None
        self._on_failed: Callable[[TransportError], None] | None = None
        #: Optional sink for terminal client-side errors after the
        #: handshake (request retransmission budget exhausted).  When
        #: set — the pool installs one while fault injection is active —
        #: the connection closes itself and reports instead of raising
        #: out of the event loop.
        self.on_error: Callable[[TransportError], None] | None = None

        # Client request side.
        self._next_stream_id = itertools.count(1)
        self.streams: dict[int, ClientStream] = {}
        self._req_seq = itertools.count(1)
        self._pending_requests: dict[int, _PendingRequestPacket] = {}

        # Client delayed-ack state: data-packet numbers received but not
        # yet acknowledged.  Flushed every ``ack_frequency`` packets, on
        # any sequence anomaly (gap/reorder — RFC 9000 §13.2.1), or when
        # the ``max_ack_delay`` timer fires.
        self._ack_pending: list[int] = []
        self._ack_largest_received = 0
        self._ack_last_recv_at = 0.0
        self._ack_timer = Timer(loop, self._flush_acks)

        # Server send side.
        self._server_streams: dict[int, _ServerStream] = {}
        self._send_queue: deque[int] = deque()  # stream ids with data to send
        self._retx_queue: deque[tuple[StreamChunk, int]] = deque()  # (chunk, conn_start)
        self._next_pkt_seq = itertools.count(1)
        self._largest_sent = 0
        self._largest_acked = 0
        self._inflight: dict[int, _Inflight] = {}
        self._bytes_in_flight = 0
        self._recovery_until_seq = 0
        self._pto_timer = Timer(loop, self._on_pto)
        self._pto_backoff = 1
        self._conn_send_offset = 0  # TCP byte-stream position (subclasses use it)
        # Delivery-rate accounting for model-based controllers (BBR).
        self._first_data_sent_at: float | None = None
        self._delivered_bytes = 0
        # Last cwnd the tracer logged (metrics events are emitted only
        # on ≥1-MSS changes so traces stay bounded).
        self._traced_cwnd = self.cc.cwnd_bytes
        # Analytic fast path (repro.transport.fastpath): opt-in via
        # config, and forced off under tracing, strict checking or
        # metrics sampling — all want the real per-packet path.  Path
        # eligibility (loss-free, jitter-free, unfiltered) is re-checked
        # per attempt.
        self._fast_path_enabled = (
            self.config.fast_path
            and not self.tracer
            and not self.check
            and not self.sampler
        )
        #: The in-progress analytic walk (``fastpath._Epoch``), parked
        #: here between its yield points; None when the packet path (or
        #: nothing) is driving the send side.
        self._fp_epoch = None

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    def _handshake_flights(self) -> int:
        """Round trips needed before request data may be sent."""
        raise NotImplementedError

    def connect(
        self,
        on_established: Callable[[HandshakeResult], None],
        on_failed: Callable[[TransportError], None] | None = None,
    ) -> None:
        """Begin the handshake; ``on_established`` fires when done.

        With a zero-flight plan (QUIC 0-RTT) the connection is usable
        immediately and the callback fires synchronously.

        ``on_failed`` (optional) receives the terminal
        :class:`TransportError` if the handshake retry budget runs out;
        without it the error propagates out of the event loop as before.
        """
        if self.established or self._connect_started_at is not None:
            raise TransportError("connect() called twice")
        self._connect_started_at = self.loop.now
        self._on_established = on_established
        self._on_failed = on_failed
        self._hs_total = self._handshake_flights()
        if self.tracer:
            self.tracer.event(
                self.loop.now, "transport:handshake_started",
                flights=self._hs_total,
            )
        if self._hs_total == 0:
            self.zero_rtt = True
            self._finish_handshake()
            return
        self._send_handshake_flight()

    def _send_handshake_flight(self) -> None:
        pkt = Packet(PacketKind.HANDSHAKE, seq=self._hs_flight)
        self.path.send_to_server(pkt, self._server_on_handshake)
        timeout = self.rtt.rto_ms * self._hs_backoff()
        self._hs_timer.start(timeout)

    def _hs_backoff(self) -> float:
        return float(2 ** min(self._hs_retries, 6))

    def _on_handshake_timeout(self) -> None:
        self._hs_retries += 1
        self.stats.handshake_retries += 1
        if self.tracer:
            self.tracer.event(
                self.loop.now, "recovery:handshake_timeout",
                flight=self._hs_flight, retries=self._hs_retries,
            )
        if self._hs_retries > self.config.max_handshake_retries:
            error = TransportError(
                f"{self.name or self.protocol_name}: handshake failed after "
                f"{self._hs_retries - 1} retries"
            )
            if self._on_failed is not None:
                self.close()
                self._on_failed(error)
                return
            raise error
        self._send_handshake_flight()

    def _server_on_handshake(self, pkt: Packet) -> None:
        # The server is stateless here: it simply echoes the flight
        # number, which also covers retransmitted (duplicate) flights.
        reply = Packet(PacketKind.HANDSHAKE, seq=pkt.seq)
        self.path.send_to_client(reply, self._client_on_handshake_reply)

    def _client_on_handshake_reply(self, pkt: Packet) -> None:
        if self.established or pkt.seq != self._hs_flight:
            return  # stale or duplicate reply
        assert self._connect_started_at is not None
        elapsed = self.loop.now - self._connect_started_at
        self._hs_flight_times.append(elapsed)
        if self.tracer:
            self.tracer.event(
                self.loop.now, "transport:handshake_flight",
                flight=self._hs_flight, elapsed_ms=elapsed,
            )
        # A full flight is an RTT sample for the estimator (Karn: only
        # when this flight was never retransmitted; approximated by "no
        # retries so far", which is exact for flight 0).
        if self._hs_retries == 0:
            previous = self._hs_flight_times[-2] if len(self._hs_flight_times) > 1 else 0.0
            self.rtt.on_sample(elapsed - previous)
        self._hs_flight += 1
        if self._hs_flight >= self._hs_total:
            self._hs_timer.stop()
            self._finish_handshake()
        else:
            self._send_handshake_flight()

    def _finish_handshake(self) -> None:
        assert self._connect_started_at is not None
        self.established = True
        self.handshake = HandshakeResult(
            connect_ms=self.loop.now - self._connect_started_at,
            flight_times_ms=tuple(self._hs_flight_times),
            zero_rtt=self.zero_rtt,
            retries=self._hs_retries,
        )
        if self.tracer:
            self.tracer.event(
                self.loop.now, "transport:handshake_completed",
                connect_ms=self.handshake.connect_ms,
                zero_rtt=self.zero_rtt,
                retries=self._hs_retries,
            )
        if self._on_established is not None:
            self._on_established(self.handshake)

    # ------------------------------------------------------------------
    # Client: sending requests
    # ------------------------------------------------------------------

    @property
    def can_send_requests(self) -> bool:
        """Requests may flow once established (or immediately for 0-RTT)."""
        return not self.closed and (self.established or self.zero_rtt)

    def request(
        self,
        request_bytes: int,
        response_bytes: int,
        think_ms: float | None = None,
        on_first_byte: Callable[[float], None] | None = None,
        on_complete: Callable[[float], None] | None = None,
        weight: int = 1,
    ) -> ClientStream:
        """Issue one request; returns the client-side stream handle.

        ``think_ms`` overrides the connection-level server think time
        for this request (used to model cache hits vs origin fetches).
        ``weight`` is the stream's priority: the sender emits that many
        chunks per scheduling turn (H2 stream weights / H3 priorities).
        """
        if not self.can_send_requests:
            raise TransportError("connection not ready for requests")
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("request and response sizes must be positive")
        stream_id = next(self._next_stream_id)
        stream = ClientStream(
            stream_id,
            request_bytes,
            response_bytes,
            on_first_byte,
            on_complete,
            opened_at=self.loop.now,
        )
        if self.tracer:
            self.tracer.event(
                self.loop.now, "http:stream_opened",
                stream_id=stream_id,
                request_bytes=request_bytes,
                response_bytes=response_bytes,
            )
        self.streams[stream_id] = stream
        self._server_streams[stream_id] = _ServerStream(
            stream_id,
            response_bytes,
            think_ms=self.server_think_ms if think_ms is None else think_ms,
            weight=weight,
        )
        mss = self.config.mss
        offset = 0
        while offset < request_bytes:
            size = min(mss, request_bytes - offset)
            fin = offset + size >= request_bytes
            chunk = StreamChunk(stream_id, offset, size, fin)
            self._send_request_packet(chunk)
            offset += size
        return stream

    def _send_request_packet(self, chunk: StreamChunk, tries: int = 0) -> None:
        seq = next(self._req_seq)
        pkt = Packet(PacketKind.DATA, seq=seq, chunks=(chunk,), sent_at=self.loop.now)
        pkt.retransmission = tries > 0
        if self.tracer:
            self.tracer.packet_sent(
                self.loop.now, seq, pkt.size_bytes, "c2s", tries > 0
            )
        timer = Timer(self.loop, lambda: self._on_request_timeout(seq))
        self._pending_requests[seq] = _PendingRequestPacket(pkt, timer, tries)
        timer.start(self.rtt.rto_ms * (2 ** min(tries, 6)))
        self.path.send_to_server(pkt, self._server_on_packet)

    def _on_request_timeout(self, seq: int) -> None:
        pending = self._pending_requests.pop(seq, None)
        if pending is None:
            return
        self.stats.request_retransmissions += 1
        if pending.tries + 1 > self.config.max_request_retries:
            error = TransportError(
                f"{self.name or self.protocol_name}: request packet lost "
                f"{pending.tries + 1} times"
            )
            if self.on_error is not None:
                self.close()
                self.on_error(error)
                return
            raise error
        self._send_request_packet(pending.packet.chunks[0], pending.tries + 1)

    def _client_on_request_ack(self, pkt: Packet) -> None:
        pending = self._pending_requests.pop(pkt.ack_seq, None)
        if pending is None:
            return
        pending.timer.stop()
        if not pending.packet.retransmission:
            self.rtt.on_sample(self.loop.now - pending.packet.sent_at)

    # ------------------------------------------------------------------
    # Server: receiving requests, queueing and sending responses
    # ------------------------------------------------------------------

    def _server_on_packet(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.ACK:
            self._server_on_ack(pkt)
            return
        # A request data packet: ack it, then absorb new chunks.
        ack = Packet(PacketKind.ACK, ack_seq=pkt.seq)
        self.path.send_to_client(ack, self._client_on_packet_from_server)
        for chunk in pkt.chunks:
            self._server_absorb_request_chunk(chunk)

    def _server_absorb_request_chunk(self, chunk: StreamChunk) -> None:
        sstream = self._server_streams.get(chunk.stream_id)
        if sstream is None or chunk.offset in sstream.request_offsets:
            return  # unknown stream or duplicate delivery
        sstream.request_offsets.add(chunk.offset)
        sstream.request_received += chunk.size
        if chunk.fin:
            sstream.request_total = chunk.end
        if sstream.request_complete and not sstream.response_queued:
            sstream.response_queued = True
            think = sstream.think_ms
            if think > 0:
                self.loop.call_later(think, self._server_enqueue_response, sstream)
            else:
                self._server_enqueue_response(sstream)

    def _server_enqueue_response(self, sstream: _ServerStream) -> None:
        if sstream.stream_id not in self._send_queue:
            self._send_queue.append(sstream.stream_id)
        self._try_send()

    def _try_send(self) -> None:
        """Transmit as much as the congestion window allows.

        Retransmissions are sent first and are exempt from the window
        check (loss-recovery packets must not be starved by the very
        congestion event that caused them).
        """
        if self._fast_path_enabled and fastpath.advance(self):
            return
        sent_any = False
        while self._retx_queue:
            chunk, conn_start = self._retx_queue.popleft()
            self._send_data_packet(chunk, conn_start, retransmission=True)
            sent_any = True
        mss = self.config.mss
        while self._send_queue:
            if self._bytes_in_flight + mss > self.cc.cwnd_bytes:
                break
            stream_id = self._send_queue[0]
            sstream = self._server_streams[stream_id]
            if sstream.send_remaining <= 0:
                self._send_queue.popleft()
                continue
            # Weighted round-robin: a stream emits up to ``weight``
            # chunks per turn (H2 stream weights / H3 priorities),
            # then yields to the next stream.
            fin = False
            for _ in range(sstream.weight):
                remaining = sstream.send_remaining
                if remaining <= 0:
                    break
                if self._bytes_in_flight + mss > self.cc.cwnd_bytes:
                    break
                size = min(mss, remaining)
                fin = sstream.next_offset + size >= sstream.response_bytes
                chunk = StreamChunk(stream_id, sstream.next_offset, size, fin)
                conn_start = self._conn_send_offset
                self._conn_send_offset += size
                sstream.next_offset += size
                self._send_data_packet(chunk, conn_start, retransmission=False)
                sent_any = True
            self._send_queue.rotate(-1)
            if fin:
                # Drop the stream from the queue wherever it now is.
                try:
                    self._send_queue.remove(stream_id)
                except ValueError:  # pragma: no cover - defensive
                    pass
        if sent_any and self._inflight and not self._pto_timer.armed:
            self._arm_pto()

    def _send_data_packet(
        self, chunk: StreamChunk, conn_start: int, retransmission: bool
    ) -> None:
        seq = next(self._next_pkt_seq)
        pkt = Packet(
            PacketKind.DATA,
            seq=seq,
            chunks=(chunk,),
            sent_at=self.loop.now,
            retransmission=retransmission,
            conn_start=conn_start,
        )
        self._largest_sent = seq
        if self._first_data_sent_at is None:
            self._first_data_sent_at = self.loop.now
        self._inflight[seq] = _Inflight(
            seq, chunk, conn_start, pkt.size_bytes, self.loop.now, retransmission
        )
        self._bytes_in_flight += pkt.size_bytes
        self.stats.data_packets_sent += 1
        if retransmission:
            self.stats.retransmissions += 1
        if self.tracer:
            self.tracer.packet_sent(
                self.loop.now, seq, pkt.size_bytes, "s2c", retransmission
            )
        self.path.send_to_client(pkt, self._client_on_packet_from_server)
        self._arm_pto()

    def _server_on_ack(self, pkt: Packet) -> None:
        # One ACK packet may cover several data packets (``sack`` lists
        # every newly-received packet number; ``ack_seq`` is the largest).
        acked = pkt.sack or (pkt.ack_seq,)
        largest_info: _Inflight | None = None
        newly_acked = False
        for seq in acked:
            self.stats.acks_received += 1
            info = self._inflight.pop(seq, None)
            if info is None:
                continue  # duplicate or already declared lost
            if self.tracer:
                self.tracer.packet_acked(self.loop.now, seq)
            newly_acked = True
            self._bytes_in_flight -= info.size_bytes
            self.cc.on_ack(info.size_bytes, self.loop.now)
            self._delivered_bytes += info.size_bytes
            if largest_info is None or seq > largest_info.seq:
                largest_info = info
        if not newly_acked:
            return
        # RTT from the largest newly-acked, never-retransmitted packet,
        # net of the receiver's deliberate ack delay (RFC 9002 §5.3).
        if largest_info is not None and not largest_info.retransmission:
            sample = self.loop.now - largest_info.sent_at - pkt.ack_delay_ms
            if sample >= 0:
                self.rtt.on_sample(sample)
        rate_sampler = getattr(self.cc, "on_rate_sample", None)
        if rate_sampler is not None and self.rtt.srtt_ms:
            assert self._first_data_sent_at is not None
            elapsed = self.loop.now - self._first_data_sent_at
            if elapsed > 0:
                rate_sampler(self._delivered_bytes / elapsed, self.rtt.srtt_ms)
        self._largest_acked = max(self._largest_acked, pkt.ack_seq)
        self._pto_backoff = 1
        if self.tracer:
            self._trace_metrics()
        if self.sampler:
            self.sampler.on_ack(self)
        self._detect_losses()
        if self._inflight:
            self._arm_pto()
        else:
            self._pto_timer.stop()
        self._try_send()

    def _detect_losses(self) -> None:
        """Packet-threshold loss detection (RFC 9002 §6.1.1)."""
        threshold = self.config.packet_threshold
        lost = [
            seq
            for seq in self._inflight
            if seq <= self._largest_acked - threshold
        ]
        if not lost:
            return
        newly_entered_recovery = False
        for seq in sorted(lost):
            info = self._inflight.pop(seq)
            self._bytes_in_flight -= info.size_bytes
            self.stats.data_packets_lost += 1
            if self.tracer:
                self.tracer.packet_lost(self.loop.now, seq, "packet_threshold")
            self._retx_queue.append((info.chunk, info.conn_start))
            if seq > self._recovery_until_seq:
                newly_entered_recovery = True
        if newly_entered_recovery:
            # One congestion response per round trip worth of losses.
            self.cc.on_loss(self.loop.now)
            self._recovery_until_seq = self._largest_sent
            if self.tracer:
                self._trace_metrics(force=True)
            if self.sampler:
                self.sampler.on_loss(self)

    def _arm_pto(self) -> None:
        # RFC 9002 §6.2.1: the peer may legitimately sit on an ACK for
        # up to max_ack_delay, so the probe timeout budgets for it.
        timeout = (self.rtt.rto_ms + self.config.max_ack_delay_ms) * self._pto_backoff
        self._pto_timer.start(timeout)

    def on_path_migration(self) -> None:
        """The client's address changed and this connection migrated.

        RFC 9002 §6.2.2 / RFC 9000 §9.4: the old path's backoff says
        nothing about the new path, so validating it resets the PTO
        backoff; re-arming from the fresh backoff probes the new path
        promptly instead of waiting out a timer that exponential
        backoff armed before the address change.
        """
        self._pto_backoff = 1
        if self._inflight:
            self._arm_pto()

    def _on_pto(self) -> None:
        if not self._inflight:
            return
        self.stats.rto_events += 1
        if self.tracer:
            self.tracer.event(
                self.loop.now, "recovery:pto_fired", backoff=self._pto_backoff
            )
        self._pto_backoff = min(self._pto_backoff * 2, 64)
        # RFC 9002 §7.4: a probe timeout does NOT collapse the window;
        # only *persistent* congestion (consecutive timeouts with no
        # intervening ack) does.  Modern TCP behaves similarly via tail
        # loss probes.
        if self._pto_backoff > 2:
            self.cc.on_rto(self.loop.now)
        oldest_seq = min(self._inflight)
        info = self._inflight.pop(oldest_seq)
        self._bytes_in_flight -= info.size_bytes
        self.stats.data_packets_lost += 1
        if self.tracer:
            self.tracer.packet_lost(self.loop.now, oldest_seq, "pto")
            self._trace_metrics(force=True)
        if self.sampler:
            self.sampler.on_loss(self)
        self._retx_queue.append((info.chunk, info.conn_start))
        if oldest_seq > self._recovery_until_seq:
            self._recovery_until_seq = self._largest_sent
        self._try_send()
        if self._inflight:
            self._arm_pto()

    # ------------------------------------------------------------------
    # Client: receiving response data
    # ------------------------------------------------------------------

    def _client_on_packet_from_server(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.ACK:
            self._client_on_request_ack(pkt)
            return
        # Receipt, not delivery, drives acking — this is what lets the
        # sender learn about gaps while the receiver is HoL-blocked.
        # ACKs are batched: every ``ack_frequency`` packets in the smooth
        # case, immediately on any sequence anomaly (a gap means loss
        # detection is waiting on this ACK), with a max_ack_delay timer
        # backstop so tail packets are never acked late.
        seq = pkt.seq
        if self.tracer:
            self.tracer.packet_received(
                self.loop.now, seq, pkt.size_bytes, pkt.retransmission
            )
        out_of_order = seq != self._ack_largest_received + 1
        if seq > self._ack_largest_received:
            self._ack_largest_received = seq
        self._ack_pending.append(seq)
        self._ack_last_recv_at = self.loop.now
        if (
            out_of_order
            or pkt.retransmission
            or len(self._ack_pending) >= self.config.ack_frequency
        ):
            self._flush_acks()
        elif not self._ack_timer.armed:
            self._ack_timer.start(self.config.max_ack_delay_ms)
        self._on_data_packet_received(pkt)

    def _flush_acks(self) -> None:
        """Send one ACK covering every pending data-packet number."""
        if not self._ack_pending:
            return
        self._ack_timer.stop()
        pending = tuple(sorted(self._ack_pending))
        self._ack_pending.clear()
        ack = Packet(
            PacketKind.ACK,
            ack_seq=pending[-1],
            sack=pending,
            ack_delay_ms=self.loop.now - self._ack_last_recv_at,
        )
        self.path.send_to_server(ack, self._server_on_packet)

    def _on_data_packet_received(self, pkt: Packet) -> None:
        """Subclass hook: buffer/reorder and eventually deliver chunks."""
        raise NotImplementedError

    def _deliver_chunk(self, chunk: StreamChunk) -> None:
        """Hand in-order stream bytes to the application layer."""
        stream = self.streams.get(chunk.stream_id)
        if stream is None:
            return
        if self.check:
            self.check.require(
                chunk.size > 0,
                "stream:chunk_positive",
                "delivered an empty stream chunk",
                time_ms=self.loop.now,
                stream_id=chunk.stream_id,
                offset=chunk.offset,
            )
            self.check.require(
                stream.received + chunk.size <= stream.response_bytes,
                "stream:byte_conservation",
                "delivered more bytes than the response holds "
                "(overlapping or duplicated chunks)",
                time_ms=self.loop.now,
                stream_id=chunk.stream_id,
                received=stream.received,
                chunk_size=chunk.size,
                response_bytes=stream.response_bytes,
            )
        if stream.t_first_byte is None:
            stream.t_first_byte = self.loop.now
            if stream.on_first_byte is not None:
                stream.on_first_byte(self.loop.now)
        stream.received += chunk.size
        if stream.received >= stream.response_bytes and stream.t_complete is None:
            if self.check:
                self.check.require(
                    stream.received == stream.response_bytes,
                    "stream:byte_conservation",
                    "stream completed with delivered != requested bytes",
                    time_ms=self.loop.now,
                    stream_id=chunk.stream_id,
                    received=stream.received,
                    response_bytes=stream.response_bytes,
                )
            stream.t_complete = self.loop.now
            if self.tracer:
                self.tracer.event(
                    self.loop.now, "http:stream_closed",
                    stream_id=stream.stream_id,
                    first_byte_ms=(stream.t_first_byte or 0.0) - stream.opened_at,
                    duration_ms=self.loop.now - stream.opened_at,
                )
            if stream.on_complete is not None:
                stream.on_complete(self.loop.now)

    # ------------------------------------------------------------------
    # Analytic fast path (repro.transport.fastpath) support
    # ------------------------------------------------------------------

    def _fast_path_sync(self, stream_ends: dict[int, int], payload_bytes: int) -> None:
        """Advance receiver reassembly state past an analytic epoch.

        ``stream_ends`` maps each stream id touched by the epoch to its
        final delivered stream offset; ``payload_bytes`` is the epoch's
        total in-order payload.  Subclasses own the reassembly state, so
        each must override this for the fast path to be usable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the analytic fast path"
        )

    def _fast_path_step(self) -> None:
        """Continuation target: resume the parked analytic walk."""
        epoch = self._fp_epoch
        if epoch is not None and not self.closed:
            epoch.run()

    def _fast_path_first_byte(self, stream_id: int) -> None:
        """Scheduled at a stream's computed first-byte delivery time."""
        stream = self.streams.get(stream_id)
        if stream is None or stream.t_first_byte is not None:
            return
        stream.t_first_byte = self.loop.now
        if stream.on_first_byte is not None:
            stream.on_first_byte(self.loop.now)

    def _fast_path_stream_done(self, stream_id: int, delivered_bytes: int) -> None:
        """Scheduled at a stream's computed last-chunk delivery time."""
        stream = self.streams.get(stream_id)
        if stream is None:
            return
        stream.received += delivered_bytes
        if stream.received >= stream.response_bytes and stream.t_complete is None:
            stream.t_complete = self.loop.now
            if stream.on_complete is not None:
                stream.on_complete(self.loop.now)

    # ------------------------------------------------------------------

    def _trace_metrics(self, force: bool = False) -> None:
        """Emit a qlog ``recovery:metrics_updated`` event.

        Unless forced (loss/PTO), events are rate-limited to ≥1-MSS cwnd
        changes so per-ack sampling keeps traces bounded.
        """
        cwnd = self.cc.cwnd_bytes
        if not force and abs(cwnd - self._traced_cwnd) < self.config.mss:
            return
        self._traced_cwnd = cwnd
        self.tracer.metrics_updated(
            self.loop.now,
            cwnd,
            getattr(self.cc, "ssthresh_bytes", None),
            self._bytes_in_flight,
        )

    def close(self) -> None:
        """Tear down timers; the connection cannot be used afterwards."""
        self.closed = True
        fastpath.cancel(self)
        self._pto_timer.stop()
        self._hs_timer.stop()
        self._ack_timer.stop()
        self._ack_pending.clear()
        for pending in self._pending_requests.values():
            pending.timer.stop()
        self._pending_requests.clear()

    def __repr__(self) -> str:
        state = "established" if self.established else "connecting"
        return f"<{type(self).__name__} {self.name} {state} streams={len(self.streams)}>"
