"""QUIC connection model: the substrate for HTTP/3.

The two H3 strengths the paper analyses map to two properties here:

* **Fast connection.**  QUIC merges the transport and TLS 1.3 handshakes
  into a single round trip; with a cached session ticket the client
  sends 0-RTT application data immediately (``resumed=True`` yields a
  zero-flight handshake and ``connect`` time of 0).
* **Stream multiplexing.**  Each stream is reassembled independently:
  a lost packet delays only the stream whose bytes it carried, so
  unrelated resources keep flowing — no transport head-of-line blocking.
"""

from __future__ import annotations

from repro.netsim.packet import Packet, StreamChunk
from repro.transport.base import BaseConnection


class QuicConnection(BaseConnection):
    """A QUIC (RFC 9000) connection between one probe and one server."""

    protocol_name = "quic"

    def __init__(self, *args, resumed: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.resumed = resumed
        # Per-stream reassembly state: next expected offset and a buffer
        # of out-of-order chunks keyed by offset.
        self._stream_rcv_next: dict[int, int] = {}
        self._stream_buffers: dict[int, dict[int, StreamChunk]] = {}
        # Stream id → when its (stream-local) stall began.  QUIC stalls
        # never cross streams — that is the HoL-freedom being measured.
        self._stream_stall_started: dict[int, float] = {}

    def _handshake_flights(self) -> int:
        # Full handshake: QUIC-TLS completes in one round trip (the
        # transport handshake is folded into the TLS 1.3 exchange).
        # Resumed: 0-RTT — request data rides the first flight.
        return 0 if self.resumed else 1

    @property
    def ssl_ms(self) -> float | None:
        """QUIC-TLS is integral to the handshake: all of connect is 'ssl'."""
        if self.handshake is None:
            return None
        return self.handshake.connect_ms

    # ------------------------------------------------------------------
    # Per-stream (HoL-free) delivery
    # ------------------------------------------------------------------

    def _on_data_packet_received(self, pkt: Packet) -> None:
        for chunk in pkt.chunks:
            self._receive_stream_chunk(chunk)

    def _receive_stream_chunk(self, chunk: StreamChunk) -> None:
        stream_id = chunk.stream_id
        expected = self._stream_rcv_next.get(stream_id, 0)
        if chunk.offset < expected:
            return  # duplicate
        if chunk.offset > expected:
            # Gap *within this stream only*: other streams unaffected.
            buffer = self._stream_buffers.setdefault(stream_id, {})
            if chunk.offset not in buffer:
                if not buffer:
                    # This one stream just became blocked on a gap.
                    self._stream_stall_started[stream_id] = self.loop.now
                    if self.tracer:
                        self.tracer.event(
                            self.loop.now, "transport:hol_stall_started",
                            stream_id=stream_id, blocked_from=expected,
                        )
                buffer[chunk.offset] = chunk
                self.stats.hol_blocked_chunks += 1
            return
        self._deliver_chunk(chunk)
        expected = chunk.end
        buffer = self._stream_buffers.get(stream_id, {})
        while expected in buffer:
            queued = buffer.pop(expected)
            self._deliver_chunk(queued)
            expected = queued.end
        self._stream_rcv_next[stream_id] = expected
        if not buffer:
            started = self._stream_stall_started.pop(stream_id, None)
            if started is not None:
                duration = self.loop.now - started
                self.stats.hol_stalls += 1
                self.stats.hol_stall_ms += duration
                if self.tracer:
                    self.tracer.event(
                        self.loop.now, "transport:hol_stall_ended",
                        stream_id=stream_id, duration_ms=duration,
                    )

    def _fast_path_sync(self, stream_ends: dict[int, int], payload_bytes: int) -> None:
        # A loss-free epoch delivers every stream's chunks in offset
        # order; each touched stream's expected-offset cursor jumps to
        # its epoch-final position.
        for stream_id, end in stream_ends.items():
            self._stream_rcv_next[stream_id] = end

    @property
    def buffered_chunks(self) -> int:
        """Out-of-order chunks currently held (diagnostics)."""
        return sum(len(b) for b in self._stream_buffers.values())
