"""Analytic fast path: loss-free transfers without per-packet events.

On an eligible path (no loss model, no jitter, no drop filter — see
``NetworkPath.fast_path_eligible``) every packet of a response transfer
is deterministic: nothing can be dropped, reordered or delayed beyond
the queueing/serialization/propagation arithmetic the links apply.  The
event-loop simulation of such a transfer therefore computes a fixed
point that this module evaluates directly: a tight Python loop walks
the send/ack dynamics (congestion window, weighted round-robin
chunking, delayed-ack batching, RTT sampling) in virtual time and
reserves every transmission on the shared links arithmetically.  The
event loop sees two events per stream (first byte and completion, at
their analytically computed times) plus one continuation event per
yield point — instead of three-plus events per packet.

Yielding and interleaving
-------------------------

The walk is *resumable*.  Before processing each analytic step — an
ack emission, an ack arrival, or a delayed-ack timer — it peeks at the
real scheduler (:meth:`EventLoop.next_event_time`): if any real event
is due at or before the step, the walk parks its state on the
connection, schedules a continuation at the step's time, and returns.
Real events therefore always run before the walk's virtual clock
passes them.  Two consequences:

* A stream enqueued mid-transfer (its request-packet delivery and the
  server think-timer are real events) joins the weighted round-robin
  at exactly the time the packet path would have sent it: the enqueue
  resumes the walk immediately and the next burst includes it.
* Link occupancy is committed no earlier than the packet path would
  commit it.  Data bursts reserve the downlink at their send times
  (the packet path also hands a whole burst to the link at once), and
  ack emissions reserve the uplink lazily, at their emission step —
  so concurrent connections sharing the path serialize against the
  same reservations they would have seen from real packets.

Fidelity contract
-----------------

The fast path is **opt-in** (``TransportConfig.fast_path``) and the
flag is part of the result store's content address, so fast-path
results never alias full-simulation results.  Within one connection
the walk reproduces the event-loop dynamics exactly: the same chunk
interleaving, the same ack-frequency/max-ack-delay batching, the same
per-ack congestion-controller and RTT-estimator calls at the same
virtual times.  The remaining approximation is tie-breaking and
cross-connection ordering at identical timestamps: the walk yields to
any real event scheduled at or before its next step, but events *it*
schedules (continuations, stream callbacks) carry fresh sequence
numbers, so same-instant orderings can differ from the packet path's.

The fast path is forced off per connection whenever a tracer or strict
checker is attached — packet-level telemetry and invariant checking
want the real per-packet path — which makes ``--strict`` runs use the
packet path regardless of the flag.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet import HEADER_BYTES

__all__ = ["advance", "cancel"]


def advance(conn) -> bool:
    """Advance ``conn``'s response transfer analytically, if possible.

    Called from ``BaseConnection._try_send``.  Returns ``True`` when
    the fast path owns the connection's sending — either a walk is
    already in progress (it is resumed, picking up any newly enqueued
    streams) or a new one could start.  Returns ``False`` (having
    changed nothing) when the connection is in a state this module
    cannot reason about: lossy/jittered or fault-wrapped path, packets
    in flight, pending retransmissions, or an unflushed delayed-ack
    batch — the caller falls through to the packet path.
    """
    epoch = conn._fp_epoch
    if epoch is not None:
        epoch.run()
        return True
    if not getattr(conn.path, "fast_path_eligible", False):
        return False
    if conn._retx_queue or conn._inflight or conn._ack_pending:
        return False
    if not conn._send_queue:
        return False
    conn._fp_epoch = epoch = _Epoch(conn)
    conn.stats.fast_path_epochs += 1
    epoch.run()
    return True


def cancel(conn) -> None:
    """Drop any parked walk (connection teardown).

    Reservations the walk already made stay accounted: on the packet
    path, deliveries scheduled before a close still fire and count, so
    the links' pending reservations are settled unconditionally here.
    """
    epoch = conn._fp_epoch
    if epoch is not None:
        conn._fp_epoch = None
        if epoch.continuation is not None:
            epoch.continuation.cancel()
            epoch.continuation = None
        conn.path.uplink.settle_reserved(float("inf"))
        conn.path.downlink.settle_reserved(float("inf"))


class _Epoch:
    """One resumable analytic walk over a connection's send queue.

    The walk advances a virtual clock through three kinds of *steps*,
    kept in time-sorted queues:

    ``emissions``
        Client→server ack packets whose flush time is decided but whose
        uplink slot is not yet reserved.  Processing one reserves the
        uplink at the emission time and moves it to ``arrivals``.
    ``arrivals``
        Acks in flight on the uplink.  Processing one runs the server
        ack machinery (congestion controller, RTT estimator, delivery
        rate) and triggers the next send burst.
    ``ack_deadline``
        The receiver's pending max-ack-delay timer (set iff
        ``ack_batch`` holds undelivered ack numbers).

    Send bursts and the client-side delivery/batching machine run
    eagerly when a step fires: burst packets reserve the downlink at
    the send time, and each computed delivery feeds the delayed-ack
    state machine, appending future emissions.  Stream first-byte and
    completion callbacks are scheduled on the real loop as soon as
    their delivery times are known.
    """

    __slots__ = (
        "conn",
        "bytes_in_flight",
        "ack_batch",
        "ack_deadline",
        "last_recv_at",
        "last_seq_delivered",
        "emissions",
        "arrivals",
        "delivered",
        "stream_ends",
        "payload_pending",
        "continuation",
        "last_step_at",
    )

    def __init__(self, conn) -> None:
        self.conn = conn
        self.bytes_in_flight = 0
        #: Client delayed-ack state: (seq, sent_at, size) per unflushed
        #: delivery; deadline is set iff the batch is non-empty.
        self.ack_batch: list[tuple[int, float, int]] = []
        self.ack_deadline: float | None = None
        self.last_recv_at = conn._ack_last_recv_at
        self.last_seq_delivered = conn._ack_largest_received
        self.emissions: deque[tuple[float, tuple, float]] = deque()
        self.arrivals: deque[tuple[float, tuple, float]] = deque()
        #: Per-stream payload delivered so far (drives first-byte and
        #: completion callback scheduling).
        self.delivered: dict[int, int] = {}
        #: Receiver-sync deltas not yet applied to the connection.
        self.stream_ends: dict[int, int] = {}
        self.payload_pending = 0
        self.continuation = None
        #: Virtual time of the last processed step; the walk's final
        #: step (an ack arrival) bounds every link reservation it made,
        #: so settling at this time folds them all in at ``_finish``.
        self.last_step_at = conn.loop.now

    # -- the walk ------------------------------------------------------

    def run(self) -> None:
        conn = self.conn
        loop = conn.loop
        if self.continuation is not None:
            self.continuation.cancel()
            self.continuation = None
        # A resume may carry newly enqueued streams (the packet path
        # would send them right now if the window allows).
        if conn._send_queue:
            self._send_burst(loop.now)
        emissions = self.emissions
        arrivals = self.arrivals
        while True:
            # Next step: earliest of emission, arrival, ack timer.
            when = emissions[0][0] if emissions else None
            t_arr = arrivals[0][0] if arrivals else None
            kind = 0
            if t_arr is not None and (when is None or t_arr < when):
                when = t_arr
                kind = 1
            t_dl = self.ack_deadline
            if t_dl is not None and (when is None or t_dl < when):
                when = t_dl
                kind = 2
            if when is None:
                if conn._send_queue:
                    sent_before = conn.stats.data_packets_sent
                    self._send_burst(loop.now)
                    if conn.stats.data_packets_sent != sent_before:
                        continue
                self._finish()
                return
            # Yield to the scheduler whenever a real event is due at or
            # before this step: the walk's virtual clock never passes a
            # pending event.
            next_real = loop.next_event_time()
            if next_real is not None and next_real <= when:
                self.continuation = loop.call_at(when, conn._fast_path_step)
                self._sync()
                return
            self.last_step_at = when
            if kind == 0:
                at, batch, ack_delay = emissions.popleft()
                arrival = conn.path.uplink.reserve_transmit(HEADER_BYTES, at)
                arrivals.append((arrival, batch, ack_delay))
            elif kind == 1:
                at, batch, ack_delay = arrivals.popleft()
                self._process_ack(at, batch, ack_delay)
                self._send_burst(at)
            else:
                self._flush_batch(t_dl)

    # -- client side: delivery, delayed-ack batching -------------------

    def _flush_batch(self, at: float) -> None:
        self.emissions.append(
            (at, tuple(self.ack_batch), at - self.last_recv_at)
        )
        self.ack_batch.clear()
        self.ack_deadline = None

    def _on_delivery(
        self, seq: int, deliver_at: float, sent_at: float, size_bytes: int,
        stream_id: int, chunk_size: int, last_of_stream: bool,
    ) -> None:
        conn = self.conn
        # Deliveries arrive in nondecreasing time order (FIFO downlink);
        # an armed ack timer expiring first fires first.
        if self.ack_deadline is not None and self.ack_deadline < deliver_at:
            self._flush_batch(self.ack_deadline)
        self.last_recv_at = deliver_at
        self.last_seq_delivered = seq
        self.ack_batch.append((seq, sent_at, size_bytes))
        if len(self.ack_batch) >= conn.config.ack_frequency:
            self._flush_batch(deliver_at)
        elif self.ack_deadline is None:
            self.ack_deadline = deliver_at + conn.config.max_ack_delay_ms
        self.payload_pending += chunk_size
        total = self.delivered.get(stream_id)
        if total is None:
            total = 0
            conn.loop.call_at(deliver_at, conn._fast_path_first_byte, stream_id)
        total += chunk_size
        self.delivered[stream_id] = total
        if last_of_stream:
            conn.loop.call_at(
                deliver_at, conn._fast_path_stream_done, stream_id, total
            )

    # -- server side: bursts and ack processing ------------------------

    def _send_burst(self, at: float) -> None:
        """Mirror of ``BaseConnection._try_send``'s weighted round-robin
        loop, including mid-turn window breaks and fin dequeueing."""
        conn = self.conn
        cc = conn.cc
        stats = conn.stats
        downlink = conn.path.downlink
        send_queue = conn._send_queue
        streams = conn._server_streams
        mss = conn.config.mss
        bytes_in_flight = self.bytes_in_flight
        while send_queue:
            if bytes_in_flight + mss > cc.cwnd_bytes:
                break
            stream_id = send_queue[0]
            sstream = streams[stream_id]
            if sstream.send_remaining <= 0:
                send_queue.popleft()
                continue
            fin = False
            for _ in range(sstream.weight):
                remaining = sstream.send_remaining
                if remaining <= 0:
                    break
                if bytes_in_flight + mss > cc.cwnd_bytes:
                    break
                size = min(mss, remaining)
                fin = sstream.next_offset + size >= sstream.response_bytes
                sstream.next_offset += size
                conn._conn_send_offset += size
                self.stream_ends[stream_id] = sstream.next_offset
                seq = next(conn._next_pkt_seq)
                pkt_bytes = HEADER_BYTES + size
                if conn._first_data_sent_at is None:
                    conn._first_data_sent_at = at
                conn._largest_sent = seq
                stats.data_packets_sent += 1
                bytes_in_flight += pkt_bytes
                deliver_at = downlink.reserve_transmit(pkt_bytes, at)
                self._on_delivery(
                    seq, deliver_at, at, pkt_bytes,
                    stream_id, size, fin and sstream.send_remaining <= 0,
                )
            send_queue.rotate(-1)
            if fin:
                try:
                    send_queue.remove(stream_id)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self.bytes_in_flight = bytes_in_flight

    def _process_ack(self, at: float, batch: tuple, ack_delay: float) -> None:
        conn = self.conn
        cc = conn.cc
        stats = conn.stats
        largest_seq = -1
        largest_sent_at = 0.0
        for seq, sent_at, size_bytes in batch:
            stats.acks_received += 1
            self.bytes_in_flight -= size_bytes
            cc.on_ack(size_bytes, at)
            conn._delivered_bytes += size_bytes
            if seq > largest_seq:
                largest_seq = seq
                largest_sent_at = sent_at
        # RTT from the largest newly-acked packet, net of the
        # receiver's deliberate ack delay (RFC 9002 §5.3); epoch
        # packets are never retransmissions.
        sample = at - largest_sent_at - ack_delay
        if sample >= 0:
            conn.rtt.on_sample(sample)
        rate_sampler = getattr(cc, "on_rate_sample", None)
        if rate_sampler is not None and conn.rtt.srtt_ms:
            elapsed = at - conn._first_data_sent_at
            if elapsed > 0:
                rate_sampler(conn._delivered_bytes / elapsed, conn.rtt.srtt_ms)
        if largest_seq > conn._largest_acked:
            conn._largest_acked = largest_seq

    # -- state hand-off ------------------------------------------------

    def _sync(self) -> None:
        """Apply accumulated receiver/ack state to the connection.

        Run at every yield point and at the end of the walk, so the
        connection's externally visible state is coherent whenever real
        events (which may inspect it) get control.
        """
        conn = self.conn
        if self.stream_ends or self.payload_pending:
            conn._fast_path_sync(self.stream_ends, self.payload_pending)
            self.stream_ends = {}
            self.payload_pending = 0
        conn._ack_largest_received = self.last_seq_delivered
        conn._ack_last_recv_at = self.last_recv_at

    def _finish(self) -> None:
        self._sync()
        conn = self.conn
        # The final processed step is the last ack arrival, which is at
        # or after every delivery this walk reserved on either link —
        # settling here keeps end-of-visit delivered totals identical
        # to the packet path's.
        conn.path.uplink.settle_reserved(self.last_step_at)
        conn.path.downlink.settle_reserved(self.last_step_at)
        conn._pto_backoff = 1
        conn._fp_epoch = None
