"""Congestion controllers shared by the TCP and QUIC models.

The paper notes (citing Yu & Benson and Cloudflare) that production QUIC
performance varies with the congestion control implementation; we provide
NewReno (the RFC 9002 default) and a simplified CUBIC so benches can
ablate the choice.  Controllers work in bytes and are agnostic to which
transport drives them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class CongestionController(Protocol):
    """Interface both transports program against."""

    @property
    def cwnd_bytes(self) -> int:
        """Current congestion window in bytes."""
        ...  # pragma: no cover - protocol stub

    def on_ack(self, acked_bytes: int, now_ms: float) -> None:
        """Bytes newly acknowledged."""
        ...  # pragma: no cover - protocol stub

    def on_loss(self, now_ms: float) -> None:
        """A loss event (at most one per round trip is reported)."""
        ...  # pragma: no cover - protocol stub

    def on_rto(self, now_ms: float) -> None:
        """A retransmission timeout fired (persistent congestion)."""
        ...  # pragma: no cover - protocol stub


class NewRenoController:
    """Slow start + AIMD congestion avoidance (RFC 5681 / RFC 9002)."""

    def __init__(self, mss: int, initial_cwnd_packets: int = 10) -> None:
        self.mss = mss
        self._cwnd = mss * initial_cwnd_packets
        self._initial_cwnd = self._cwnd
        self._ssthresh = float("inf")
        self._min_cwnd = 2 * mss
        self.loss_events = 0

    @property
    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh_bytes(self) -> int | None:
        """Slow-start threshold for tracing; ``None`` until a loss."""
        return None if self._ssthresh == float("inf") else int(self._ssthresh)

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def on_ack(self, acked_bytes: int, now_ms: float) -> None:
        if self.in_slow_start:
            self._cwnd += acked_bytes
        else:
            # Congestion avoidance: ~one MSS per cwnd of acked data.
            self._cwnd += self.mss * acked_bytes / self._cwnd

    def on_loss(self, now_ms: float) -> None:
        self.loss_events += 1
        self._ssthresh = max(self._cwnd / 2.0, self._min_cwnd)
        self._cwnd = self._ssthresh

    def on_rto(self, now_ms: float) -> None:
        self.loss_events += 1
        self._ssthresh = max(self._cwnd / 2.0, self._min_cwnd)
        self._cwnd = self._min_cwnd

    def __repr__(self) -> str:
        return f"NewRenoController(cwnd={self.cwnd_bytes}B)"


class CubicController:
    """Simplified CUBIC (RFC 8312): cubic window growth after a loss.

    The window grows as ``W(t) = C*(t - K)^3 + W_max`` where ``K`` is the
    time to regain ``W_max`` after a multiplicative decrease by ``beta``.
    Slow start behaves like NewReno until the first loss.
    """

    C = 0.4  # scaling constant, windows in MSS units, time in seconds
    BETA = 0.7

    def __init__(self, mss: int, initial_cwnd_packets: int = 10) -> None:
        self.mss = mss
        self._cwnd = float(mss * initial_cwnd_packets)
        self._ssthresh = float("inf")
        self._min_cwnd = 2.0 * mss
        self._w_max: float | None = None
        self._epoch_start_ms: float | None = None
        self.loss_events = 0

    @property
    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh_bytes(self) -> int | None:
        """Slow-start threshold for tracing; ``None`` until a loss."""
        return None if self._ssthresh == float("inf") else int(self._ssthresh)

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def _cubic_window(self, now_ms: float) -> float:
        assert self._w_max is not None and self._epoch_start_ms is not None
        w_max_seg = self._w_max / self.mss
        k = (w_max_seg * (1 - self.BETA) / self.C) ** (1.0 / 3.0)
        t = (now_ms - self._epoch_start_ms) / 1000.0
        target_seg = self.C * (t - k) ** 3 + w_max_seg
        return max(self._min_cwnd, target_seg * self.mss)

    def on_ack(self, acked_bytes: int, now_ms: float) -> None:
        if self.in_slow_start:
            self._cwnd += acked_bytes
            return
        if self._w_max is None:
            # Left slow start without a loss (ssthresh hit): emulate Reno.
            self._cwnd += self.mss * acked_bytes / self._cwnd
            return
        self._cwnd = max(self._cwnd, self._cubic_window(now_ms))

    def on_loss(self, now_ms: float) -> None:
        self.loss_events += 1
        self._w_max = self._cwnd
        self._epoch_start_ms = now_ms
        self._cwnd = max(self._cwnd * self.BETA, self._min_cwnd)
        self._ssthresh = self._cwnd

    def on_rto(self, now_ms: float) -> None:
        self.loss_events += 1
        self._w_max = self._cwnd
        self._epoch_start_ms = now_ms
        self._ssthresh = max(self._cwnd * self.BETA, self._min_cwnd)
        self._cwnd = self._min_cwnd

    def __repr__(self) -> str:
        return f"CubicController(cwnd={self.cwnd_bytes}B)"


class BbrLikeController:
    """A simplified model-based (BBR-flavoured) controller.

    Real BBR paces by an explicit model of the path: bottleneck
    bandwidth (max delivery rate seen) × minimum RTT, with a gain
    factor.  This simplification keeps the two model estimators and the
    defining behavioural difference from loss-based control: **packet
    loss does not collapse the window** — only the model does.  The
    caller feeds delivery-rate samples through :meth:`on_rate_sample`;
    without samples it behaves like slow start capped at a high ceiling.
    """

    CWND_GAIN = 2.0

    def __init__(self, mss: int, initial_cwnd_packets: int = 10) -> None:
        self.mss = mss
        self._cwnd = float(mss * initial_cwnd_packets)
        self._min_cwnd = 4.0 * mss
        self._max_cwnd = 4096.0 * mss
        self._btl_bw_bytes_per_ms: float | None = None
        self._min_rtt_ms: float | None = None
        self.loss_events = 0

    @property
    def cwnd_bytes(self) -> int:
        return int(self._cwnd)

    @property
    def ssthresh_bytes(self) -> None:
        """BBR has no slow-start threshold; always ``None``."""
        return None

    def on_rate_sample(self, bytes_per_ms: float, rtt_ms: float) -> None:
        """Feed a delivery-rate / RTT observation into the path model."""
        if bytes_per_ms <= 0 or rtt_ms <= 0:
            return
        if self._btl_bw_bytes_per_ms is None or bytes_per_ms > self._btl_bw_bytes_per_ms:
            self._btl_bw_bytes_per_ms = bytes_per_ms
        if self._min_rtt_ms is None or rtt_ms < self._min_rtt_ms:
            self._min_rtt_ms = rtt_ms
        bdp = self._btl_bw_bytes_per_ms * self._min_rtt_ms
        self._cwnd = min(self._max_cwnd, max(self._min_cwnd, self.CWND_GAIN * bdp))

    def on_ack(self, acked_bytes: int, now_ms: float) -> None:
        if self._btl_bw_bytes_per_ms is None:
            # Startup: exponential growth until the model forms.
            self._cwnd = min(self._max_cwnd, self._cwnd + acked_bytes)

    def on_loss(self, now_ms: float) -> None:
        # BBR ignores isolated losses by design (no multiplicative
        # decrease); it only counts them.
        self.loss_events += 1

    def on_rto(self, now_ms: float) -> None:
        # Persistent congestion: even BBR backs off to a conservative
        # window and restarts the model.
        self.loss_events += 1
        self._cwnd = self._min_cwnd
        self._btl_bw_bytes_per_ms = None

    def __repr__(self) -> str:
        return f"BbrLikeController(cwnd={self.cwnd_bytes}B)"


def make_congestion_controller(
    name: str, mss: int, initial_cwnd_packets: int = 10
) -> CongestionController:
    """Factory used by :class:`~repro.transport.config.TransportConfig`."""
    controllers = {
        "newreno": NewRenoController,
        "cubic": CubicController,
        "bbr": BbrLikeController,
    }
    try:
        cls = controllers[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; choose from {sorted(controllers)}"
        ) from None
    return cls(mss, initial_cwnd_packets)
