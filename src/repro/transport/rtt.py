"""Smoothed RTT estimation and retransmission timeout (RFC 6298 / 9002)."""

from __future__ import annotations


class RttEstimator:
    """Exponentially weighted RTT statistics driving the RTO/PTO.

    Follows RFC 6298: ``srtt`` with gain 1/8, ``rttvar`` with gain 1/4,
    and ``rto = srtt + 4 * rttvar`` clamped to a configurable floor.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(self, initial_rto_ms: float = 200.0, min_rto_ms: float = 25.0) -> None:
        if initial_rto_ms <= 0 or min_rto_ms <= 0:
            raise ValueError("timeouts must be positive")
        self._initial_rto_ms = initial_rto_ms
        self._min_rto_ms = min_rto_ms
        self.srtt_ms: float | None = None
        self.rttvar_ms: float = 0.0
        self.latest_sample_ms: float | None = None
        self.samples = 0

    def on_sample(self, rtt_ms: float) -> None:
        """Feed one RTT measurement (never from a retransmitted packet,
        per Karn's algorithm — the caller enforces that)."""
        if rtt_ms < 0:
            raise ValueError(f"rtt sample must be >= 0, got {rtt_ms}")
        self.latest_sample_ms = rtt_ms
        self.samples += 1
        if self.srtt_ms is None:
            self.srtt_ms = rtt_ms
            self.rttvar_ms = rtt_ms / 2.0
            return
        self.rttvar_ms = (1 - self.BETA) * self.rttvar_ms + self.BETA * abs(
            self.srtt_ms - rtt_ms
        )
        self.srtt_ms = (1 - self.ALPHA) * self.srtt_ms + self.ALPHA * rtt_ms

    @property
    def rto_ms(self) -> float:
        """Current retransmission timeout."""
        if self.srtt_ms is None:
            return self._initial_rto_ms
        return max(self._min_rto_ms, self.srtt_ms + 4.0 * self.rttvar_ms)
