"""Tunable constants shared by the TCP and QUIC models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.packet import DEFAULT_MSS


@dataclass(frozen=True)
class TransportConfig:
    """Knobs for connection behaviour.

    Defaults follow common stack behaviour (RFC 6928 initial window of
    10 segments, QUIC's packet-threshold loss detection of 3).
    """

    #: Maximum segment size in bytes (payload per packet).
    mss: int = DEFAULT_MSS
    #: Initial congestion window, in segments (RFC 6928).
    initial_cwnd_packets: int = 10
    #: Initial retransmission timeout before an RTT sample exists.
    initial_rto_ms: float = 200.0
    #: Lower bound for the probe/retransmission timeout.
    min_rto_ms: float = 25.0
    #: Packet-reordering threshold for loss declaration (RFC 9002 §6.1.1).
    packet_threshold: int = 3
    #: Give up on a handshake after this many retransmissions.
    max_handshake_retries: int = 10
    #: Give up on a request packet after this many retransmissions.
    max_request_retries: int = 10
    #: Congestion controller name: ``"newreno"`` or ``"cubic"``.
    congestion_control: str = "newreno"
    #: Whether resumed TCP+TLS1.3 connections send the request as 0-RTT
    #: early data.  Browsers ship with this OFF (replay concerns), which
    #: is why H2 resumption saves no round trip while H3's 0-RTT saves
    #: one — the asymmetry behind the paper's Fig. 8.  Enable for the
    #: ablation bench.
    tls13_early_data: bool = False
    #: If False, the server never issues session tickets (ablation knob
    #: for the Fig. 8 resumption analysis).
    issue_session_tickets: bool = True
    #: Maximum connection handshakes a browser profile runs at once
    #: (socket-pool and TLS-CPU throttling, as in Chrome).  Additional
    #: connection setups queue; 0-RTT resumed QUIC connections need no
    #: handshake and bypass the queue entirely.
    max_concurrent_handshakes: int = 6
    #: Acknowledge every Nth data packet (QUIC ACK-frequency / TCP
    #: delayed acks).  A sequence gap flushes immediately so loss
    #: detection keeps its timing (RFC 9000 §13.2.1); 1 acks every
    #: packet.
    ack_frequency: int = 2
    #: Longest a receiver may sit on an unacknowledged data packet
    #: before flushing an ACK anyway (RFC 9000 max_ack_delay).
    max_ack_delay_ms: float = 5.0
    #: Opt-in analytic fast path: advance loss-free response transfers
    #: arithmetically instead of per-packet through the event loop (see
    #: :mod:`repro.transport.fastpath` for the fidelity contract).  The
    #: flag enters the result store's content address automatically (via
    #: ``transport_part``), so fast-path results never alias full-path
    #: results.  Forced off per connection under tracing or strict
    #: checking, which keeps ``--strict`` runs bit-identical.
    fast_path: bool = False

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.initial_cwnd_packets <= 0:
            raise ValueError("initial_cwnd_packets must be positive")
        if self.packet_threshold < 1:
            raise ValueError("packet_threshold must be >= 1")
        if self.ack_frequency < 1:
            raise ValueError("ack_frequency must be >= 1")
        if self.max_ack_delay_ms < 0:
            raise ValueError("max_ack_delay_ms must be >= 0")
