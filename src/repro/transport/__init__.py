"""Transport-layer models: TCP (H1.1/H2 substrate) and QUIC (H3 substrate).

Both transports share the same congestion control, RTT estimation, loss
detection, and retransmission machinery; they differ in exactly the two
places the paper's analysis hinges on:

* **Handshake cost** — number of round trips before the first request
  byte may leave the client (TCP+TLS1.2: 3, TCP+TLS1.3: 2, resumed
  TCP+TLS1.3 with early data: 1, QUIC: 1, resumed QUIC 0-RTT: 0).
* **Delivery order** — the TCP receiver releases bytes to the
  application strictly in connection order (one lost packet blocks every
  later byte of *every* stream: head-of-line blocking), while the QUIC
  receiver releases each stream independently.

Because both differences are modelled at packet granularity over lossy
links, the paper's Fig. 6 (connection-time reduction), Fig. 8 (0-RTT
resumption) and Fig. 9 (HoL under loss) effects *emerge* from the
simulation rather than being hard-coded.
"""

from repro.transport.base import (
    BaseConnection,
    ClientStream,
    ConnectionStats,
    HandshakeResult,
    TransportError,
)
from repro.transport.config import TransportConfig
from repro.transport.congestion import (
    BbrLikeController,
    CongestionController,
    CubicController,
    NewRenoController,
    make_congestion_controller,
)
from repro.transport.quic import QuicConnection
from repro.transport.rtt import RttEstimator
from repro.transport.tcp import TcpConnection, TlsVersion

__all__ = [
    "BaseConnection",
    "BbrLikeController",
    "ClientStream",
    "CongestionController",
    "ConnectionStats",
    "CubicController",
    "HandshakeResult",
    "NewRenoController",
    "QuicConnection",
    "RttEstimator",
    "TcpConnection",
    "TlsVersion",
    "TransportConfig",
    "TransportError",
    "make_congestion_controller",
]
