"""LocEdge-style CDN classification.

The paper uses LocEdge (Huang et al., SIGCOMM'22 demo) to decide, for
every HAR entry, whether the resource came from a CDN and from which
provider.  This module reimplements the same decision from the two
signals available in a HAR record: response headers (``Server`` /
``Via`` fingerprints) and the request hostname (known shared-edge
domains and provider-specific domain patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.provider import CdnProvider, default_providers


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of classifying one response."""

    is_cdn: bool
    provider_name: str | None
    #: Which signal matched: "header", "domain", "pattern" or None.
    matched_by: str | None

    @staticmethod
    def non_cdn() -> "ClassificationResult":
        return ClassificationResult(False, None, None)


#: Hostname substrings that identify a provider even for customer-owned
#: hostnames (CNAME targets, conventional edge naming).
_DOMAIN_PATTERNS: dict[str, tuple[str, ...]] = {
    "google": ("googleapis.com", "gstatic.com", "googleusercontent.com",
               "doubleclick.net", "ytimg.com", "googletagmanager.com",
               "google-analytics.com"),
    "cloudflare": ("cloudflare.com", "cloudflare.net", "cloudflareinsights.com",
                   "videodelivery.net", "imagedelivery.net", "cloudflarestorage.com"),
    "amazon": ("cloudfront.net", "awsstatic.com", "ssl-images-amazon.com",
               "media-amazon.com"),
    "akamai": ("akamai.net", "akamaized.net", "akamaiedge.net",
               "akamai.steamstatic.com"),
    "fastly": ("fastly.net", "fastlylb.net", "jsdelivr.net.fastly",),
    "microsoft": ("azureedge.net", "aspnetcdn.com", "office.net", "azure.com"),
    "quic_cloud": ("quic.cloud",),
    "meta": ("fbcdn.net", "facebook.net",),
    "jsdelivr": ("jsdelivr.net",),
    "cdn77": ("cdn77.org",),
}


def _build_header_index(
    providers: tuple[CdnProvider, ...]
) -> tuple[dict[str, str], dict[str, str]]:
    by_server = {p.header_server.lower(): p.name for p in providers}
    by_via = {
        p.header_via.lower(): p.name for p in providers if p.header_via is not None
    }
    return by_server, by_via


def _build_domain_index(providers: tuple[CdnProvider, ...]) -> dict[str, str]:
    return {
        domain.lower(): p.name for p in providers for domain in p.shared_domains
    }


def classify_response(
    host: str,
    headers: dict[str, str] | None = None,
    providers: tuple[CdnProvider, ...] | None = None,
) -> ClassificationResult:
    """Classify one response as CDN/non-CDN and identify the provider.

    Signals are checked in decreasing reliability order, mirroring
    LocEdge: exact header fingerprints, then exact shared-domain
    matches, then provider domain patterns.  Anything unmatched is
    non-CDN.
    """
    providers = providers if providers is not None else default_providers()
    headers = {k.lower(): v for k, v in (headers or {}).items()}
    by_server, by_via = _build_header_index(providers)
    host = host.lower()

    server = headers.get("server", "").lower()
    if server in by_server:
        return ClassificationResult(True, by_server[server], "header")
    via = headers.get("via", "").lower()
    if via in by_via:
        return ClassificationResult(True, by_via[via], "header")

    domain_index = _build_domain_index(providers)
    if host in domain_index:
        return ClassificationResult(True, domain_index[host], "domain")

    known_names = {p.name for p in providers}
    for provider_name, patterns in _DOMAIN_PATTERNS.items():
        if provider_name not in known_names:
            continue
        if any(pattern in host for pattern in patterns):
            return ClassificationResult(True, provider_name, "pattern")

    return ClassificationResult.non_cdn()


def _default_dictionary() -> dict[str, str]:
    """Suffix table seeded from the provider registry's shared domains
    plus the domain patterns above."""
    table: dict[str, str] = {}
    for provider in default_providers():
        for domain in provider.shared_domains:
            table.setdefault(domain.lower(), provider.name)
    for provider_name, patterns in _DOMAIN_PATTERNS.items():
        for pattern in patterns:
            table.setdefault(pattern.lower(), provider_name)
    return table


class DictClassifier:
    """Hostname-dictionary CDN classifier (scoky/detect_website_cdn style).

    The cheap second opinion: a flat domain-suffix table, no headers
    needed.  Matching is on DNS label boundaries — ``cdn.fastly.net``
    matches the ``fastly.net`` entry but ``myfastly.network.example``
    does not — which makes it stricter than ``classify_response``'s
    substring patterns.  It also knows nothing about customer-owned
    hostnames whose only CDN signal is in the response headers, so the
    two classifiers disagree at a measurable rate on realistic traffic;
    that disagreement rate is reported in the run manifest as a realism
    check.
    """

    def __init__(self, table: dict[str, str] | None = None) -> None:
        self._table = dict(table) if table is not None else _default_dictionary()

    def classify(self, host: str) -> ClassificationResult:
        labels = host.lower().rstrip(".").split(".")
        for start in range(len(labels) - 1):
            provider = self._table.get(".".join(labels[start:]))
            if provider is not None:
                return ClassificationResult(True, provider, "dict")
        return ClassificationResult.non_cdn()


def classifier_disagreement(
    entries,
    dict_classifier: DictClassifier | None = None,
) -> dict[str, object]:
    """Compare the dictionary classifier against HAR-entry labels.

    ``entries`` is an iterable of HAR entries carrying ``host``,
    ``is_cdn`` and ``provider`` (as produced by the LocEdge-style
    classifier at visit time).  Returns a manifest-ready summary.
    """
    dict_classifier = dict_classifier or DictClassifier()
    total = 0
    disagreements = 0
    missed_cdn = 0
    extra_cdn = 0
    provider_mismatch = 0
    for entry in entries:
        total += 1
        verdict = dict_classifier.classify(entry.host)
        if verdict.is_cdn != entry.is_cdn:
            disagreements += 1
            if entry.is_cdn:
                missed_cdn += 1
            else:
                extra_cdn += 1
        elif verdict.is_cdn and verdict.provider_name != entry.provider:
            disagreements += 1
            provider_mismatch += 1
    return {
        "entries": total,
        "disagreements": disagreements,
        "disagreement_rate": disagreements / total if total else 0.0,
        "missed_cdn": missed_cdn,
        "extra_cdn": extra_cdn,
        "provider_mismatch": provider_mismatch,
    }
