"""CDN edge servers: caching, protocol support, and request costs.

An :class:`EdgeServer` is what a probe actually talks to when fetching a
CDN resource.  It contributes three things to the measured timings:

* **Protocol support** — whether the edge can speak H3 for a given
  resource (drawn per-resource from the provider's ``h3_adoption`` by
  the website generator; the edge enforces it).
* **Cache state** — a byte-capacity LRU, optionally layered into an
  edge → regional → origin tier chain (:mod:`repro.cdn.hierarchy`).  A
  hit answers after the base think time; a miss adds the fetch-through
  penalty of every tier it had to traverse and fills those tiers (the
  paper's double-visit protocol exists exactly to warm this cache).
* **H3 compute overhead** — userspace QUIC costs more CPU per request
  than kernel TCP (the paper's Section VI-B observes the wait-time
  median favouring H2); modelled as a small additive think-time term.

With a :class:`~repro.cdn.compression.CompressionConfig` the edge also
negotiates the response encoding against the client's Accept-Encoding
and its provider's conversion policy, and reports provider-side byte
accounting (:class:`~repro.cdn.economics.EconomicsDelta`) per request.
Both features default to off, in which case ``serve`` follows the
original flat-LRU arithmetic exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.compression import (
    CompressionConfig,
    CompressionPolicy,
    DEFAULT_ACCEPT,
    encoded_size,
    is_compressible,
    negotiate,
    origin_encoding,
    provider_policy,
)
from repro.cdn.economics import EconomicsDelta
from repro.cdn.hierarchy import HierarchyConfig, LruCache, TierChain
from repro.cdn.provider import CdnProvider
from repro.transport.tcp import TlsVersion

__all__ = ["EdgeServer", "LruCache", "ServeDecision"]


@dataclass
class ServeDecision:
    """Outcome of asking an edge to serve one request.

    The last three fields only carry data on the hierarchy/compression
    path; flat-cache, compression-off edges leave them at their
    defaults so existing consumers see the exact pre-hierarchy shape.
    """

    cache_hit: bool
    think_ms: float
    protocol: str  # the protocol actually used
    headers: dict[str, str] = field(default_factory=dict)
    #: Tier that held the object ("origin" for a full-chain miss);
    #: None on the legacy flat path.
    hit_tier: str | None = None
    #: Wire bytes of the (possibly re-encoded) response body; None means
    #: "the resource's identity size", the legacy behaviour.
    body_bytes: int | None = None
    #: Provider-side byte accounting for this request.
    economics: EconomicsDelta | None = None


class EdgeServer:
    """One CDN edge (one hostname) close to the probes."""

    kind = "edge"

    def __init__(
        self,
        hostname: str,
        provider: CdnProvider,
        base_rtt_ms: float = 20.0,
        base_think_ms: float = 8.0,
        origin_fetch_ms: float = 60.0,
        h3_think_overhead_ms: float = 4.0,
        supports_h3: bool = True,
        tls_version: TlsVersion = TlsVersion.TLS13,
        cache_capacity_bytes: int = 512 * 1024 * 1024,
        issues_tickets: bool = True,
        resumption_rate: float = 0.75,
        tls_setup_cpu_ms: float = 9.0,
        resumed_setup_cpu_ms: float = 2.0,
        hierarchy: HierarchyConfig | None = None,
        compression: CompressionConfig | None = None,
    ) -> None:
        self.hostname = hostname
        self.provider = provider
        self.base_rtt_ms = base_rtt_ms
        self.base_think_ms = base_think_ms
        self.origin_fetch_ms = origin_fetch_ms
        self.h3_think_overhead_ms = h3_think_overhead_ms
        self.supports_h3 = supports_h3
        self.supports_h2 = True
        self.tls_version = tls_version
        self.hierarchy = hierarchy
        self.tiers: TierChain | None = TierChain(hierarchy) if hierarchy else None
        #: The client-facing cache: tier 0 of the chain, or the flat LRU.
        self.cache = (
            self.tiers.edge_cache if self.tiers else LruCache(cache_capacity_bytes)
        )
        self.compression = compression
        self.policy: CompressionPolicy = provider_policy(provider.name)
        self.issues_tickets = issues_tickets
        #: Probability a presented session ticket is accepted.  Real CDN
        #: edges are load-balanced fleets with rotating ticket keys, so
        #: resumption succeeds well below 100 % of the time.
        self.resumption_rate = resumption_rate
        #: Server-side CPU cost of a full TLS handshake (certificate
        #: signing); added to the opening request's think time.  Session
        #: resumption skips the certificate crypto and pays the cheaper
        #: cost.  Partial H3 deployment splits a provider's traffic over
        #: extra connections, so complicated pages pay this more often —
        #: one ingredient of the paper's Fig. 6(a) turning point.
        self.tls_setup_cpu_ms = tls_setup_cpu_ms
        self.resumed_setup_cpu_ms = resumed_setup_cpu_ms

    def serve(
        self,
        resource_key: str,
        size_bytes: int,
        protocol: str,
        accept_encoding: tuple[str, ...] | None = None,
        rtype: str | None = None,
    ) -> ServeDecision:
        """Process one request and report its server-side cost.

        ``protocol`` is ``"h2"`` or ``"h3"``; requesting H3 from an edge
        that does not support it is a caller bug.  ``accept_encoding``
        and ``rtype`` only matter when the edge has a compression
        config; without hierarchy and compression the flat-LRU
        arithmetic below is bit-identical to previous releases.
        """
        if protocol == "h3" and not self.supports_h3:
            raise ValueError(f"{self.hostname} does not support H3")
        if self.tiers is None and self.compression is None:
            hit = self.cache.lookup(resource_key)
            think = self.base_think_ms
            if not hit:
                think += self.origin_fetch_ms
                self.cache.insert(resource_key, size_bytes)
            if protocol == "h3":
                think += self.h3_think_overhead_ms
            return ServeDecision(
                cache_hit=hit,
                think_ms=think,
                protocol=protocol,
                headers=self.response_headers(hit),
            )
        return self._serve_rich(
            resource_key, size_bytes, protocol, accept_encoding, rtype
        )

    def _serve_rich(
        self,
        resource_key: str,
        size_bytes: int,
        protocol: str,
        accept_encoding: tuple[str, ...] | None,
        rtype: str | None,
    ) -> ServeDecision:
        """Hierarchy- and compression-aware serve path."""
        compress = self.compression is not None and is_compressible(rtype)
        stored_encoding = origin_encoding(rtype) if compress else "identity"
        stored_size = encoded_size(size_bytes, stored_encoding)
        egress_encoding = stored_encoding
        if compress:
            egress_encoding = negotiate(
                accept_encoding or DEFAULT_ACCEPT, stored_encoding, self.policy
            )
        body = encoded_size(size_bytes, egress_encoding)
        converted = egress_encoding != stored_encoding

        edge_tier_name = self.tiers.tiers[0].name if self.tiers else "edge"
        variant_key = f"{resource_key}#{egress_encoding}" if converted else None
        conversions = 0
        # Post-conversion caching keeps the converted variant in the
        # client-facing tier only; upper tiers always hold the stored form.
        if variant_key is not None and self.policy.cache_encoded and self.cache.lookup(
            variant_key
        ):
            hit_tier: str | None = edge_tier_name
            extra_ms = 0.0
            hops = 0
        else:
            if self.tiers is not None:
                found = self.tiers.lookup(resource_key, stored_size)
                hit_tier = found.tier
                extra_ms = found.fetch_ms
                hops = found.hops
            else:
                if self.cache.lookup(resource_key):
                    hit_tier, extra_ms, hops = edge_tier_name, 0.0, 0
                else:
                    self.cache.insert(resource_key, stored_size)
                    hit_tier, extra_ms, hops = None, self.origin_fetch_ms, 1
            if converted:
                conversions = 1
                if self.policy.cache_encoded:
                    self.cache.insert(variant_key, body)

        cache_hit = hit_tier == edge_tier_name
        think = self.base_think_ms + extra_ms
        if conversions and self.compression is not None:
            think += self.compression.conversion_think_ms
        if protocol == "h3":
            think += self.h3_think_overhead_ms

        economics = EconomicsDelta(
            requests=1,
            egress_bytes=body,
            cache_served_bytes=body if cache_hit else 0,
            transfer_bytes=0 if cache_hit else body,
            origin_bytes=stored_size if hit_tier is None else 0,
            tier_fetch_bytes=stored_size * hops,
            conversions=conversions,
        )
        headers = self.response_headers(cache_hit)
        resolved_tier = hit_tier if hit_tier is not None else "origin"
        headers["x-cache-tier"] = resolved_tier
        if self.compression is not None and egress_encoding != "identity":
            headers["content-encoding"] = egress_encoding
        return ServeDecision(
            cache_hit=cache_hit,
            think_ms=think,
            protocol=protocol,
            headers=headers,
            hit_tier=resolved_tier,
            body_bytes=body if self.compression is not None else None,
            economics=economics,
        )

    def response_headers(self, cache_hit: bool) -> dict[str, str]:
        """Headers the LocEdge-style classifier fingerprints."""
        headers = {
            "server": self.provider.header_server,
            "x-cache": "HIT" if cache_hit else "MISS",
        }
        if self.provider.header_via is not None:
            headers["via"] = self.provider.header_via
        if self.supports_h3:
            headers["alt-svc"] = 'h3=":443"; ma=86400'
        return headers

    @property
    def coalesce_key(self) -> str:
        """HTTP connection-coalescing group (RFC 7540 §9.1.1 / RFC 7838).

        A provider's edge hostnames share certificates and IPs, so
        browsers coalesce their H2/H3 requests onto one connection per
        provider.  The paper leans on this (citing the "Respect the
        ORIGIN!" coalescing study): under an H2-only run all of a
        provider's resources share one connection, while partial H3
        deployment splits them across an H3 and an H2 connection —
        the root of the Fig. 7 reuse difference.
        """
        return f"cdn:{self.provider.name}"

    def warm(self, resource_key: str, size_bytes: int, rtype: str | None = None) -> None:
        """Pre-seed the cache (popular objects already at the edge).

        Tiers store the origin-encoded form, so with compression on the
        warmed size is the stored (compressed) size.
        """
        size = size_bytes
        if self.compression is not None:
            size = encoded_size(size_bytes, origin_encoding(rtype))
        if self.tiers is not None:
            self.tiers.warm(resource_key, size)
        else:
            self.cache.insert(resource_key, size)

    def __repr__(self) -> str:
        return f"<EdgeServer {self.hostname} ({self.provider.name}) h3={self.supports_h3}>"
