"""CDN edge servers: caching, protocol support, and request costs.

An :class:`EdgeServer` is what a probe actually talks to when fetching a
CDN resource.  It contributes three things to the measured timings:

* **Protocol support** — whether the edge can speak H3 for a given
  resource (drawn per-resource from the provider's ``h3_adoption`` by
  the website generator; the edge enforces it).
* **Cache state** — a byte-capacity LRU.  A hit answers after the base
  think time; a miss adds the origin-fetch penalty and inserts the
  object (the paper's double-visit protocol exists exactly to warm
  this cache).
* **H3 compute overhead** — userspace QUIC costs more CPU per request
  than kernel TCP (the paper's Section VI-B observes the wait-time
  median favouring H2); modelled as a small additive think-time term.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.cdn.provider import CdnProvider
from repro.transport.tcp import TlsVersion


class LruCache:
    """Byte-capacity LRU cache of resource keys."""

    def __init__(self, capacity_bytes: int = 512 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    def lookup(self, key: str) -> bool:
        """Check+touch; returns True on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: str, size_bytes: int) -> None:
        """Insert (or refresh) an object, evicting LRU entries as needed."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if key in self._entries:
            self._used -= self._entries.pop(key)
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            __, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1
        if size_bytes <= self.capacity_bytes:
            self._entries[key] = size_bytes
            self._used += size_bytes


@dataclass
class ServeDecision:
    """Outcome of asking an edge to serve one request."""

    cache_hit: bool
    think_ms: float
    protocol: str  # the protocol actually used
    headers: dict[str, str] = field(default_factory=dict)


class EdgeServer:
    """One CDN edge (one hostname) close to the probes."""

    kind = "edge"

    def __init__(
        self,
        hostname: str,
        provider: CdnProvider,
        base_rtt_ms: float = 20.0,
        base_think_ms: float = 8.0,
        origin_fetch_ms: float = 60.0,
        h3_think_overhead_ms: float = 4.0,
        supports_h3: bool = True,
        tls_version: TlsVersion = TlsVersion.TLS13,
        cache_capacity_bytes: int = 512 * 1024 * 1024,
        issues_tickets: bool = True,
        resumption_rate: float = 0.75,
        tls_setup_cpu_ms: float = 9.0,
        resumed_setup_cpu_ms: float = 2.0,
    ) -> None:
        self.hostname = hostname
        self.provider = provider
        self.base_rtt_ms = base_rtt_ms
        self.base_think_ms = base_think_ms
        self.origin_fetch_ms = origin_fetch_ms
        self.h3_think_overhead_ms = h3_think_overhead_ms
        self.supports_h3 = supports_h3
        self.supports_h2 = True
        self.tls_version = tls_version
        self.cache = LruCache(cache_capacity_bytes)
        self.issues_tickets = issues_tickets
        #: Probability a presented session ticket is accepted.  Real CDN
        #: edges are load-balanced fleets with rotating ticket keys, so
        #: resumption succeeds well below 100 % of the time.
        self.resumption_rate = resumption_rate
        #: Server-side CPU cost of a full TLS handshake (certificate
        #: signing); added to the opening request's think time.  Session
        #: resumption skips the certificate crypto and pays the cheaper
        #: cost.  Partial H3 deployment splits a provider's traffic over
        #: extra connections, so complicated pages pay this more often —
        #: one ingredient of the paper's Fig. 6(a) turning point.
        self.tls_setup_cpu_ms = tls_setup_cpu_ms
        self.resumed_setup_cpu_ms = resumed_setup_cpu_ms

    def serve(self, resource_key: str, size_bytes: int, protocol: str) -> ServeDecision:
        """Process one request and report its server-side cost.

        ``protocol`` is ``"h2"`` or ``"h3"``; requesting H3 from an edge
        that does not support it is a caller bug.
        """
        if protocol == "h3" and not self.supports_h3:
            raise ValueError(f"{self.hostname} does not support H3")
        hit = self.cache.lookup(resource_key)
        think = self.base_think_ms
        if not hit:
            think += self.origin_fetch_ms
            self.cache.insert(resource_key, size_bytes)
        if protocol == "h3":
            think += self.h3_think_overhead_ms
        return ServeDecision(
            cache_hit=hit,
            think_ms=think,
            protocol=protocol,
            headers=self.response_headers(hit),
        )

    def response_headers(self, cache_hit: bool) -> dict[str, str]:
        """Headers the LocEdge-style classifier fingerprints."""
        headers = {
            "server": self.provider.header_server,
            "x-cache": "HIT" if cache_hit else "MISS",
        }
        if self.provider.header_via is not None:
            headers["via"] = self.provider.header_via
        if self.supports_h3:
            headers["alt-svc"] = 'h3=":443"; ma=86400'
        return headers

    @property
    def coalesce_key(self) -> str:
        """HTTP connection-coalescing group (RFC 7540 §9.1.1 / RFC 7838).

        A provider's edge hostnames share certificates and IPs, so
        browsers coalesce their H2/H3 requests onto one connection per
        provider.  The paper leans on this (citing the "Respect the
        ORIGIN!" coalescing study): under an H2-only run all of a
        provider's resources share one connection, while partial H3
        deployment splits them across an H3 and an H2 connection —
        the root of the Fig. 7 reuse difference.
        """
        return f"cdn:{self.provider.name}"

    def warm(self, resource_key: str, size_bytes: int) -> None:
        """Pre-seed the cache (popular objects already at the edge)."""
        self.cache.insert(resource_key, size_bytes)

    def __repr__(self) -> str:
        return f"<EdgeServer {self.hostname} ({self.provider.name}) h3={self.supports_h3}>"
