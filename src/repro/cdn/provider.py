"""The CDN provider registry (the paper's Table I, plus model parameters).

Each :class:`CdnProvider` bundles:

* **Table I metadata** — the year the provider released H3 support and
  its published performance report, reproduced verbatim from the paper.
* **Model parameters** — market share among CDN requests and the
  fraction of its resources served over H3, calibrated so that the
  synthetic campaign reproduces the paper's Table II / Fig. 2 marginals
  (CDN-H3 ≈ 26 % of all requests; Google ≈ 50 % and Cloudflare ≈ 45 %
  of H3-enabled CDN requests).
* **Identification signatures** — response-header values and shared
  edge hostnames used by the LocEdge-style classifier and by the
  shared-provider (Fig. 8 / Table III) analysis.  The union of
  ``shared_domains`` across providers is 58 hostnames, matching the 58
  cross-page domains the paper's case study extracts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CdnProvider:
    """One CDN provider and everything the simulation knows about it."""

    name: str
    display_name: str
    #: Fraction of all CDN requests hosted by this provider.
    market_share: float
    #: Fraction of this provider's resources that are H3-enabled.
    h3_adoption: float
    #: Year the provider released H3 support (Table I), None if unknown.
    h3_release_year: int | None
    #: The provider's published performance report (Table I).
    performance_report: str
    #: Edge hostnames shared by many customer webpages.
    shared_domains: tuple[str, ...]
    #: ``Server`` response-header value emitted by this provider's edges.
    header_server: str
    #: ``Via``-style header fingerprint, if the provider sets one.
    header_via: str | None = None
    #: Whether the paper counts this provider among the "giants".
    is_giant: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.market_share <= 1.0:
            raise ValueError(f"{self.name}: market_share must be in [0, 1]")
        if not 0.0 <= self.h3_adoption <= 1.0:
            raise ValueError(f"{self.name}: h3_adoption must be in [0, 1]")
        if not self.shared_domains:
            raise ValueError(f"{self.name}: needs at least one shared domain")


_REGISTRY: tuple[CdnProvider, ...] = (
    CdnProvider(
        name="google",
        display_name="Google Cloud CDN",
        market_share=0.21,
        h3_adoption=0.90,
        h3_release_year=2021,
        performance_report=(
            "Reduce search latency by 2%, video rebuffer times by 9%, and "
            "improves mobile device throughput by 7%."
        ),
        shared_domains=(
            "ajax.googleapis.com",
            "fonts.googleapis.com",
            "fonts.gstatic.com",
            "www.gstatic.com",
            "ssl.gstatic.com",
            "www.googletagmanager.com",
            "www.google-analytics.com",
            "storage.googleapis.com",
            "lh3.googleusercontent.com",
            "maps.googleapis.com",
            "securepubads.g.doubleclick.net",
            "i.ytimg.com",
        ),
        header_server="gws",
        header_via=None,
        is_giant=True,
    ),
    CdnProvider(
        name="cloudflare",
        display_name="Cloudflare",
        market_share=0.35,
        h3_adoption=0.28,
        h3_release_year=2019,
        performance_report=(
            "H3 performs 12.4% better in TTFB, but 1-4% worse in PLT than H2."
        ),
        shared_domains=(
            "cdnjs.cloudflare.com",
            "cdn.jsdelivr.net.cdn.cloudflare.net",
            "static.cloudflareinsights.com",
            "challenges.cloudflare.com",
            "cdn-cgi.cloudflare.com",
            "assets.cloudflare.com",
            "workers.cloudflare.com",
            "r2.cloudflarestorage.com",
            "videodelivery.net",
            "imagedelivery.net",
        ),
        header_server="cloudflare",
        header_via="1.1 cloudflare",
        is_giant=True,
    ),
    CdnProvider(
        name="amazon",
        display_name="Amazon CloudFront",
        market_share=0.14,
        h3_adoption=0.06,
        h3_release_year=2022,
        performance_report="N/A",
        shared_domains=(
            "d1.awsstatic.com",
            "images-na.ssl-images-amazon.com",
            "m.media-amazon.com",
            "dk9ps7goqoeef.cloudfront.net",
            "d2c7xlmseob604.cloudfront.net",
            "assets.cloudfront.net",
            "static.cloudfront.net",
            "media.cloudfront.net",
        ),
        header_server="AmazonS3",
        header_via="1.1 cloudfront.net (CloudFront)",
        is_giant=True,
    ),
    CdnProvider(
        name="akamai",
        display_name="Akamai",
        market_share=0.12,
        h3_adoption=0.06,
        h3_release_year=2023,
        performance_report=(
            "6.5% enhancement in users with TAT under 25ms; 12.7% improvement "
            "for requests exceeding 1 Mbps."
        ),
        shared_domains=(
            "a248.e.akamai.net",
            "assets.akamaized.net",
            "static.akamaized.net",
            "media.akamaized.net",
            "cdn.akamai.steamstatic.com",
            "img.akamaized.net",
            "scripts.akamaized.net",
        ),
        header_server="AkamaiGHost",
        header_via=None,
        is_giant=True,
    ),
    CdnProvider(
        name="fastly",
        display_name="Fastly",
        market_share=0.07,
        h3_adoption=0.06,
        h3_release_year=2021,
        performance_report="QUIC can represent an 8% increase in throughput.",
        shared_domains=(
            "assets.fastly.net",
            "global.ssl.fastly.net",
            "static.fastly.net",
            "cdn.fastly.net",
            "img.fastly.net",
            "media.fastly.net",
        ),
        header_server="Varnish",
        header_via="1.1 varnish (Fastly)",
        is_giant=True,
    ),
    CdnProvider(
        name="microsoft",
        display_name="Microsoft Azure CDN",
        market_share=0.04,
        h3_adoption=0.05,
        h3_release_year=None,
        performance_report="N/A",
        shared_domains=(
            "ajax.aspnetcdn.com",
            "static.azureedge.net",
            "assets.azureedge.net",
            "media.azureedge.net",
            "cdn.office.net",
            "js.monitor.azure.com",
        ),
        header_server="ECAcc",
        header_via=None,
        is_giant=True,
    ),
    CdnProvider(
        name="quic_cloud",
        display_name="QUIC.Cloud",
        market_share=0.01,
        h3_adoption=0.95,
        h3_release_year=2021,
        performance_report="H3 turns TTFB from 231ms to 24ms.",
        shared_domains=(
            "cdn.quic.cloud",
            "img.quic.cloud",
        ),
        header_server="LiteSpeed",
        header_via=None,
        is_giant=False,
    ),
    CdnProvider(
        name="meta",
        display_name="Meta",
        market_share=0.02,
        h3_adoption=0.42,
        h3_release_year=2022,
        performance_report="H3 reduces tail latency by 20% and MTBR by 22%.",
        shared_domains=(
            "static.xx.fbcdn.net",
            "scontent.xx.fbcdn.net",
            "connect.facebook.net",
        ),
        header_server="proxygen-bolt",
        header_via=None,
        is_giant=False,
    ),
    CdnProvider(
        name="jsdelivr",
        display_name="jsDelivr",
        market_share=0.02,
        h3_adoption=0.20,
        h3_release_year=None,
        performance_report="N/A",
        shared_domains=(
            "cdn.jsdelivr.net",
            "fastly.jsdelivr.net",
        ),
        header_server="jsdelivr",
        header_via=None,
        is_giant=False,
    ),
    CdnProvider(
        name="cdn77",
        display_name="CDN77",
        market_share=0.02,
        h3_adoption=0.15,
        h3_release_year=None,
        performance_report="N/A",
        shared_domains=(
            "cdn.cdn77.org",
            "static.cdn77.org",
        ),
        header_server="CDN77-Turbo",
        header_via=None,
        is_giant=False,
    ),
)


def default_providers() -> tuple[CdnProvider, ...]:
    """The calibrated provider registry used throughout the library."""
    return _REGISTRY


def provider_names() -> tuple[str, ...]:
    """Registry names, in market-share-weighted registry order."""
    return tuple(p.name for p in _REGISTRY)


def get_provider(name: str) -> CdnProvider:
    """Look a provider up by ``name`` (case-insensitive)."""
    wanted = name.lower()
    for provider in _REGISTRY:
        if provider.name == wanted:
            return provider
    raise KeyError(f"unknown CDN provider {name!r}; known: {provider_names()}")


#: The six giants the paper's Fig. 8 analysis enumerates: "Amazon,
#: Akamai, Cloudflare, Fastly, Google, and Microsoft".
GIANT_PROVIDERS: tuple[str, ...] = tuple(p.name for p in _REGISTRY if p.is_giant)
