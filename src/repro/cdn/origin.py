"""Non-CDN origin web servers.

The 33 % of requests the paper classifies as non-CDN are answered by
the website's own infrastructure: farther away (higher RTT), slower to
process, and with patchier protocol support (the Table II "Others" row
— HTTP/1.x-only servers — lives here).
"""

from __future__ import annotations

from repro.cdn.provider import CdnProvider
from repro.transport.tcp import TlsVersion


class OriginServer:
    """A website's own (non-CDN) server."""

    kind = "origin"
    #: Origins don't belong to a CDN provider.
    provider: CdnProvider | None = None

    def __init__(
        self,
        hostname: str,
        base_rtt_ms: float = 90.0,
        base_think_ms: float = 25.0,
        h3_think_overhead_ms: float = 4.0,
        supports_h3: bool = False,
        supports_h2: bool = True,
        tls_version: TlsVersion = TlsVersion.TLS13,
        issues_tickets: bool = True,
        resumption_rate: float = 0.9,
        tls_setup_cpu_ms: float = 9.0,
        resumed_setup_cpu_ms: float = 2.0,
    ) -> None:
        if not supports_h2 and supports_h3:
            raise ValueError("an H3-only origin would be unreachable for H2 probes")
        self.hostname = hostname
        self.base_rtt_ms = base_rtt_ms
        self.base_think_ms = base_think_ms
        self.h3_think_overhead_ms = h3_think_overhead_ms
        self.supports_h3 = supports_h3
        #: H1.1-only servers (the paper's "Others" bucket) set this False.
        self.supports_h2 = supports_h2
        self.tls_version = tls_version
        self.issues_tickets = issues_tickets
        #: Single-machine origins accept tickets more reliably than
        #: load-balanced edge fleets.
        self.resumption_rate = resumption_rate
        #: TLS handshake CPU (full / resumed), as on edges.
        self.tls_setup_cpu_ms = tls_setup_cpu_ms
        self.resumed_setup_cpu_ms = resumed_setup_cpu_ms

    def serve(
        self,
        resource_key: str,
        size_bytes: int,
        protocol: str,
        accept_encoding: tuple[str, ...] | None = None,
        rtype: str | None = None,
    ):
        """Process one request (no cache tier at the origin).

        ``accept_encoding``/``rtype`` are accepted for signature parity
        with :meth:`EdgeServer.serve` and ignored: non-CDN origins in
        this model serve identity bodies straight off disk.
        """
        from repro.cdn.edge import ServeDecision  # local import avoids a cycle

        if protocol == "h3" and not self.supports_h3:
            raise ValueError(f"{self.hostname} does not support H3")
        if protocol == "h2" and not self.supports_h2:
            raise ValueError(f"{self.hostname} is HTTP/1.x only")
        think = self.base_think_ms
        if protocol == "h3":
            think += self.h3_think_overhead_ms
        return ServeDecision(
            cache_hit=False,
            think_ms=think,
            protocol=protocol,
            headers=self.response_headers(),
        )

    @property
    def coalesce_key(self) -> str:
        """Origins don't share certificates: no cross-host coalescing."""
        return f"origin:{self.hostname}"

    def response_headers(self) -> dict[str, str]:
        headers = {"server": "nginx"}
        if self.supports_h3:
            headers["alt-svc"] = 'h3=":443"; ma=86400'
        return headers

    def __repr__(self) -> str:
        return f"<OriginServer {self.hostname} h3={self.supports_h3} h2={self.supports_h2}>"
