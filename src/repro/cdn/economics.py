"""Provider-side byte accounting: egress, offload, amplification.

The client-facing metrics (PLT, handshake counts) say nothing about
what a workload costs the *provider*.  This module meters the bytes
that matter commercially, in the egress-cost framing of the CDN
architectures survey:

* **egress** — bytes the edge sends to clients (the billable side);
* **cache-served vs transfer** — how much of that egress was satisfied
  from the edge tier vs fetched into the edge from an upstream tier or
  the origin on this request (egress-encoding units, so the two always
  sum to egress — that is the conservation invariant ``repro.check``
  enforces);
* **origin** — bytes the customer origin actually shipped (stored
  encoding), the denominator of both the offload ratio and Lin et
  al.'s egress/ingress amplification factor;
* **tier transfer** — inter-tier wire bytes (stored encoding × hops).

Ledgers merge associatively and are flushed into the deterministic
``repro.obs`` counter registry, so per-worker ledgers combine to the
same totals regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counter names the ledger flushes to (prefixed ``economics.``).
LEDGER_FIELDS = (
    "requests",
    "egress_bytes",
    "cache_served_bytes",
    "transfer_bytes",
    "origin_bytes",
    "tier_fetch_bytes",
    "conversions",
)


@dataclass(frozen=True)
class EconomicsDelta:
    """Byte accounting for one served request."""

    requests: int = 1
    egress_bytes: int = 0
    cache_served_bytes: int = 0
    transfer_bytes: int = 0
    origin_bytes: int = 0
    tier_fetch_bytes: int = 0
    conversions: int = 0


@dataclass
class EconomicsLedger:
    """Accumulated provider-side byte accounting.

    ``tier_hits`` maps tier name → hit count; full-chain misses are
    counted in ``misses``.
    """

    requests: int = 0
    egress_bytes: int = 0
    cache_served_bytes: int = 0
    transfer_bytes: int = 0
    origin_bytes: int = 0
    tier_fetch_bytes: int = 0
    conversions: int = 0
    misses: int = 0
    tier_hits: dict[str, int] = field(default_factory=dict)

    def add(self, delta: EconomicsDelta, hit_tier: str | None = None) -> None:
        """Fold one request's delta in; ``hit_tier`` of ``"origin"`` or
        ``None`` counts as a full-chain miss."""
        self.requests += delta.requests
        self.egress_bytes += delta.egress_bytes
        self.cache_served_bytes += delta.cache_served_bytes
        self.transfer_bytes += delta.transfer_bytes
        self.origin_bytes += delta.origin_bytes
        self.tier_fetch_bytes += delta.tier_fetch_bytes
        self.conversions += delta.conversions
        if hit_tier is None or hit_tier == "origin":
            self.misses += 1
        else:
            self.tier_hits[hit_tier] = self.tier_hits.get(hit_tier, 0) + 1

    def merge(self, other: "EconomicsLedger") -> None:
        for name in LEDGER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.misses += other.misses
        for tier, hits in other.tier_hits.items():
            self.tier_hits[tier] = self.tier_hits.get(tier, 0) + hits

    @property
    def conserved(self) -> bool:
        """The invariant: every egressed byte was either served from the
        edge cache or transferred into the edge for this request."""
        return self.egress_bytes == self.cache_served_bytes + self.transfer_bytes

    @property
    def offload_ratio(self) -> float:
        """Fraction of egress the origin never saw (1.0 = fully offloaded)."""
        if self.egress_bytes <= 0:
            return 0.0
        return max(0.0, 1.0 - self.origin_bytes / self.egress_bytes)

    @property
    def amplification(self) -> float:
        """Egress/ingress amplification factor (Lin et al.'s metric)."""
        if self.origin_bytes <= 0:
            return 0.0
        return self.egress_bytes / self.origin_bytes

    def counter_items(self) -> list[tuple[str, int]]:
        """(counter name, value) pairs for the obs registry, nonzero only."""
        items = [
            (f"economics.{name}", getattr(self, name))
            for name in LEDGER_FIELDS
            if getattr(self, name)
        ]
        for tier in sorted(self.tier_hits):
            items.append((f"cache.hits.{tier}", self.tier_hits[tier]))
        if self.misses:
            items.append(("cache.misses", self.misses))
        return items

    @classmethod
    def from_counters(cls, counter_of) -> "EconomicsLedger":
        """Rebuild a ledger from a counter accessor.

        ``counter_of`` is a callable like
        ``lambda name: registry.counter(name)`` returning 0 for absent
        counters (the nonzero-only flush makes absence meaningful).
        Tier hit attribution is not recoverable this way unless the
        caller knows the tier names, so ``tier_hits`` stays empty.
        """
        ledger = cls()
        for name in LEDGER_FIELDS:
            setattr(ledger, name, int(counter_of(f"economics.{name}")))
        ledger.misses = int(counter_of("cache.misses"))
        return ledger
