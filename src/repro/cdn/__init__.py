"""Content Delivery Network substrate.

Models the commercial CDN ecosystem the paper measures: a registry of
providers (market share, per-provider H3 adoption, H3 release year —
the paper's Table I), edge servers with LRU content caches optionally
layered into edge → regional → origin tier chains, per-edge
compression/format negotiation with provider conversion policies, a
provider-side economics ledger (egress, offload, amplification),
non-CDN origin web servers, and two classifiers that map a response
back to its provider: a LocEdge-style header+domain classifier and a
cheap hostname-dictionary one.
"""

from repro.cdn.classifier import (
    ClassificationResult,
    DictClassifier,
    classifier_disagreement,
    classify_response,
)
from repro.cdn.compression import (
    CompressionConfig,
    CompressionPolicy,
    client_accept_encoding,
    encoded_size,
    is_compressible,
    negotiate,
    provider_policy,
)
from repro.cdn.economics import EconomicsDelta, EconomicsLedger
from repro.cdn.edge import EdgeServer, LruCache, ServeDecision
from repro.cdn.hierarchy import (
    DEFAULT_HIERARCHY,
    HIERARCHY_PRESETS,
    HierarchyConfig,
    TierChain,
    TierSpec,
    hierarchy_preset,
)
from repro.cdn.origin import OriginServer
from repro.cdn.provider import (
    GIANT_PROVIDERS,
    CdnProvider,
    default_providers,
    get_provider,
    provider_names,
)

__all__ = [
    "CdnProvider",
    "ClassificationResult",
    "CompressionConfig",
    "CompressionPolicy",
    "DEFAULT_HIERARCHY",
    "DictClassifier",
    "EconomicsDelta",
    "EconomicsLedger",
    "EdgeServer",
    "GIANT_PROVIDERS",
    "HIERARCHY_PRESETS",
    "HierarchyConfig",
    "LruCache",
    "OriginServer",
    "ServeDecision",
    "TierChain",
    "TierSpec",
    "classifier_disagreement",
    "classify_response",
    "client_accept_encoding",
    "default_providers",
    "encoded_size",
    "get_provider",
    "hierarchy_preset",
    "is_compressible",
    "negotiate",
    "provider_names",
    "provider_policy",
]
