"""Content Delivery Network substrate.

Models the commercial CDN ecosystem the paper measures: a registry of
providers (market share, per-provider H3 adoption, H3 release year —
the paper's Table I), edge servers with LRU content caches and
H3-aware request processing costs, non-CDN origin web servers, and a
LocEdge-style classifier that maps a response back to its provider.
"""

from repro.cdn.classifier import ClassificationResult, classify_response
from repro.cdn.edge import EdgeServer, LruCache
from repro.cdn.origin import OriginServer
from repro.cdn.provider import (
    GIANT_PROVIDERS,
    CdnProvider,
    default_providers,
    get_provider,
    provider_names,
)

__all__ = [
    "CdnProvider",
    "ClassificationResult",
    "EdgeServer",
    "GIANT_PROVIDERS",
    "LruCache",
    "OriginServer",
    "classify_response",
    "default_providers",
    "get_provider",
    "provider_names",
]
