"""Multi-tier CDN cache hierarchies: edge → regional → origin.

The paper measures CDNs from the client side, where a provider looks
like a single edge cache.  Internally a request that misses the edge
does not go straight to the customer origin: providers run layered
cache fleets (the CDN-architectures survey's edge → regional/parent →
origin tiering), and each extra tier both shields the origin from
misses and adds a fetch-through latency step.  This module models that
chain:

* :class:`LruCache` — the byte-capacity LRU primitive every tier uses
  (moved here from :mod:`repro.cdn.edge`, which re-exports it).
* :class:`TierSpec` / :class:`HierarchyConfig` — the declarative,
  store-keyable description of a chain (name, capacity and
  fill latency per tier).
* :class:`CacheTier` / :class:`TierChain` — the live chain an
  :class:`~repro.cdn.edge.EdgeServer` consults: lookups walk outward
  from the edge tier, fill every tier they passed through on the way
  (fill-on-read), and report where the object was found so serve
  timings and byte accounting reflect the real path.

A campaign without a :class:`HierarchyConfig` never builds a chain —
the flat single-LRU edge stays bit-identical to previous releases.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


class LruCache:
    """Byte-capacity LRU cache of resource keys."""

    def __init__(self, capacity_bytes: int = 512 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    def lookup(self, key: str) -> bool:
        """Check+touch; returns True on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: str, size_bytes: int) -> None:
        """Insert (or refresh) an object, evicting LRU entries as needed."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if key in self._entries:
            self._used -= self._entries.pop(key)
        if size_bytes > self.capacity_bytes:
            # An object that can never fit must not flush everything
            # else out on the way to not being inserted.
            return
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            __, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1
        self._entries[key] = size_bytes
        self._used += size_bytes


@dataclass(frozen=True)
class TierSpec:
    """Declarative description of one cache tier.

    ``fetch_ms`` is the latency of filling *this* tier from the next
    tier outward — the last tier fills from the customer origin.  A hit
    at tier *i* therefore costs ``sum(fetch_ms of tiers 0..i-1)`` on
    top of the edge's base think time, and a full-chain miss costs the
    sum over every tier.
    """

    name: str
    capacity_bytes: int
    fetch_ms: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tier needs a name")
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name}: capacity_bytes must be positive")
        if self.fetch_ms < 0:
            raise ValueError(f"tier {self.name}: fetch_ms must be >= 0")


@dataclass(frozen=True)
class HierarchyConfig:
    """An ordered cache chain, edge tier first."""

    tiers: tuple[TierSpec, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a hierarchy needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique, got {names}")

    @property
    def full_miss_ms(self) -> float:
        """Fetch-through latency of a miss in every tier."""
        return sum(tier.fetch_ms for tier in self.tiers)


#: The default two-tier chain: a modest edge in front of a large
#: regional parent.  25 + 40 ms for a full-chain miss sits next to the
#: flat edge's 60 ms origin-fetch penalty, so hierarchy campaigns stay
#: comparable to flat ones.
DEFAULT_HIERARCHY = HierarchyConfig(
    tiers=(
        TierSpec(name="edge", capacity_bytes=512 * 1024 * 1024, fetch_ms=25.0),
        TierSpec(name="regional", capacity_bytes=4 * 1024 * 1024 * 1024, fetch_ms=40.0),
    )
)

#: Named chains the CLI's ``--cache-tiers`` flag accepts.
HIERARCHY_PRESETS: dict[str, HierarchyConfig] = {
    "edge-regional": DEFAULT_HIERARCHY,
    "edge-metro-regional": HierarchyConfig(
        tiers=(
            TierSpec(name="edge", capacity_bytes=256 * 1024 * 1024, fetch_ms=15.0),
            TierSpec(name="metro", capacity_bytes=1024 * 1024 * 1024, fetch_ms=20.0),
            TierSpec(
                name="regional", capacity_bytes=8 * 1024 * 1024 * 1024, fetch_ms=40.0
            ),
        )
    ),
}


def hierarchy_preset(name: str) -> HierarchyConfig:
    """Look up a named tier chain."""
    try:
        return HIERARCHY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown hierarchy preset {name!r}; "
            f"known: {', '.join(HIERARCHY_PRESETS)}"
        ) from None


class CacheTier:
    """One live tier: a named LRU."""

    def __init__(self, spec: TierSpec) -> None:
        self.spec = spec
        self.cache = LruCache(spec.capacity_bytes)

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return (
            f"<CacheTier {self.name} used={self.cache.used_bytes}"
            f"/{self.spec.capacity_bytes}>"
        )


@dataclass(frozen=True)
class TierLookup:
    """Outcome of walking the chain for one request.

    ``tier`` is the name of the tier that held the object, or ``None``
    for a full-chain miss (the object came from the origin).  ``hops``
    counts the inter-tier transfers the request caused — a hit at tier
    *i* moves the object across *i* links on its way to the edge; a
    full miss crosses every tier plus the origin link.
    """

    tier: str | None
    fetch_ms: float
    hops: int


class TierChain:
    """A live cache chain for one edge server."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.tiers = [CacheTier(spec) for spec in config.tiers]

    @property
    def edge_cache(self) -> LruCache:
        """The client-facing tier's LRU (the flat-cache equivalent)."""
        return self.tiers[0].cache

    def lookup(self, key: str, size_bytes: int) -> TierLookup:
        """Walk the chain for ``key``, filling the tiers it missed.

        Fill-on-read: a hit at tier *i* copies the object into every
        tier between *i* and the edge, so the next request for it hits
        closer to the client — exactly what makes a hierarchy absorb
        popularity skew the flat edge cannot.
        """
        specs = self.config.tiers
        hit_index: int | None = None
        for index, tier in enumerate(self.tiers):
            if tier.cache.lookup(key):
                hit_index = index
                break
        fill_upto = hit_index if hit_index is not None else len(self.tiers)
        fetch_ms = sum(specs[j].fetch_ms for j in range(fill_upto))
        for j in range(fill_upto):
            self.tiers[j].cache.insert(key, size_bytes)
        return TierLookup(
            tier=specs[hit_index].name if hit_index is not None else None,
            fetch_ms=fetch_ms,
            hops=fill_upto,
        )

    def warm(self, key: str, size_bytes: int) -> None:
        """Pre-seed every tier (long-lived popular content)."""
        for tier in self.tiers:
            tier.cache.insert(key, size_bytes)

    def __repr__(self) -> str:
        return f"<TierChain {[tier.name for tier in self.tiers]}>"
