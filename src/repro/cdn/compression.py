"""Per-edge compression and format negotiation.

Models the behaviour behind Lin et al.'s "Bandwidth Nightmare"
compression format conversion attacks: CDN edges ingest content from
the origin in one encoding (typically a well-compressed br/gzip form),
and convert between formats on demand to honour the client's
``Accept-Encoding``.  A malicious client that insists on ``identity``
for a br-stored object forces the edge to decompress — small ingress,
large egress — and the provider pays the amplified egress bill.

Everything here is hash-derived and deterministic: whether a request
asks for identity is a pure function of the resource URL and the
configured attack ratio (no RNG draws, so enabling compression never
perturbs the seeded draw order of an existing campaign).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Encodings the model understands, preference-ordered for clients.
ENCODINGS = ("identity", "gzip", "br")

#: Approximate compressed-size ratios for text-like payloads.
ENCODING_RATIOS = {"identity": 1.0, "gzip": 0.35, "br": 0.30}

#: Resource types that compress well.  Images and media are already
#: entropy-coded, so edges store and serve them as-is.
COMPRESSIBLE_TYPES = frozenset({"html", "css", "js", "xhr", "font"})

#: What a well-behaved browser advertises, preference-ordered.
DEFAULT_ACCEPT = ("br", "gzip", "identity")


def is_compressible(rtype: str | None) -> bool:
    """True when a resource type benefits from transport compression."""
    return rtype in COMPRESSIBLE_TYPES


def encoded_size(size_bytes: int, encoding: str) -> int:
    """Bytes on the wire for a payload of ``size_bytes`` identity bytes."""
    try:
        ratio = ENCODING_RATIOS[encoding]
    except KeyError:
        raise ValueError(f"unknown encoding {encoding!r}") from None
    return max(1, round(size_bytes * ratio))


def origin_encoding(rtype: str | None) -> str:
    """Encoding the origin hands the CDN (br for compressible types)."""
    return "br" if is_compressible(rtype) else "identity"


@dataclass(frozen=True)
class CompressionPolicy:
    """What one provider's edges do about encodings.

    ``conversions`` lists the encodings an edge is willing to *produce*
    by converting the stored form (every provider can at least echo the
    stored encoding back).  ``cache_encoded`` says whether a converted
    variant is cached at the edge tier (post-conversion caching) or
    re-converted on every egress (pre-conversion caching).
    """

    conversions: tuple[str, ...]
    cache_encoded: bool

    def __post_init__(self) -> None:
        for encoding in self.conversions:
            if encoding not in ENCODING_RATIOS:
                raise ValueError(f"unknown encoding {encoding!r} in policy")


#: Conversion behaviour per provider, loosely following the spread Lin
#: et al. observed: every surveyed provider would decompress to
#: identity on request (the attack surface), they differ in whether
#: they re-compress and whether converted variants are cached.
PROVIDER_POLICIES: dict[str, CompressionPolicy] = {
    "google": CompressionPolicy(conversions=("identity", "gzip", "br"), cache_encoded=True),
    "cloudflare": CompressionPolicy(conversions=("identity", "gzip", "br"), cache_encoded=True),
    "amazon": CompressionPolicy(conversions=("identity", "gzip"), cache_encoded=False),
    "akamai": CompressionPolicy(conversions=("identity", "gzip"), cache_encoded=True),
    "fastly": CompressionPolicy(conversions=("identity", "gzip", "br"), cache_encoded=False),
    "microsoft": CompressionPolicy(conversions=("identity", "gzip"), cache_encoded=False),
    "quic_cloud": CompressionPolicy(conversions=("identity", "gzip", "br"), cache_encoded=False),
    "meta": CompressionPolicy(conversions=("identity", "gzip"), cache_encoded=True),
    "jsdelivr": CompressionPolicy(conversions=("identity",), cache_encoded=False),
    "cdn77": CompressionPolicy(conversions=("identity",), cache_encoded=False),
}

#: Fallback for providers without an explicit entry: decompress-only,
#: nothing cached post-conversion.
DEFAULT_POLICY = CompressionPolicy(conversions=("identity",), cache_encoded=False)


def provider_policy(provider_name: str | None) -> CompressionPolicy:
    """The conversion policy for a provider (default for unknown ones)."""
    if provider_name is None:
        return DEFAULT_POLICY
    return PROVIDER_POLICIES.get(provider_name, DEFAULT_POLICY)


@dataclass(frozen=True)
class CompressionConfig:
    """Campaign-level compression knobs.

    ``identity_request_ratio`` is the fraction of compressible
    resources the client requests with ``Accept-Encoding: identity`` —
    0.0 models honest browsers, 1.0 a full-blown conversion attack.
    ``conversion_think_ms`` is the edge CPU cost of one format
    conversion.
    """

    identity_request_ratio: float = 0.0
    conversion_think_ms: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.identity_request_ratio <= 1.0:
            raise ValueError("identity_request_ratio must be within [0, 1]")
        if self.conversion_think_ms < 0:
            raise ValueError("conversion_think_ms must be >= 0")


def wants_identity(url: str, ratio: float) -> bool:
    """Hash-derived per-resource attack selector.

    Deterministic and nested: the set of URLs selected at ratio r1 is a
    subset of those selected at r2 > r1, which is what makes the
    amplification factor monotone in the ratio.
    """
    if ratio <= 0.0:
        return False
    if ratio >= 1.0:
        return True
    digest = hashlib.blake2b(url.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64 < ratio


def client_accept_encoding(
    url: str, rtype: str | None, config: CompressionConfig
) -> tuple[str, ...]:
    """The Accept-Encoding tuple a client sends for one resource."""
    if not is_compressible(rtype):
        return ("identity",)
    if wants_identity(url, config.identity_request_ratio):
        return ("identity",)
    return DEFAULT_ACCEPT


def negotiate(
    accept_encoding: tuple[str, ...],
    stored_encoding: str,
    policy: CompressionPolicy,
) -> str:
    """Pick the egress encoding for one response.

    Walks the client's preference list: the stored encoding is always
    free to serve; anything else requires the policy to allow the
    conversion.  If nothing acceptable can be produced, the edge serves
    the stored form (real CDNs do exactly this rather than 406ing).
    """
    for encoding in accept_encoding:
        if encoding == stored_encoding:
            return encoding
        if encoding in policy.conversions:
            return encoding
    return stored_encoding
