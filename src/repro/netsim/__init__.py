"""Packet-level network path simulation.

This package models the network between a measurement probe and a server
(CDN edge or origin): propagation delay, serialization at a bottleneck
rate, FIFO queueing, and stochastic packet loss.  It is the stand-in for
the real Internet paths the paper measured from CloudLab, and for the
``tc netem`` loss injection used in the paper's Fig. 9 sweep.
"""

from repro.netsim.link import Link, LinkStats
from repro.netsim.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    make_loss_model,
)
from repro.netsim.netem import NetemProfile
from repro.netsim.packet import Packet, PacketKind, StreamChunk
from repro.netsim.path import NetworkPath
from repro.netsim.proxy import PROXY_MODELS, ProxyConfig, SegmentedPath

__all__ = [
    "BernoulliLoss",
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "LossModel",
    "NetemProfile",
    "NetworkPath",
    "NoLoss",
    "PROXY_MODELS",
    "Packet",
    "PacketKind",
    "ProxyConfig",
    "SegmentedPath",
    "StreamChunk",
    "make_loss_model",
]
