"""Packet and stream-chunk datatypes shared by TCP and QUIC models.

A :class:`Packet` is what traverses a :class:`~repro.netsim.link.Link`.
Its payload is a list of :class:`StreamChunk` records describing which
application streams' bytes it carries.  TCP and QUIC differ in how the
*receiver* releases those chunks (in byte-stream order vs per stream) —
the packet format itself is shared.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

#: Conventional Ethernet-ish maximum segment size used by both transports.
DEFAULT_MSS = 1460

#: Size in bytes we charge for a packet with no payload (headers only).
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


class PacketKind(enum.Enum):
    """Coarse classification of a packet's role."""

    HANDSHAKE = "handshake"
    DATA = "data"
    ACK = "ack"
    TICKET = "ticket"


@dataclass(frozen=True, slots=True)
class StreamChunk:
    """A contiguous run of one stream's bytes carried by a packet.

    ``offset`` is the stream-relative byte offset; ``fin`` marks the last
    chunk of the stream.
    """

    stream_id: int
    offset: int
    size: int
    fin: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"chunk offset must be >= 0, got {self.offset}")

    @property
    def end(self) -> int:
        """One past the last stream byte in this chunk."""
        return self.offset + self.size


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    ``seq`` is a transport-assigned packet number (QUIC-style: unique,
    monotonically increasing, never reused even for retransmissions; the
    TCP model also tracks byte ranges via chunks).  ``ack_seq`` is used by
    ACK packets to carry cumulative/summary acknowledgement state:
    ``ack_seq`` is the largest packet number covered and ``sack`` lists
    every packet number the ACK acknowledges (QUIC-style ranges,
    flattened).  ``ack_delay_ms`` reports how long the receiver held the
    ACK back (RFC 9002 §5.3) so the sender can exclude delayed-ack time
    from its RTT samples.
    """

    kind: PacketKind
    seq: int = -1
    chunks: tuple[StreamChunk, ...] = ()
    ack_seq: int = -1
    sack: tuple[int, ...] = ()
    ack_delay_ms: float = 0.0
    size_bytes: int = field(default=0)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: float = -1.0
    retransmission: bool = False
    #: TCP models use this: position of the packet's payload in the
    #: connection-wide byte stream (the receiver reassembles in this
    #: order, which is what produces head-of-line blocking).
    conn_start: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = HEADER_BYTES + self.payload_bytes

    @property
    def payload_bytes(self) -> int:
        """Total stream bytes carried by this packet."""
        return sum(chunk.size for chunk in self.chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chunks = ",".join(
            f"s{c.stream_id}[{c.offset}:{c.end}{'F' if c.fin else ''}]"
            for c in self.chunks
        )
        return f"<Packet {self.kind.value} seq={self.seq} {chunks}>"
