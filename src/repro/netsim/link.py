"""A unidirectional link with delay, rate, FIFO queueing, and loss.

The link is the only place in the simulator where packets experience
time: serialization at the bottleneck rate, a fixed one-way propagation
delay plus optional jitter, and stochastic drops.  Endpoints hand the
link a packet and a delivery callback; the link either schedules the
callback or silently drops the packet (recording it in the stats).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.events import EventLoop
from repro.netsim.loss import LossModel, NoLoss
from repro.netsim.packet import Packet


@dataclass
class LinkStats:
    """Counters a link maintains for diagnostics and the ethics section.

    The paper reports average probe traffic (126.7 Kbps); these counters
    let the measurement harness compute the analogous figure.
    """

    sent_packets: int = 0
    dropped_packets: int = 0
    delivered_packets: int = 0
    sent_bytes: int = 0
    delivered_bytes: int = 0
    busy_time_ms: float = field(default=0.0)

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of packets dropped so far."""
        if self.sent_packets == 0:
            return 0.0
        return self.dropped_packets / self.sent_packets


class Link:
    """One direction of a network path.

    Parameters
    ----------
    loop:
        The simulation event loop.
    delay_ms:
        One-way propagation delay.
    rate_mbps:
        Bottleneck rate in megabits per second.  ``None`` means
        infinitely fast serialization (useful in unit tests).
    loss:
        Loss model applied per packet at ingress.
    jitter_ms:
        If positive, uniform jitter in ``[0, jitter_ms]`` added to the
        propagation delay (delivery order is still preserved).
    rng:
        Randomness source for loss and jitter; pass a seeded
        :class:`random.Random` for reproducibility.
    """

    def __init__(
        self,
        loop: EventLoop,
        delay_ms: float,
        rate_mbps: float | None = None,
        loss: LossModel | None = None,
        jitter_ms: float = 0.0,
        rng: random.Random | None = None,
        name: str = "link",
    ) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        if rate_mbps is not None and rate_mbps <= 0:
            raise ValueError(f"rate_mbps must be positive, got {rate_mbps}")
        if jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {jitter_ms}")
        self.loop = loop
        self.delay_ms = delay_ms
        self.rate_mbps = rate_mbps
        self.loss = loss if loss is not None else NoLoss()
        self.jitter_ms = jitter_ms
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.stats = LinkStats()
        #: Optional deterministic drop hook (failure injection in tests):
        #: called with each packet before the stochastic loss model; a
        #: truthy return drops the packet.
        self.drop_filter: Callable[[Packet], bool] | None = None
        #: Optional sim-time metrics sampler (repro.obs.metrics), set by
        #: the ObsContext per visit and detached at drain; sampled after
        #: the transmitter slot is reserved so it sees the backlog.
        self.sampler = None
        # Time at which the transmitter finishes serializing the packet
        # currently on the wire; packets queue behind it (FIFO).
        self._tx_free_at = 0.0
        # Earliest permissible delivery time, to keep FIFO ordering under
        # jitter (a jittered packet may not overtake its predecessor).
        self._last_delivery_at = 0.0
        # Reserved-but-not-yet-due deliveries (analytic fast path):
        # ``(deliver_at, size_bytes)`` in nondecreasing ``deliver_at``
        # order (guaranteed by the ``_last_delivery_at`` monotonicity),
        # settled into the delivered stats once the clock reaches them.
        self._pending_reserved: deque[tuple[float, int]] = deque()

    def serialization_delay_ms(self, packet: Packet) -> float:
        """Time to clock ``packet`` onto the wire at the link rate."""
        if self.rate_mbps is None:
            return 0.0
        bits = packet.size_bytes * 8
        return bits / (self.rate_mbps * 1000.0)

    @property
    def fast_path_eligible(self) -> bool:
        """Whether delivery on this link is a pure function of size+time.

        True when nothing stochastic or injected can touch a packet: no
        loss model, no jitter, no drop filter.  Only then may the
        analytic transport fast path reserve transmissions without
        simulating them (:meth:`reserve_transmit`).
        """
        return (
            isinstance(self.loss, NoLoss)
            and self.jitter_ms == 0.0
            and self.drop_filter is None
        )

    def reserve_transmit(self, size_bytes: int, now: float) -> float:
        """Account one guaranteed delivery analytically; returns its time.

        Performs exactly the queueing/serialization/propagation
        arithmetic of :meth:`transmit` — including advancing the shared
        transmitter and FIFO-ordering state, so reserved and normally
        transmitted packets queue behind each other consistently — but
        schedules no event.  Only valid while :attr:`fast_path_eligible`
        holds (the packet cannot be dropped and has no jitter draw, so
        skipping the loss/jitter code changes nothing, not even RNG
        state).

        The delivery is *accounted* when the clock reaches its computed
        time, not at reservation: delivered stats are settled lazily via
        :meth:`settle_reserved`, so mid-visit readers (link samplers,
        ethics accounting, progress heartbeats) never see in-flight
        bytes as already delivered.
        """
        if self._pending_reserved:
            self.settle_reserved(now)
        self.stats.sent_packets += 1
        self.stats.sent_bytes += size_bytes
        start = now if now > self._tx_free_at else self._tx_free_at
        if self.rate_mbps is None:
            tx_done = start
        else:
            tx_done = start + (size_bytes * 8) / (self.rate_mbps * 1000.0)
            self.stats.busy_time_ms += tx_done - start
        self._tx_free_at = tx_done
        deliver_at = tx_done + self.delay_ms
        if deliver_at < self._last_delivery_at:
            deliver_at = self._last_delivery_at
        self._last_delivery_at = deliver_at
        self._pending_reserved.append((deliver_at, size_bytes))
        return deliver_at

    def settle_reserved(self, now: float) -> None:
        """Fold reserved deliveries due by ``now`` into the stats.

        Reservations are queued in nondecreasing delivery order, so a
        single front-of-queue sweep settles everything due.  The
        analytic walk settles both links when it finishes (at its final
        virtual time), which keeps end-of-visit totals identical to the
        packet path's.
        """
        pending = self._pending_reserved
        while pending and pending[0][0] <= now:
            _, size_bytes = pending.popleft()
            self.stats.delivered_packets += 1
            self.stats.delivered_bytes += size_bytes

    def transmit(self, packet: Packet, on_deliver: Callable[[Packet], None]) -> bool:
        """Send ``packet``; returns ``False`` if it was dropped.

        The delivery callback runs on the event loop after queueing +
        serialization + propagation (+ jitter).  Loss is applied up
        front: a dropped packet still occupies the transmitter (it is
        lost *after* being serialized, as on a real path).
        """
        now = self.loop.now
        if self._pending_reserved:
            self.settle_reserved(now)
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size_bytes

        start = max(now, self._tx_free_at)
        tx_done = start + self.serialization_delay_ms(packet)
        self.stats.busy_time_ms += tx_done - start
        self._tx_free_at = tx_done
        if self.sampler is not None:
            self.sampler.on_transmit(now, tx_done, packet.size_bytes)

        # The stochastic loss draw happens unconditionally, *before* the
        # deterministic drop filter is consulted: a filter-dropped packet
        # must still consume its loss draw, or the loss/jitter RNG stream
        # diverges from an unfiltered run for the rest of the visit.
        loss_dropped = self.loss.should_drop(self.rng)
        filter_dropped = self.drop_filter is not None and self.drop_filter(packet)
        if loss_dropped or filter_dropped:
            self.stats.dropped_packets += 1
            return False

        delay = self.delay_ms
        if self.jitter_ms > 0:
            delay += self.rng.uniform(0.0, self.jitter_ms)
        deliver_at = max(tx_done + delay, self._last_delivery_at)
        self._last_delivery_at = deliver_at
        self.loop.call_at(deliver_at, self._deliver, packet, on_deliver)
        return True

    def _deliver(self, packet: Packet, on_deliver: Callable[[Packet], None]) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size_bytes
        on_deliver(packet)

    def __repr__(self) -> str:
        rate = f"{self.rate_mbps}Mbps" if self.rate_mbps else "inf"
        return f"<Link {self.name} {self.delay_ms}ms {rate} {self.loss!r}>"
