"""A bidirectional probe↔server path built from two links.

Transports talk to a :class:`NetworkPath`, never to links directly:
``send_to_server`` / ``send_to_client`` push packets in each direction.
A path is created from a :class:`~repro.netsim.netem.NetemProfile`, the
declarative description of the conditions the paper imposes with
``tc netem``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.loss import make_loss_model
from repro.netsim.netem import NetemProfile
from repro.netsim.packet import Packet


class NetworkPath:
    """Two half-duplex links modelling one probe↔server round trip."""

    #: A direct path carries UDP end-to-end, so an H3 handshake can
    #: complete without downgrade (proxy topologies may override this).
    h3_passthrough = True

    def __init__(
        self,
        loop: EventLoop,
        profile: NetemProfile,
        rng: random.Random | None = None,
        name: str = "path",
    ) -> None:
        self.loop = loop
        self.profile = profile
        self.name = name
        rng = rng if rng is not None else random.Random(0)
        # Derive independent per-direction RNG streams from the caller's
        # seed so uplink loss does not perturb downlink jitter draws.
        up_rng = random.Random(rng.getrandbits(64))
        down_rng = random.Random(rng.getrandbits(64))
        self.uplink = Link(
            loop,
            delay_ms=profile.delay_ms,
            rate_mbps=profile.rate_mbps,
            loss=make_loss_model(profile.loss_rate, profile.bursty_loss),
            jitter_ms=profile.jitter_ms,
            rng=up_rng,
            name=f"{name}-up",
        )
        self.downlink = Link(
            loop,
            delay_ms=profile.delay_ms,
            rate_mbps=profile.rate_mbps,
            loss=make_loss_model(profile.loss_rate, profile.bursty_loss),
            jitter_ms=profile.jitter_ms,
            rng=down_rng,
            name=f"{name}-down",
        )

    @property
    def rtt_ms(self) -> float:
        """Base round-trip time of the path."""
        return self.profile.rtt_ms

    @property
    def fast_path_eligible(self) -> bool:
        """Whether both directions are loss-free, jitter-free and
        unfiltered — the precondition for the analytic transport fast
        path (:mod:`repro.transport.fastpath`)."""
        return self.uplink.fast_path_eligible and self.downlink.fast_path_eligible

    def send_to_server(
        self, packet: Packet, on_deliver: Callable[[Packet], None]
    ) -> bool:
        """Client → server direction; returns ``False`` on drop."""
        return self.uplink.transmit(packet, on_deliver)

    def send_to_client(
        self, packet: Packet, on_deliver: Callable[[Packet], None]
    ) -> bool:
        """Server → client direction; returns ``False`` on drop."""
        return self.downlink.transmit(packet, on_deliver)

    def total_bytes_transferred(self) -> int:
        """Bytes delivered in both directions (ethics accounting)."""
        now = self.loop.now
        self.uplink.settle_reserved(now)
        self.downlink.settle_reserved(now)
        return self.uplink.stats.delivered_bytes + self.downlink.stats.delivered_bytes

    def __repr__(self) -> str:
        return f"<NetworkPath {self.name} rtt={self.rtt_ms}ms {self.profile.loss_rate:.3%} loss>"
