"""Multi-segment path topologies: client → proxy → edge.

The paper's comparison assumes a direct client↔edge path, but real
deployments often interpose a forward proxy — an enterprise CONNECT
tunnel, a privacy relay, a carrier gateway.  Proxies change which
protocol actually runs on each segment and therefore invert several of
the paper's H3-vs-H2 findings ("Performance Comparison of HTTP/3 and
HTTP/2 with Proxy Integration", PAPERS.md).  This module models two
proxy families:

``connect-tunnel``
    A CONNECT-style HTTP/2 tunnel.  The proxy terminates TCP per hop
    and only relays TCP byte streams, so a client's H3 (QUIC-over-UDP)
    attempt cannot traverse it: the pool downgrades the fetch to
    H2-over-the-tunnel and records a ``proxy:h3_downgrade`` trace.
``masque-relay``
    A MASQUE-style UDP relay (CONNECT-UDP).  QUIC datagrams are
    forwarded end-to-end, so H3 runs client↔edge through the relay and
    keeps its connection-ID semantics (including migration).

A :class:`SegmentedPath` chains one :class:`~repro.netsim.link.Link`
pair per segment with an independent
:class:`~repro.netsim.netem.NetemProfile` each — the access network to
the proxy and the proxy↔edge leg usually have very different loss and
latency.  Packets are forwarded store-and-forward at each hop (plus an
optional per-hop processing delay), so queueing builds up per segment
exactly as it would on a chain of real links.

Segmented paths are **never** fast-path eligible: the analytic
transport walk reasons about a single link pair, and a multi-hop chain
breaks its arithmetic even when every segment is loss-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.loss import make_loss_model
from repro.netsim.netem import NetemProfile
from repro.netsim.packet import Packet

#: Canonical proxy model identifiers (CLI / scenario vocabulary).
PROXY_MODELS = ("connect-tunnel", "masque-relay")


def _default_client_profile() -> NetemProfile:
    # A short access leg to a nearby proxy: lower delay than the
    # default 15 ms edge profile, same bottleneck rate.
    return NetemProfile(delay_ms=8.0, rate_mbps=50.0)


@dataclass(frozen=True)
class ProxyConfig:
    """Declarative description of a proxy hop on the probe's path.

    Attributes
    ----------
    model:
        One of :data:`PROXY_MODELS` — ``connect-tunnel`` (TCP-only,
        H3 downgrades at the proxy) or ``masque-relay`` (UDP relay,
        QUIC end-to-end).
    client_profile:
        Netem conditions of the client→proxy access segment.  The
        campaign's vantage/loss/rate shaping applies to the proxy→edge
        segment, mirroring where ``tc netem`` impairment sits in the
        paper's testbed.
    forward_delay_ms:
        Per-hop proxy processing delay added when a packet is relayed
        onto the next segment.
    cache_mb:
        Size of a proxy-side response cache in MiB (0 disables it).
        Only meaningful for ``connect-tunnel`` proxies, which terminate
        the client's TCP stream and can therefore serve repeat fetches
        themselves — a MASQUE relay forwards opaque end-to-end QUIC and
        cannot cache.  Hits are counted in pool stats
        (``proxy_cache_hits``).
    """

    model: str = "connect-tunnel"
    client_profile: NetemProfile = field(default_factory=_default_client_profile)
    forward_delay_ms: float = 0.0
    cache_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.model not in PROXY_MODELS:
            raise ValueError(
                f"model must be one of {PROXY_MODELS}, got {self.model!r}"
            )
        if self.forward_delay_ms < 0:
            raise ValueError(
                f"forward_delay_ms must be >= 0, got {self.forward_delay_ms}"
            )
        if self.cache_mb < 0:
            raise ValueError(f"cache_mb must be >= 0, got {self.cache_mb}")

    @property
    def h3_passthrough(self) -> bool:
        """Whether an end-to-end QUIC handshake can traverse the proxy."""
        return self.model == "masque-relay"


class SegmentedPath:
    """A probe↔server path relayed across two or more segments.

    Each segment gets its own uplink/downlink :class:`Link` pair built
    from its own :class:`NetemProfile`; a packet traverses segment 0's
    uplink, is forwarded (store-and-forward, plus ``forward_delay_ms``)
    onto segment 1's uplink, and so on — downstream runs the reverse
    chain.  A drop on *any* segment loses the packet; only the first
    hop's verdict is returned to the sender (later drops are silent,
    as they would be for a real sender that cannot observe a remote
    segment).

    ``uplink``/``downlink`` alias the **client segment's** links so
    existing single-path consumers — the link sampler attachment,
    ethics byte accounting, probe NIC throughput — observe the client's
    network interface, which is what they mean to measure.
    """

    #: Multi-hop chains are opaque to the analytic transport walk.
    fast_path_eligible = False

    def __init__(
        self,
        loop: EventLoop,
        segments: tuple[NetemProfile, ...],
        rng: random.Random | None = None,
        name: str = "segpath",
        forward_delay_ms: float = 0.0,
        proxy_model: str | None = None,
    ) -> None:
        if len(segments) < 2:
            raise ValueError(
                f"SegmentedPath needs >= 2 segments, got {len(segments)}"
            )
        self.loop = loop
        self.segments = tuple(segments)
        self.name = name
        self.forward_delay_ms = forward_delay_ms
        #: ``connect-tunnel`` / ``masque-relay`` / None (plain chain).
        self.proxy_model = proxy_model
        rng = rng if rng is not None else random.Random(0)
        self.uplinks: list[Link] = []
        self.downlinks: list[Link] = []
        # Per-segment RNG streams derive in a fixed order (seg-up then
        # seg-down, client outward) so adding a segment never perturbs
        # the draws of the ones before it.
        for index, profile in enumerate(self.segments):
            for direction, bucket in (("up", self.uplinks), ("down", self.downlinks)):
                bucket.append(
                    Link(
                        loop,
                        delay_ms=profile.delay_ms,
                        rate_mbps=profile.rate_mbps,
                        loss=make_loss_model(profile.loss_rate, profile.bursty_loss),
                        jitter_ms=profile.jitter_ms,
                        rng=random.Random(rng.getrandbits(64)),
                        name=f"{name}-seg{index}-{direction}",
                    )
                )
        # Single-path consumers (samplers, ethics accounting) see the
        # client NIC: segment 0 in both directions.
        self.uplink = self.uplinks[0]
        self.downlink = self.downlinks[0]
        # Downstream traverses the chain edge→client.
        self._down_chain = list(reversed(self.downlinks))

    @property
    def h3_passthrough(self) -> bool:
        """UDP traverses the chain only through a MASQUE-style relay."""
        return self.proxy_model != "connect-tunnel"

    @property
    def profile(self) -> NetemProfile:
        """The edge-facing segment's profile (campaign shaping leg)."""
        return self.segments[-1]

    @property
    def rtt_ms(self) -> float:
        """Base round trip: every segment's RTT plus per-hop relays."""
        hops = len(self.segments) - 1
        return (
            sum(profile.rtt_ms for profile in self.segments)
            + 2.0 * self.forward_delay_ms * hops
        )

    # -- forwarding chain ----------------------------------------------

    def _forward(
        self,
        chain: list[Link],
        hop: int,
        packet: Packet,
        on_deliver: Callable[[Packet], None],
    ) -> bool:
        link = chain[hop]
        if hop == len(chain) - 1:
            return link.transmit(packet, on_deliver)

        def relay(pkt: Packet) -> None:
            if self.forward_delay_ms > 0:
                self.loop.call_later(
                    self.forward_delay_ms,
                    self._forward, chain, hop + 1, pkt, on_deliver,
                )
            else:
                self._forward(chain, hop + 1, pkt, on_deliver)

        return link.transmit(packet, relay)

    def send_to_server(
        self, packet: Packet, on_deliver: Callable[[Packet], None]
    ) -> bool:
        """Client → proxy → … → server; ``False`` only on first-hop drop."""
        return self._forward(self.uplinks, 0, packet, on_deliver)

    def send_to_client(
        self, packet: Packet, on_deliver: Callable[[Packet], None]
    ) -> bool:
        """Server → … → proxy → client; ``False`` only on first-hop drop."""
        return self._forward(self._down_chain, 0, packet, on_deliver)

    def total_bytes_transferred(self) -> int:
        """Bytes delivered on the client segment (probe NIC accounting).

        Matching :meth:`NetworkPath.total_bytes_transferred`, this
        reports what crossed the *probe's* interface — relay traffic on
        interior segments is the proxy operator's bill, not the
        probe's.
        """
        now = self.loop.now
        self.uplink.settle_reserved(now)
        self.downlink.settle_reserved(now)
        return self.uplink.stats.delivered_bytes + self.downlink.stats.delivered_bytes

    def __repr__(self) -> str:
        model = self.proxy_model or "chain"
        return (
            f"<SegmentedPath {self.name} {model} "
            f"{len(self.segments)} segments rtt={self.rtt_ms}ms>"
        )
