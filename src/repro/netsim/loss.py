"""Stochastic packet-loss models.

Two models are provided:

* :class:`BernoulliLoss` — each packet dropped independently with a fixed
  probability.  This mirrors ``tc netem loss <p>%`` as used in the
  paper's Fig. 9 experiment.
* :class:`GilbertElliottLoss` — a two-state Markov model producing bursty
  loss, closer to real congested paths.  Offered as an extension and
  exercised by the ablation benches.

Models are deliberately stateful objects fed by an explicit
:class:`random.Random` so that simulations are reproducible per probe.
"""

from __future__ import annotations

import random
from typing import Protocol, runtime_checkable


@runtime_checkable
class LossModel(Protocol):
    """Anything that can decide whether to drop the next packet."""

    def should_drop(self, rng: random.Random) -> bool:
        """Return ``True`` if the next packet should be lost."""
        ...  # pragma: no cover - protocol stub


class NoLoss:
    """A loss model that never drops anything."""

    loss_rate = 0.0

    def should_drop(self, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss:
    """Independent (i.i.d.) loss with probability ``loss_rate``."""

    def __init__(self, loss_rate: float) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate

    def should_drop(self, rng: random.Random) -> bool:
        if self.loss_rate == 0.0:
            return False
        return rng.random() < self.loss_rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.loss_rate})"


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) bursty-loss model.

    The chain alternates between a *good* state (loss probability
    ``loss_good``, typically ~0) and a *bad* state (``loss_bad``, high).
    ``p_good_to_bad`` / ``p_bad_to_good`` are per-packet transition
    probabilities.  The stationary loss rate is::

        pi_bad = p_gb / (p_gb + p_bg)
        rate   = pi_good * loss_good + pi_bad * loss_bad
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.005,
        p_bad_to_good: float = 0.30,
        loss_good: float = 0.0,
        loss_bad: float = 0.50,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_good_to_bad + p_bad_to_good == 0.0:
            raise ValueError("transition probabilities cannot both be zero")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._in_bad_state = False

    @property
    def loss_rate(self) -> float:
        """Stationary (long-run) loss rate of the chain."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def should_drop(self, rng: random.Random) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        threshold = self.loss_bad if self._in_bad_state else self.loss_good
        if threshold == 0.0:
            return False
        return rng.random() < threshold

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_good_to_bad}, "
            f"p_bg={self.p_bad_to_good}, rate~{self.loss_rate:.4f})"
        )


def make_loss_model(loss_rate: float, bursty: bool = False) -> LossModel:
    """Build a loss model with the given long-run rate.

    With ``bursty=True`` a Gilbert–Elliott chain is fitted so its
    stationary loss rate equals ``loss_rate`` (bad-state loss fixed at
    50 %, mean burst length ~3.3 packets).
    """
    if loss_rate == 0.0:
        return NoLoss()
    if not bursty:
        return BernoulliLoss(loss_rate)
    loss_bad = 0.5
    p_bad_to_good = 0.30
    # pi_bad * loss_bad = loss_rate  =>  pi_bad = loss_rate / loss_bad
    pi_bad = loss_rate / loss_bad
    if pi_bad >= 1.0:
        raise ValueError(f"loss_rate {loss_rate} too high for bursty model")
    # pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad * p_bg / (1 - pi_bad)
    p_good_to_bad = pi_bad * p_bad_to_good / (1.0 - pi_bad)
    return GilbertElliottLoss(p_good_to_bad, p_bad_to_good, 0.0, loss_bad)
