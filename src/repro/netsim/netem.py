"""``tc netem``-style network emulation profiles.

The paper uses Linux Traffic Control to impose 0 %, 0.5 % and 1 % loss
in the Fig. 9 experiment.  A :class:`NetemProfile` is the declarative
equivalent here: a bundle of (delay, jitter, loss, rate) that can be
turned into a concrete :class:`~repro.netsim.path.NetworkPath`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetemProfile:
    """Declarative network conditions for one probe↔server path.

    Attributes
    ----------
    delay_ms:
        One-way propagation delay (so the base RTT is ``2 * delay_ms``).
    jitter_ms:
        Uniform jitter bound added per direction.
    loss_rate:
        Long-run packet loss probability per direction.
    rate_mbps:
        Bottleneck rate; ``None`` disables serialization delay.
    bursty_loss:
        Use a Gilbert–Elliott chain instead of i.i.d. Bernoulli loss.
    """

    delay_ms: float = 15.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    rate_mbps: float | None = 50.0
    bursty_loss: bool = False

    def __post_init__(self) -> None:
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")

    @property
    def rtt_ms(self) -> float:
        """Base round-trip time excluding jitter and serialization."""
        return 2.0 * self.delay_ms

    def with_loss(self, loss_rate: float) -> "NetemProfile":
        """Return a copy with a different loss rate (the Fig. 9 knob)."""
        return replace(self, loss_rate=loss_rate)

    def with_delay(self, delay_ms: float) -> "NetemProfile":
        """Return a copy with a different one-way delay."""
        return replace(self, delay_ms=delay_ms)

    def tc_command(self, device: str = "eth0") -> str:
        """Render the equivalent ``tc qdisc`` command (documentation aid)."""
        parts = [f"tc qdisc add dev {device} root netem delay {self.delay_ms}ms"]
        if self.jitter_ms:
            parts.append(f"{self.jitter_ms}ms")
        if self.loss_rate:
            parts.append(f"loss {self.loss_rate * 100:g}%")
        if self.rate_mbps is not None:
            parts.append(f"rate {self.rate_mbps:g}mbit")
        return " ".join(parts)
