"""Differential validation: replay a visit's qlog trace against its HAR.

The HAR timings and the qlog-style trace are produced by *different*
code paths (the pool's per-fetch closures vs the transport's event
hooks), so agreement between them is strong evidence the timing
pipeline is honest:

* every ``http:stream_opened``/``http:stream_closed`` pair must match
  one HAR entry: the stream opens at the entry's issue instant
  (``started + dns + blocked + connect``), its first byte lands after
  the entry's ``wait``, and it closes after ``wait + receive``;
* the multiset of ``transport:handshake_completed`` ``connect_ms``
  values must equal the multiset of connection-opening entries'
  ``connect`` timings.

Usage::

    python -m repro.check.har_vs_trace                # self-run a traced
                                                      # smoke campaign
    python -m repro.check.har_vs_trace visits.jsonl   # validate exported
                                                      # visit documents

Exit status 0 when every visit cross-checks clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

#: Timing agreement tolerance (ms); both sides read the same event-loop
#: clock, so anything beyond float noise is a real divergence.
TOLERANCE_MS = 1e-6


def _stream_records(trace: list[dict]) -> tuple[list[tuple], list[float], list[str]]:
    """Extract (bytes, opened_at, first_byte, duration) per stream.

    Returns the stream tuples, the handshake ``connect_ms`` list and
    any structural problems (streams that never closed).
    """
    # The ``conn`` label is per *host*, and an H1 pool opens several
    # connections to one host — so ``(conn, stream_id)`` is NOT unique
    # across connection instances.  A close is therefore paired with
    # the same-key open whose time matches ``close.time - duration_ms``
    # (the close event's fields are relative to its own open).
    opened: dict[tuple, list[dict]] = {}
    closes: list[tuple[tuple, dict]] = []
    handshakes: list[float] = []
    for event in trace:
        name = event["name"]
        key = (event["conn"], event["data"].get("stream_id"))
        if name == "http:stream_opened":
            opened.setdefault(key, []).append(event)
        elif name == "http:stream_closed":
            closes.append((key, event))
        elif name == "transport:handshake_completed":
            handshakes.append(event["data"]["connect_ms"])
    problems: list[str] = []
    streams: list[tuple] = []
    for key, close_event in closes:
        candidates = opened.get(key, [])
        opened_at = close_event["time"] - close_event["data"]["duration_ms"]
        match = next(
            (
                index
                for index, open_event in enumerate(candidates)
                if abs(open_event["time"] - opened_at) <= TOLERANCE_MS
            ),
            None,
        )
        if match is None:
            problems.append(f"stream {key} closed but never opened")
            continue
        open_event = candidates.pop(match)
        streams.append(
            (
                open_event["data"]["response_bytes"],
                open_event["time"],
                close_event["data"]["first_byte_ms"],
                close_event["data"]["duration_ms"],
            )
        )
    for key, leftovers in opened.items():
        for _ in leftovers:
            problems.append(f"stream {key} opened but never closed")
    return streams, handshakes, problems


def _entry_records(har_doc: dict) -> tuple[list[tuple], list[float]]:
    """Per non-failed entry: (bytes, issue_at, wait, wait+receive).

    Also returns the ``connect`` values of connection-opening entries
    for the handshake cross-check.
    """
    entries: list[tuple] = []
    opener_connects: list[float] = []
    for raw in har_doc["log"]["entries"]:
        if raw.get("_failed"):
            continue
        timings = raw["timings"]
        issue_at = (
            raw["startedDateTime"]
            + timings["dns"]
            + timings["blocked"]
            + timings["connect"]
        )
        entries.append(
            (
                raw["response"]["bodySize"],
                issue_at,
                timings["wait"],
                timings["wait"] + timings["receive"],
            )
        )
        if not raw.get("_reused", False):
            opener_connects.append(timings["connect"])
    return entries, opener_connects


def compare_visit(document: dict) -> list[str]:
    """Cross-check one exported visit document; returns discrepancies.

    The document is a :meth:`repro.browser.browser.PageVisit.to_dict`
    payload carrying a ``trace``.  Visits degraded by fault injection
    get the relaxed treatment (orphaned streams from torn-down
    connections are expected); fault-free visits must match exactly.
    """
    trace = document.get("trace")
    if trace is None:
        return [f"{document.get('pageUrl')}: visit carries no trace"]
    degraded = document.get("status", "ok") != "ok"
    streams, handshakes, problems = _stream_records(trace)
    if degraded:
        # Torn-down connections legitimately orphan streams.
        problems = []
    entries, opener_connects = _entry_records(document["har"])
    label = f"{document.get('pageUrl')} [{document.get('protocolMode')}]"
    discrepancies = [f"{label}: {p}" for p in problems]

    if degraded:
        # Entry-by-entry containment: every completed entry must still
        # have a matching stream, but extra streams are tolerated.
        pool = sorted(streams)
        for entry in sorted(entries):
            match = _take_match(pool, entry)
            if match is None:
                discrepancies.append(
                    f"{label}: no trace stream matches entry "
                    f"(bytes={entry[0]}, issued={entry[1]:.3f}ms)"
                )
        return discrepancies

    if len(streams) != len(entries):
        discrepancies.append(
            f"{label}: {len(streams)} trace streams vs "
            f"{len(entries)} HAR entries"
        )
    for stream, entry in zip(sorted(streams), sorted(entries)):
        for index, what in ((0, "response bytes"), (1, "issue time"),
                            (2, "wait/first-byte"), (3, "wait+receive/duration")):
            if abs(stream[index] - entry[index]) > TOLERANCE_MS:
                discrepancies.append(
                    f"{label}: {what} mismatch — trace={stream[index]!r} "
                    f"har={entry[index]!r}"
                )
    trace_hs = sorted(handshakes)
    har_hs = sorted(opener_connects)
    if len(trace_hs) != len(har_hs):
        discrepancies.append(
            f"{label}: {len(trace_hs)} handshakes traced vs "
            f"{len(har_hs)} connection-opening entries"
        )
    else:
        for traced, reported in zip(trace_hs, har_hs):
            if abs(traced - reported) > TOLERANCE_MS:
                discrepancies.append(
                    f"{label}: handshake connect_ms {traced!r} vs "
                    f"HAR connect {reported!r}"
                )
    return discrepancies


def _take_match(pool: list[tuple], entry: tuple) -> tuple | None:
    """Pop the first stream in ``pool`` matching ``entry`` within tolerance."""
    for index, stream in enumerate(pool):
        if all(abs(stream[i] - entry[i]) <= TOLERANCE_MS for i in range(4)):
            return pool.pop(index)
    return None


def validate_documents(documents: Iterable[dict]) -> tuple[int, list[str]]:
    """Cross-check many visit documents; returns (count, discrepancies)."""
    checked = 0
    discrepancies: list[str] = []
    for document in documents:
        checked += 1
        discrepancies.extend(compare_visit(document))
    return checked, discrepancies


def _self_run_documents(sites: int, pages: int, seed: int) -> list[dict]:
    """Run a small traced campaign and yield every visit document."""
    from repro.measurement.campaign import Campaign, CampaignConfig
    from repro.web.topsites import GeneratorConfig, cached_universe

    universe = cached_universe(GeneratorConfig(n_sites=sites), seed=seed)
    config = CampaignConfig(trace=True, collect_counters=True, seed=seed)
    result = Campaign(universe, config).run(universe.pages[:pages])
    documents: list[dict] = []
    for paired in result.paired_visits:
        documents.append(paired.h2.to_dict())
        documents.append(paired.h3.to_dict())
    return documents


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.har_vs_trace",
        description="Cross-check HAR timings against qlog traces.",
    )
    parser.add_argument(
        "visits",
        nargs="?",
        help="JSONL file of exported visit documents "
        "(default: self-run a traced smoke campaign)",
    )
    parser.add_argument("--sites", type=int, default=8,
                        help="self-run universe size (default 8)")
    parser.add_argument("--pages", type=int, default=6,
                        help="self-run page count (default 6)")
    parser.add_argument("--seed", type=int, default=7,
                        help="self-run seed (default 7)")
    args = parser.parse_args(argv)

    if args.visits:
        with open(args.visits) as handle:
            documents = [json.loads(line) for line in handle if line.strip()]
    else:
        documents = _self_run_documents(args.sites, args.pages, args.seed)

    checked, discrepancies = validate_documents(documents)
    for line in discrepancies:
        print(f"MISMATCH {line}", file=sys.stderr)
    status = "clean" if not discrepancies else f"{len(discrepancies)} mismatches"
    print(f"har_vs_trace: {checked} visits cross-checked, {status}")
    return 0 if not discrepancies else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
