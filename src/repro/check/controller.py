"""A congestion-controller proxy that checks CC sanity invariants.

Wraps any :class:`~repro.transport.congestion.CongestionController`
and verifies, on every transition:

* ``cwnd >= 1 MSS`` always (all shipped controllers floor at 2–4 MSS);
* ``on_ack`` never shrinks the window and never moves ``ssthresh``
  (ACK processing must not fabricate congestion responses);
* a loss or RTO epoch may only move ``ssthresh`` *down relative to the
  pre-event window* (``ssthresh_after <= cwnd_before``) — note this is
  deliberately weaker than "ssthresh is globally monotone", which is
  *not* a NewReno invariant (after the window regrows past the old
  threshold, the next loss legitimately raises ssthresh);
* slow-start exit is one-way per epoch: ``in_slow_start`` may flip
  False→True only through a loss/RTO event, never through an ACK.

``on_rate_sample`` (BBR's model input) is delegated untouched via
``__getattr__`` — a better path model may legitimately shrink the
window, so no monotonicity is asserted there beyond the 1-MSS floor,
which is re-checked on the next proxied transition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.context import CheckContext

if TYPE_CHECKING:  # pragma: no cover - avoids a transport<->check cycle
    from repro.transport.congestion import CongestionController


class CheckedController:
    """Invariant-checking wrapper around a real congestion controller."""

    def __init__(
        self, inner: "CongestionController", check: CheckContext, mss: int
    ) -> None:
        self.inner = inner
        self.check = check
        self.mss = mss

    # -- delegation ----------------------------------------------------

    @property
    def cwnd_bytes(self) -> int:
        return self.inner.cwnd_bytes

    def __getattr__(self, name: str):
        # ssthresh_bytes, in_slow_start, on_rate_sample, loss_events, ...
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"Checked({self.inner!r})"

    # -- snapshots -----------------------------------------------------

    def _snapshot(self) -> tuple[int, int | None, bool | None]:
        inner = self.inner
        return (
            inner.cwnd_bytes,
            getattr(inner, "ssthresh_bytes", None),
            getattr(inner, "in_slow_start", None),
        )

    def _check_floor(self, event: str, now_ms: float) -> None:
        cwnd = self.inner.cwnd_bytes
        self.check.require(
            cwnd >= self.mss,
            "cc:cwnd_floor",
            f"cwnd fell below 1 MSS after {event}",
            time_ms=now_ms,
            cwnd=cwnd,
            mss=self.mss,
            controller=type(self.inner).__name__,
        )

    # -- checked transitions -------------------------------------------

    def on_ack(self, acked_bytes: int, now_ms: float) -> None:
        cwnd_before, ssthresh_before, slow_start_before = self._snapshot()
        self.inner.on_ack(acked_bytes, now_ms)
        cwnd_after, ssthresh_after, slow_start_after = self._snapshot()
        check = self.check
        check.require(
            cwnd_after >= cwnd_before,
            "cc:ack_monotone",
            "on_ack decreased cwnd",
            time_ms=now_ms,
            before=cwnd_before,
            after=cwnd_after,
        )
        check.require(
            ssthresh_after == ssthresh_before,
            "cc:ack_ssthresh_frozen",
            "on_ack moved ssthresh (only loss/RTO may)",
            time_ms=now_ms,
            before=ssthresh_before,
            after=ssthresh_after,
        )
        if slow_start_before is not None:
            check.require(
                slow_start_before or not slow_start_after,
                "cc:slow_start_one_way",
                "on_ack re-entered slow start (only loss/RTO may)",
                time_ms=now_ms,
            )
        self._check_floor("on_ack", now_ms)

    def on_loss(self, now_ms: float) -> None:
        self._checked_congestion_event("on_loss", now_ms)

    def on_rto(self, now_ms: float) -> None:
        self._checked_congestion_event("on_rto", now_ms)

    def _checked_congestion_event(self, event: str, now_ms: float) -> None:
        cwnd_before, _, _ = self._snapshot()
        getattr(self.inner, event)(now_ms)
        cwnd_after, ssthresh_after, _ = self._snapshot()
        check = self.check
        check.require(
            cwnd_after <= cwnd_before,
            "cc:congestion_response",
            f"{event} grew cwnd",
            time_ms=now_ms,
            before=cwnd_before,
            after=cwnd_after,
        )
        if ssthresh_after is not None:
            check.require(
                ssthresh_after <= cwnd_before,
                "cc:ssthresh_shrinks",
                f"{event} set ssthresh above the pre-event window",
                time_ms=now_ms,
                ssthresh=ssthresh_after,
                cwnd_before=cwnd_before,
            )
        self._check_floor(event, now_ms)
