"""Post-visit validators: HAR field consistency and pool accounting.

These run once per page visit (cold path), after the browser closes
the pool, so they can afford whole-visit passes:

* every timing phase is non-negative and ``ssl`` fits inside
  ``connect``;
* the phases of an entry sum to the entry's total time within
  :data:`~repro.check.context.EPSILON_MS` — the invariant that caught
  the DNS latency misattribution bugs (coalesced waiters and retried
  lookups both skewed ``dns`` against wall-clock entry time);
* PLT bounds every entry's end (onLoad fires last);
* pool counters are internally consistent — in fault-free runs every
  request is exactly one created or one reused connection ride, and
  exactly one HAR entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.context import EPSILON_MS, CheckContext

if TYPE_CHECKING:  # pragma: no cover - avoids a browser<->check cycle
    from repro.browser.har import HarEntry, HarLog


def check_entry(
    check: CheckContext,
    entry: HarEntry,
    har_started_at_ms: float,
    plt_ms: float,
) -> None:
    """Field-consistency checks for one HAR entry."""
    t = entry.timings
    for phase, value in (
        ("blocked", t.blocked),
        ("dns", t.dns),
        ("connect", t.connect),
        ("ssl", t.ssl),
        ("send", t.send),
        ("wait", t.wait),
        ("receive", t.receive),
    ):
        check.require(
            value >= -EPSILON_MS,
            "har:phase_nonnegative",
            f"timing phase {phase!r} is negative",
            time_ms=entry.started_at_ms,
            url=entry.url,
            phase=phase,
            value=value,
        )
    check.require(
        t.ssl <= t.connect + EPSILON_MS or t.connect == 0.0,
        "har:ssl_within_connect",
        "ssl time exceeds connect time",
        time_ms=entry.started_at_ms,
        url=entry.url,
        ssl=t.ssl,
        connect=t.connect,
    )
    check.require(
        abs(t.total - entry.time_ms) <= EPSILON_MS,
        "har:phases_sum_to_total",
        "timing phases do not sum to the entry's total time",
        time_ms=entry.started_at_ms,
        url=entry.url,
        phase_sum=t.total,
        time_ms_field=entry.time_ms,
    )
    entry_end = entry.started_at_ms + entry.time_ms - har_started_at_ms
    check.require(
        plt_ms >= entry_end - EPSILON_MS,
        "har:plt_bounds_entries",
        "entry finishes after onLoad (PLT < entry end)",
        time_ms=entry.started_at_ms,
        url=entry.url,
        plt_ms=plt_ms,
        entry_end_ms=entry_end,
    )


def check_har(check: CheckContext, har: HarLog) -> None:
    """Whole-HAR consistency: every entry, against the page's PLT."""
    check.require(
        har.on_load_ms >= 0.0,
        "har:plt_nonnegative",
        "PLT is negative",
        plt_ms=har.on_load_ms,
        url=har.page_url,
    )
    for entry in har.entries:
        check_entry(check, entry, har.started_at_ms, har.on_load_ms)


def check_visit(check: CheckContext, visit, faults_active: bool) -> None:
    """Validate one finished :class:`~repro.browser.browser.PageVisit`.

    ``faults_active`` relaxes the accounting identities that scripted
    faults legitimately break (DNS-failure entries never reach the
    pool; re-dispatched fetches ride extra connections).
    """
    check_har(check, visit.har)
    stats = visit.pool_stats
    for name in (
        "requests",
        "connections_created",
        "resumed_connections",
        "reused_requests",
        "zero_rtt_connections",
        "failed_requests",
        "retried_requests",
        "h3_fallbacks",
        "connect_timeouts",
        "connection_resets",
    ):
        value = getattr(stats, name)
        check.require(
            value >= 0,
            "pool:counter_nonnegative",
            f"pool counter {name!r} is negative",
            counter=name,
            value=value,
        )
    n_entries = len(visit.har.entries)
    if faults_active:
        # Synthesized DNS-failure entries never touch the pool, so
        # requests can only undershoot the entry count.
        check.require(
            stats.requests <= n_entries,
            "pool:requests_vs_entries",
            "more pool requests than HAR entries",
            requests=stats.requests,
            entries=n_entries,
        )
    else:
        check.require(
            stats.requests == n_entries,
            "pool:requests_vs_entries",
            "pool requests != HAR entries in a fault-free visit",
            requests=stats.requests,
            entries=n_entries,
        )
        check.require(
            stats.requests == stats.connections_created + stats.reused_requests,
            "pool:request_accounting",
            "requests != connections_created + reused_requests "
            "in a fault-free visit",
            requests=stats.requests,
            connections_created=stats.connections_created,
            reused_requests=stats.reused_requests,
        )
        check.require(
            stats.failed_requests == 0
            and stats.retried_requests == 0
            and stats.h3_fallbacks == 0
            and stats.connect_timeouts == 0
            and stats.connection_resets == 0,
            "pool:no_faults_no_recovery",
            "fault-recovery counters nonzero without a fault profile",
        )
    check.require(
        stats.resumed_connections <= stats.connections_created,
        "pool:resumed_within_created",
        "more resumed connections than connections created",
        resumed=stats.resumed_connections,
        created=stats.connections_created,
    )
    check.require(
        stats.zero_rtt_connections <= stats.connections_created,
        "pool:zero_rtt_within_created",
        "more 0-RTT connections than connections created",
        zero_rtt=stats.zero_rtt_connections,
        created=stats.connections_created,
    )
