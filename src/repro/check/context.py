"""The check context: where invariant verdicts accumulate (or raise).

Design mirrors :mod:`repro.obs.trace`:

* :class:`NullCheck` is a *falsy* no-op singleton.  Every hot-path
  hook is guarded with ``if self.check:`` so a run without strict mode
  pays one attribute load + bool test and stays bit-identical.
* :class:`CheckContext` is the live object.  In ``raise`` mode (the
  default, what ``--strict`` wires up) the first violation raises
  :class:`InvariantViolation` and the campaign runner lets it
  propagate — even under fault injection, where ordinary exceptions
  degrade to failed visits.  In ``collect`` mode violations accumulate
  on :attr:`CheckContext.violations` for tests and offline validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Tolerance for floating-point timing comparisons (ms).  Entry phases
#: are sums of event-loop floats, so exact equality is too strict but
#: anything beyond a microsecond is a real accounting bug.
EPSILON_MS = 1e-6


class InvariantViolation(AssertionError):
    """A simulation invariant did not hold.

    Subclasses :class:`AssertionError` so test harnesses treat it as a
    failed assertion, but it is raised by the checker at runtime, not
    by ``assert`` statements (which ``python -O`` would strip).
    """

    def __init__(self, violation: "Violation") -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough context to debug it."""

    #: Invariant identifier, ``layer:name`` (e.g. ``stream:byte_conservation``).
    invariant: str
    #: Human-readable description of what went wrong.
    message: str
    #: Simulated time (ms) when the check fired, if known.
    time_ms: float | None = None
    #: Structured context (stream id, host, observed values, ...).
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        at = f" at t={self.time_ms:.3f}ms" if self.time_ms is not None else ""
        extra = f" {self.data}" if self.data else ""
        return f"[{self.invariant}]{at} {self.message}{extra}"


class NullCheck:
    """Falsy no-op stand-in; strict-off hooks bail on ``if check:``."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def fail(self, invariant, message, time_ms=None, **data) -> None:
        """No-op."""

    def require(self, condition, invariant, message, time_ms=None, **data) -> None:
        """No-op."""


#: The shared null check (stateless, so one instance serves everyone).
NULL_CHECK = NullCheck()


class CheckContext:
    """Accumulates invariant checks for one probe/visit stack.

    Parameters
    ----------
    mode:
        ``"raise"`` (default): the first violation raises
        :class:`InvariantViolation` immediately, freezing the failure at
        its source.  ``"collect"``: violations append to
        :attr:`violations` and the simulation continues — used by tests
        and the differential validator to gather everything at once.
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.mode = mode
        self.violations: list[Violation] = []
        #: Total individual checks evaluated (diagnostics / cost table).
        self.checks_run = 0

    def __bool__(self) -> bool:
        return True

    def fail(self, invariant: str, message: str, time_ms: float | None = None,
             **data) -> None:
        """Record an unconditional violation."""
        violation = Violation(invariant, message, time_ms, data)
        self.violations.append(violation)
        if self.mode == "raise":
            raise InvariantViolation(violation)

    def require(self, condition: bool, invariant: str, message: str,
                time_ms: float | None = None, **data) -> None:
        """Check one invariant; a falsy ``condition`` is a violation."""
        self.checks_run += 1
        if not condition:
            self.fail(invariant, message, time_ms, **data)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> list[str]:
        """Violations as printable lines (collect mode)."""
        return [str(v) for v in self.violations]
