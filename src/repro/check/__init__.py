"""Runtime invariant checking: the simulator's sanitizer.

``repro.check`` threads a :class:`CheckContext` of cheap assertions
through the same seams as :mod:`repro.obs` — event loop, transport,
connection pool, browser — so a run can *prove* its mechanics stayed
honest instead of silently emitting a negative wait time or a cwnd
that grew under loss.  Off by default: without a context every hook
costs one falsy check against :data:`NULL_CHECK` (the same pattern as
``NULL_TRACER``) and results are bit-identical.

Enable it with ``Scenario(strict=True)``, ``CampaignConfig(strict=True)``
or the CLI's ``--strict`` flag.  See ``docs/checking.md`` for the
invariant catalog.
"""

from repro.check.context import (
    NULL_CHECK,
    CheckContext,
    InvariantViolation,
    NullCheck,
    Violation,
)
from repro.check.controller import CheckedController
from repro.check.visit import check_entry, check_visit

__all__ = [
    "CheckContext",
    "CheckedController",
    "InvariantViolation",
    "NullCheck",
    "NULL_CHECK",
    "Violation",
    "check_entry",
    "check_visit",
]
