"""Terminal plotting: render figure data as ASCII charts.

The experiment drivers print tables; with the CLI's ``--plot`` flag the
series behind each figure are also rendered as small ASCII charts, so a
headless reproduction run still conveys the *shapes* the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(position * (steps - 1) + 0.5)))


def line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> list[str]:
    """Render one or more (x, y) series on a shared-axis ASCII grid.

    Each series gets a marker character (``*``, ``o``, ``+`` …); points
    are nearest-neighbour mapped onto the grid.
    """
    markers = "*o+x@#"
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        raise ValueError("nothing to plot")
    xs = [x for x, __ in all_points]
    ys = [y for __, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0.0:
        y_lo = 0.0  # anchor at zero when everything is positive
    grid = [[" "] * width for _ in range(height)]
    for (name, points), marker in zip(series.items(), markers):
        for x, y in points:
            column = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][column] = marker
    lines = []
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    gutter = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(gutter)
        elif index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}".rjust(8)
    lines.append(" " * gutter + "  " + x_axis)
    legend = "  ".join(
        f"{marker}={name}" for (name, __), marker in zip(series.items(), markers)
    )
    caption = " ".join(part for part in (y_label, "vs", x_label) if part)
    lines.append(f"{' ' * gutter}  {legend}" + (f"   ({caption})" if caption else ""))
    return lines


def bar_chart(
    values: dict[str, float], width: int = 48, unit: str = ""
) -> list[str]:
    """Horizontal bar chart for labelled values (group means etc.)."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, int(abs(value) / peak * width)) if value else ""
        sign = "-" if value < 0 else ""
        lines.append(
            f"  {str(label).ljust(label_width)} |{sign}{bar} {value:.1f}{unit}"
        )
    return lines
