"""Bootstrap confidence intervals for the measured statistics.

The paper reports point estimates (group means, fitted slopes).  For a
simulation-based reproduction, uncertainty matters: a shape claim like
"the High group gains less than the Medium group" is only meaningful if
the interval around each mean supports it.  This module provides the
standard percentile bootstrap, seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.stats import mean, quantile


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float
    resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return f"{self.point:.2f} [{self.low:.2f}, {self.high:.2f}]"


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap interval for ``statistic`` over ``values``."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    rng = random.Random(seed)
    values = list(values)
    n = len(values)
    estimates = []
    for _ in range(resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        estimates.append(statistic(resample))
    alpha = 1.0 - confidence
    return ConfidenceInterval(
        point=statistic(values),
        low=quantile(estimates, alpha / 2.0),
        high=quantile(estimates, 1.0 - alpha / 2.0),
        confidence=confidence,
        resamples=resamples,
    )


def difference_significant(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[bool, ConfidenceInterval]:
    """Bootstrap test of ``mean(a) - mean(b)``.

    Returns (interval excludes zero, the interval itself).  Used by the
    full-scale analysis to say whether e.g. the Table III C_H vs C_L
    gap is resolved above simulation noise.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    rng = random.Random(seed)
    a, b = list(a), list(b)
    deltas = []
    for _ in range(resamples):
        resample_a = [a[rng.randrange(len(a))] for _ in range(len(a))]
        resample_b = [b[rng.randrange(len(b))] for _ in range(len(b))]
        deltas.append(mean(resample_a) - mean(resample_b))
    alpha = 1.0 - confidence
    interval = ConfidenceInterval(
        point=mean(a) - mean(b),
        low=quantile(deltas, alpha / 2.0),
        high=quantile(deltas, 1.0 - alpha / 2.0),
        confidence=confidence,
        resamples=resamples,
    )
    significant = interval.low > 0.0 or interval.high < 0.0
    return significant, interval
