"""Descriptive statistics: distributions, quantiles, linear fits.

Implemented from scratch (no numpy/scipy dependency in the core
library) so the analysis pipeline is self-contained and exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1]."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("quantile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    interpolated = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp: the convex combination can exceed the endpoints by one ulp.
    return min(max(interpolated, ordered[0]), ordered[-1])


def median(values: Iterable[float]) -> float:
    """The 50th percentile."""
    return quantile(values, 0.5)


class EmpiricalDistribution:
    """An empirical distribution with CDF/CCDF evaluation and export.

    The paper plots CCDFs (Figs. 3, 5) and CDFs (Fig. 6b); this class
    produces both and can emit (x, y) series for regenerating them.
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(values)
        if not self._values:
            raise ValueError("empty distribution")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return self._count_le(x) / len(self._values)

    def ccdf(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.cdf(x)

    def _count_le(self, x: float) -> int:
        import bisect

        return bisect.bisect_right(self._values, x)

    def quantile(self, q: float) -> float:
        return quantile(self._values, q)

    @property
    def median(self) -> float:
        return quantile(self._values, 0.5)

    @property
    def mean(self) -> float:
        return mean(self._values)

    def cdf_series(self, points: int = 100) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs across the support, for plotting."""
        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        lo, hi = self._values[0], self._values[-1]
        if lo == hi or points == 1:
            # A degenerate support (single value) or a single requested
            # point both collapse to the top of the CDF; the old
            # ``points - 1`` divisor crashed on points == 1.
            return [(hi, 1.0)]
        step = (hi - lo) / (points - 1)
        return [(lo + i * step, self.cdf(lo + i * step)) for i in range(points)]

    def ccdf_series(self, points: int = 100) -> list[tuple[float, float]]:
        """(x, P(X>x)) pairs across the support, for plotting."""
        return [(x, 1.0 - y) for x, y in self.cdf_series(points)]


def quartile_groups(
    items: Sequence[T], key, labels: Sequence[str] = ("Low", "Medium-Low", "Medium-High", "High")
) -> dict[str, list[T]]:
    """Split items into equal-size ordered groups (paper Fig. 6a).

    Items are sorted by ``key`` and divided into ``len(labels)``
    contiguous groups of (near-)equal size — 'Each group has an equal
    number of pages'.
    """
    if not items:
        raise ValueError("cannot group an empty sequence")
    ordered = sorted(items, key=key)
    n_groups = len(labels)
    base, remainder = divmod(len(ordered), n_groups)
    groups: dict[str, list[T]] = {}
    start = 0
    for index, label in enumerate(labels):
        size = base + (1 if index < remainder else 0)
        groups[label] = list(ordered[start : start + size])
        start += size
    return groups


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit (the Fig. 9 'fitted curves')."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        raise ValueError("xs are constant; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for y in ys)
    if syy == 0.0:
        r_squared = 1.0
    else:
        residual = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
        r_squared = 1.0 - residual / syy
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=n)
