"""Generic analysis toolkit: distributions, regression, clustering.

Dependency-free implementations of the statistical machinery the
paper's figures need: empirical CDFs/CCDFs (Figs. 3, 5, 6b), quantile
grouping (Fig. 6a), least-squares linear fits (Fig. 9's slope
comparison), and the k-means clustering (MacQueen) behind the Table III
case study.
"""

from repro.analysis.kmeans import KMeansResult, kmeans
from repro.analysis.stats import (
    EmpiricalDistribution,
    linear_fit,
    mean,
    median,
    quantile,
    quartile_groups,
)

__all__ = [
    "EmpiricalDistribution",
    "KMeansResult",
    "kmeans",
    "linear_fit",
    "mean",
    "median",
    "quantile",
    "quartile_groups",
]
