"""k-means clustering (MacQueen 1967), from scratch.

The paper's Table III case study represents each webpage as a 58-length
binary vector over shared CDN domains and splits the cohort into a
high-sharing and a low-sharing group with k-means (k = 2).  This module
implements Lloyd's iteration with k-means++ seeding, deterministic
under a caller-provided seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

Vector = Sequence[float]


def _distance_sq(a: Vector, b: Vector) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _centroid(vectors: list[Vector], dim: int) -> tuple[float, ...]:
    if not vectors:
        return tuple(0.0 for _ in range(dim))
    return tuple(
        sum(vector[i] for vector in vectors) / len(vectors) for i in range(dim)
    )


@dataclass
class KMeansResult:
    """Final clustering state."""

    centroids: list[tuple[float, ...]]
    labels: list[int]
    inertia: float
    iterations: int

    def cluster_indices(self, label: int) -> list[int]:
        """Indices of the points assigned to ``label``."""
        return [i for i, assigned in enumerate(self.labels) if assigned == label]

    @property
    def k(self) -> int:
        return len(self.centroids)


def kmeans(
    vectors: Sequence[Vector],
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    n_init: int = 5,
) -> KMeansResult:
    """Cluster ``vectors`` into ``k`` groups.

    Runs ``n_init`` independent k-means++ initializations and returns
    the run with the lowest inertia (within-cluster sum of squares).
    """
    vectors = [tuple(float(x) for x in v) for v in vectors]
    if not vectors:
        raise ValueError("no vectors to cluster")
    if k <= 0 or k > len(vectors):
        raise ValueError(f"k must be in [1, {len(vectors)}], got {k}")
    dims = {len(v) for v in vectors}
    if len(dims) != 1:
        raise ValueError(f"vectors have inconsistent dimensions: {sorted(dims)}")
    rng = random.Random(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        candidate = _kmeans_once(vectors, k, rng, max_iterations)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def _kmeans_plus_plus_init(
    vectors: list[tuple[float, ...]], k: int, rng: random.Random
) -> list[tuple[float, ...]]:
    centroids = [rng.choice(vectors)]
    while len(centroids) < k:
        distances = [
            min(_distance_sq(v, c) for c in centroids) for v in vectors
        ]
        total = sum(distances)
        if total == 0.0:
            # All points coincide with existing centroids; pick randomly.
            centroids.append(rng.choice(vectors))
            continue
        threshold = rng.random() * total
        cumulative = 0.0
        for vector, distance in zip(vectors, distances):
            cumulative += distance
            if cumulative >= threshold:
                centroids.append(vector)
                break
    return centroids


def _kmeans_once(
    vectors: list[tuple[float, ...]],
    k: int,
    rng: random.Random,
    max_iterations: int,
) -> KMeansResult:
    dim = len(vectors[0])
    centroids = _kmeans_plus_plus_init(vectors, k, rng)
    labels = [-1] * len(vectors)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_labels = [
            min(range(k), key=lambda j: _distance_sq(vector, centroids[j]))
            for vector in vectors
        ]
        if new_labels == labels:
            break
        labels = new_labels
        clusters: list[list[Vector]] = [[] for _ in range(k)]
        for vector, label in zip(vectors, labels):
            clusters[label].append(vector)
        centroids = [
            _centroid(cluster, dim) if cluster else centroids[j]
            for j, cluster in enumerate(clusters)
        ]
    inertia = sum(
        _distance_sq(vector, centroids[label])
        for vector, label in zip(vectors, labels)
    )
    return KMeansResult(
        centroids=[tuple(c) for c in centroids],
        labels=labels,
        inertia=inertia,
        iterations=iterations,
    )


def silhouette_hint(vectors: Sequence[Vector], result: KMeansResult) -> float:
    """Cheap clustering-quality signal in [-1, 1] (mean silhouette).

    Not used by the reproduction itself; exposed for the examples and
    for sanity checks in tests.
    """
    vectors = [tuple(float(x) for x in v) for v in vectors]
    n = len(vectors)
    if n <= result.k:
        return 0.0
    scores = []
    for i, vector in enumerate(vectors):
        own = result.labels[i]
        same = [v for v, l in zip(vectors, result.labels) if l == own]
        if len(same) <= 1:
            scores.append(0.0)
            continue
        a = sum(math.sqrt(_distance_sq(vector, v)) for v in same if v is not vector)
        a /= len(same) - 1
        b = math.inf
        for other_label in range(result.k):
            if other_label == own:
                continue
            others = [v for v, l in zip(vectors, result.labels) if l == other_label]
            if not others:
                continue
            d = sum(math.sqrt(_distance_sq(vector, v)) for v in others) / len(others)
            b = min(b, d)
        if not math.isfinite(b) or max(a, b) == 0.0:
            scores.append(0.0)
        else:
            scores.append((b - a) / max(a, b))
    return sum(scores) / n
