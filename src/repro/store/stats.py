"""Store hit/miss accounting, dependency-free.

:class:`StoreStats` lives in its own leaf module (rather than in
:mod:`repro.store.store`) so that :mod:`repro.measurement.campaign` can
annotate ``CampaignResult.store_stats`` with the real type without
creating an import cycle: ``store.keys`` imports ``campaign`` for the
config field list, and ``store.store`` imports ``store.keys``.  The
class is re-exported from both :mod:`repro.store` and
:mod:`repro.store.store`, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StoreStats:
    """Hit/miss accounting for one store consumer.

    ``resumed`` counts hits whose key had already been journaled by an
    earlier, interrupted invocation of the same named run — i.e. work
    genuinely recovered by ``--resume`` rather than replayed from an
    older complete run.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    resumed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "resumed": self.resumed,
            "hit_rate": self.hit_rate,
        }

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.resumed += other.resumed
