"""Cross-run regression diffing: per-page PLT deltas with bootstrap CIs.

``diff(store, run_a, run_b)`` aligns two named runs page by page and
reports, per protocol mode, the PLT delta distribution (B − A; positive
means B got *slower*), its bootstrap confidence interval from
:mod:`repro.analysis.bootstrap`, and a verdict: a **regression** is a
mean slowdown whose CI lower bound clears the threshold — i.e. the
slowdown is both large enough to matter and resolved above simulation
noise.  The CLI (``python -m repro.store diff``) exits non-zero on a
regression, which is what makes it usable as a CI perf gate.

Alignment is by ``(page_url, occurrence)``: runs visiting the same page
from several probes match their k-th occurrences in visit order, so
multi-probe campaigns diff probe-against-probe without needing probe
names in the stored payloads.  Failed visits (graceful-degradation
records) carry no measurement and are skipped, but their counts are
reported — a run that suddenly fails pages is suspicious even if the
surviving pages got faster.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.bootstrap import ConfidenceInterval, bootstrap_ci
from repro.store.store import ResultStore

#: Default regression threshold: mean PLT increase (ms) the CI lower
#: bound must clear before the diff exits non-zero.
DEFAULT_THRESHOLD_MS = 5.0


@dataclass(frozen=True)
class PageDelta:
    """PLT deltas (run B − run A, ms) for one aligned page visit."""

    page_url: str
    occurrence: int
    h2_delta_ms: float
    h3_delta_ms: float


@dataclass(frozen=True)
class ModeDelta:
    """One protocol mode's delta distribution across aligned pages."""

    mode: str
    ci: ConfidenceInterval
    #: Whether the mean slowdown clears the threshold above noise.
    regression: bool

    def render(self) -> str:
        verdict = "REGRESSION" if self.regression else "ok"
        return f"  {self.mode:11s} ΔPLT {self.ci} ms  [{verdict}]"


@dataclass
class RunDiff:
    """The full comparison of two named runs."""

    run_a: str
    run_b: str
    threshold_ms: float
    pages: list[PageDelta]
    h2: ModeDelta
    h3: ModeDelta
    #: Pages present in only one run (url → 'a' or 'b').
    unmatched: dict[str, str]
    failed_a: int
    failed_b: int

    @property
    def regression(self) -> bool:
        return self.h2.regression or self.h3.regression

    def worst_pages(self, n: int = 5) -> list[PageDelta]:
        """The ``n`` pages with the largest H3-mode slowdown."""
        return sorted(
            self.pages, key=lambda d: d.h3_delta_ms, reverse=True
        )[:n]

    def render(self) -> str:
        lines = [
            f"diff {self.run_a!r} → {self.run_b!r}: "
            f"{len(self.pages)} aligned paired visits "
            f"(threshold {self.threshold_ms:g} ms)",
            self.h2.render(),
            self.h3.render(),
        ]
        if self.failed_a or self.failed_b:
            lines.append(
                f"  failed visits: {self.failed_a} in A, {self.failed_b} in B"
            )
        if self.unmatched:
            lines.append(
                f"  unmatched pages: {len(self.unmatched)} "
                f"({sum(1 for side in self.unmatched.values() if side == 'a')}"
                f" only in A)"
            )
        for delta in self.worst_pages(3):
            lines.append(
                f"    {delta.page_url}: H3 {delta.h3_delta_ms:+.1f} ms, "
                f"H2 {delta.h2_delta_ms:+.1f} ms"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "threshold_ms": self.threshold_ms,
            "aligned_visits": len(self.pages),
            "regression": self.regression,
            "h2": _mode_dict(self.h2),
            "h3": _mode_dict(self.h3),
            "failed_a": self.failed_a,
            "failed_b": self.failed_b,
            "unmatched": dict(self.unmatched),
        }


def _mode_dict(mode: ModeDelta) -> dict:
    return {
        "mean_delta_ms": mode.ci.point,
        "ci_low": mode.ci.low,
        "ci_high": mode.ci.high,
        "confidence": mode.ci.confidence,
        "regression": mode.regression,
    }


def _visit_plts(documents: list[dict]) -> tuple[dict, int]:
    """``(page_url, occurrence) → (h2 PLT, h3 PLT)`` for one run.

    Only ``paired`` payloads with both visits count; ``failed``
    outcomes are tallied separately.
    """
    counts: dict[str, int] = defaultdict(int)
    plts: dict[tuple[str, int], tuple[float, float]] = {}
    failed = 0
    for document in documents:
        if document.get("status") == "failed":
            failed += 1
            continue
        h2, h3 = document.get("h2"), document.get("h3")
        if not h2 or not h3:
            continue
        url = h2["pageUrl"]
        occurrence = counts[url]
        counts[url] += 1
        plts[(url, occurrence)] = (h2["pltMs"], h3["pltMs"])
    return plts, failed


def _mode_delta(
    mode: str,
    deltas: list[float],
    threshold_ms: float,
    confidence: float,
    seed: int,
) -> ModeDelta:
    ci = bootstrap_ci(deltas, confidence=confidence, seed=seed)
    return ModeDelta(
        mode=mode, ci=ci, regression=ci.low > threshold_ms
    )


def diff_runs(
    store: ResultStore,
    run_a: str,
    run_b: str,
    threshold_ms: float = DEFAULT_THRESHOLD_MS,
    confidence: float = 0.95,
    seed: int = 0,
) -> RunDiff:
    """Compare two named runs; see the module docstring for semantics."""
    plts_a, failed_a = _visit_plts(store.run_outcomes(run_a))
    plts_b, failed_b = _visit_plts(store.run_outcomes(run_b))
    shared = sorted(set(plts_a) & set(plts_b))
    if not shared:
        raise ValueError(
            f"runs {run_a!r} and {run_b!r} share no successfully measured pages"
        )
    pages = [
        PageDelta(
            page_url=url,
            occurrence=occurrence,
            h2_delta_ms=plts_b[(url, occurrence)][0] - plts_a[(url, occurrence)][0],
            h3_delta_ms=plts_b[(url, occurrence)][1] - plts_a[(url, occurrence)][1],
        )
        for url, occurrence in shared
    ]
    unmatched: dict[str, str] = {}
    for url, __ in set(plts_a) - set(plts_b):
        unmatched[url] = "a"
    for url, __ in set(plts_b) - set(plts_a):
        unmatched[url] = "b"
    return RunDiff(
        run_a=run_a,
        run_b=run_b,
        threshold_ms=threshold_ms,
        pages=pages,
        h2=_mode_delta(
            "h2-only", [d.h2_delta_ms for d in pages],
            threshold_ms, confidence, seed,
        ),
        h3=_mode_delta(
            "h3-enabled", [d.h3_delta_ms for d in pages],
            threshold_ms, confidence, seed,
        ),
        unmatched=unmatched,
        failed_a=failed_a,
        failed_b=failed_b,
    )
