"""Content-addressed keys: canonical serialization + BLAKE2b hashing.

A stored result is addressed by a hash over *everything that determines
it* — and nothing else.  The key material for one paired visit is the
canonical JSON rendering of:

* the per-visit slice of the :class:`~repro.measurement.campaign.
  CampaignConfig` (protocol knobs, shaping, transport config, fault
  profile, strict flag — but *not* campaign topology like
  ``probes_per_vantage``, which changes how many visits exist rather
  than what any one visit measures),
* the page spec (HTML + subresources) plus the
  :class:`~repro.web.hosts.HostSpec` of every host the page touches —
  so regenerating a universe with more sites, or renaming it, never
  invalidates visits whose actual inputs are unchanged,
* the vantage point, the probe index, and the *derived* per-visit seed
  (which folds in the campaign seed and the page's position — page
  order changes RNG streams, so it legitimately changes the key),
* the store schema version (:data:`STORE_SCHEMA_VERSION`), so a format
  bump invalidates everything at once instead of mis-reading old
  payloads.

Deliberately excluded: the fault profile's *name* (two profiles with
identical events and retry policy produce identical results) and the
universe's generator config/seed (captured through the concrete page
and host specs instead).

Canonical JSON is ``sort_keys=True`` with compact separators and
``allow_nan=False``; the only non-finite value in any config —
``FaultEvent.end_ms`` defaulting to infinity — is rendered as the
string ``"inf"``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Mapping

from repro.measurement.campaign import CampaignConfig
from repro.measurement.vantage import VantagePoint
from repro.web.hosts import HostSpec
from repro.web.page import Webpage

#: Bump on any incompatible change to key material or payload formats;
#: every key embeds it, so old entries simply become misses.
#:
#: v2: the proxy topology (:class:`~repro.netsim.proxy.ProxyConfig`)
#: joined the per-visit key material — a proxied visit traverses a
#: different path chain, so it must never collide with a direct one.
#:
#: v3: cache-hierarchy and compression knobs (plus a proxy-side cache
#: size) joined the key material.  Configs that use none of the new
#: features keep *absent* keys and embed schema 2 (see
#: :func:`_schema_for`), so every pre-v3 store entry still replays as a
#: hit and run hashes of default campaigns are unchanged.
STORE_SCHEMA_VERSION = 3

#: Hex digest length for visit keys and payload hashes (128-bit).
DIGEST_SIZE = 16


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, compact, no NaN/Infinity."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def blake2b_hex(data: bytes, digest_size: int = DIGEST_SIZE) -> str:
    return hashlib.blake2b(data, digest_size=digest_size).hexdigest()


def _finite(value):
    """Render non-finite floats as strings (canonical JSON rejects them)."""
    if isinstance(value, float) and not math.isfinite(value):
        return "inf" if value > 0 else ("-inf" if value < 0 else "nan")
    return value


# ----------------------------------------------------------------------
# Config canonicalization
# ----------------------------------------------------------------------


def transport_part(config) -> dict:
    """A :class:`~repro.transport.config.TransportConfig` as key material."""
    return {k: _finite(v) for k, v in dataclasses.asdict(config).items()}


def fault_profile_part(profile) -> dict | None:
    """A :class:`~repro.faults.FaultProfile` as key material.

    The profile *name* is excluded: it is presentation metadata and two
    identically-scripted profiles must share cached results.
    """
    if profile is None:
        return None
    return {
        "events": [
            {
                "kind": event.kind,
                "start_ms": _finite(event.start_ms),
                "end_ms": _finite(event.end_ms),
                "hosts": list(event.hosts) if event.hosts is not None else None,
                "host_fraction": event.host_fraction,
                "salt": event.salt,
            }
            for event in profile.events
        ],
        "retry": dataclasses.asdict(profile.retry),
    }


def proxy_part(proxy) -> dict | None:
    """A :class:`~repro.netsim.proxy.ProxyConfig` as key material.

    The proxy model changes the wire behaviour (a CONNECT tunnel
    downgrades H3, a MASQUE relay passes it through), the client-leg
    profile shapes the access segment, and the forward delay adds hop
    latency — all of it determines the visit outcome.
    """
    if proxy is None:
        return None
    part = {
        "model": proxy.model,
        "client_profile": {
            k: _finite(v)
            for k, v in dataclasses.asdict(proxy.client_profile).items()
        },
        "forward_delay_ms": _finite(proxy.forward_delay_ms),
    }
    # Absent (not 0) when unset, so cacheless-proxy key material is
    # byte-identical to schema v2.
    cache_mb = getattr(proxy, "cache_mb", 0.0)
    if cache_mb:
        part["cache_mb"] = _finite(cache_mb)
    return part


def hierarchy_part(hierarchy) -> dict | None:
    """A :class:`~repro.cdn.hierarchy.HierarchyConfig` as key material."""
    if hierarchy is None:
        return None
    return {
        "tiers": [
            {
                "name": tier.name,
                "capacity_bytes": tier.capacity_bytes,
                "fetch_ms": _finite(tier.fetch_ms),
            }
            for tier in hierarchy.tiers
        ]
    }


def compression_part(compression) -> dict | None:
    """A :class:`~repro.cdn.compression.CompressionConfig` as key material."""
    if compression is None:
        return None
    return {
        "identity_request_ratio": _finite(compression.identity_request_ratio),
        "conversion_think_ms": _finite(compression.conversion_think_ms),
    }


def _schema_for(config_part: dict) -> int:
    """The schema version a key embeds for this config.

    v3 only *added* key material (hierarchy, compression, proxy cache).
    A config using none of it carries no v3 keys, so embedding schema 2
    keeps its keys — and therefore every pre-v3 store entry — valid.
    """
    if "hierarchy" in config_part or "compression" in config_part:
        return STORE_SCHEMA_VERSION
    proxy = config_part.get("proxy")
    if proxy is not None and proxy.get("cache_mb"):
        return STORE_SCHEMA_VERSION
    return 2


#: CampaignConfig fields that shape *one* visit's simulation.  Topology
#: fields (probes_per_vantage, max_vantage_points) and the base seed are
#: excluded — the first two only change how many visits exist, and the
#: seed enters each key through the derived per-visit seed.  Purely
#: observational knobs (metrics_interval_ms, metrics_max_samples, spans,
#: profile_loop, progress) are excluded *by design*: telemetry never
#: changes what a visit measures, so toggling it must not invalidate
#: cached visits.
_VISIT_CONFIG_FIELDS = (
    "visits_per_page",
    "loss_rate",
    "rate_mbps",
    "warm_popular",
    "use_session_tickets",
    "collect_counters",
    "trace",
    "strict",
)


def visit_config_part(config: CampaignConfig) -> dict:
    """The per-visit slice of a campaign config, as key material."""
    part = {name: getattr(config, name) for name in _VISIT_CONFIG_FIELDS}
    part["transport"] = transport_part(config.transport_config)
    part["faults"] = fault_profile_part(config.fault_profile)
    part["proxy"] = proxy_part(config.proxy)
    # v3 knobs stay *absent* (not null) at their defaults so default
    # configs produce byte-identical key material to schema v2.
    hierarchy = hierarchy_part(getattr(config, "cache_hierarchy", None))
    if hierarchy is not None:
        part["hierarchy"] = hierarchy
    compression = compression_part(getattr(config, "compression", None))
    if compression is not None:
        part["compression"] = compression
    return part


def campaign_config_hash(config: CampaignConfig) -> str:
    """Hash of the *whole* campaign config (run-level provenance).

    Unlike :func:`visit_config_part` this covers every field — seed and
    topology included — because it identifies a campaign, not a visit.
    It is the ``config_hash`` recorded in run manifests and the store's
    ``runs`` table.
    """
    material = visit_config_part(config)
    material["seed"] = config.seed
    material["probes_per_vantage"] = config.probes_per_vantage
    material["max_vantage_points"] = config.max_vantage_points
    material["schema"] = _schema_for(material)
    return blake2b_hex(canonical_json(material).encode())


# ----------------------------------------------------------------------
# Workload canonicalization
# ----------------------------------------------------------------------


def _resource_part(resource) -> dict:
    return {
        "url": resource.url,
        "host": resource.host,
        "type": resource.rtype.value,
        "size": resource.size_bytes,
        "provider": resource.provider_name,
        "wave": resource.wave,
        "popular": resource.popular,
        "request_bytes": resource.request_bytes,
    }


def _host_part(spec: HostSpec) -> dict:
    return {
        "hostname": spec.hostname,
        "kind": spec.kind,
        "provider": spec.provider_name,
        "h3": spec.supports_h3,
        "h2": spec.supports_h2,
        "rtt_ms": spec.base_rtt_ms,
        "think_ms": spec.base_think_ms,
        "origin_fetch_ms": spec.origin_fetch_ms,
        "h3_overhead_ms": spec.h3_think_overhead_ms,
        "tls": spec.tls_version.value,
    }


def page_part(page: Webpage, hosts: Mapping[str, HostSpec]) -> dict:
    """One page plus the host specs it touches, as key material.

    ``hosts`` is the universe's full inventory; only the page's own
    hosts are folded in, so unrelated universe changes don't invalidate
    the page's cached visits.
    """
    return {
        "url": page.url,
        "origin_host": page.origin_host,
        "html": _resource_part(page.html),
        "resources": [_resource_part(r) for r in page.resources],
        "hosts": [
            _host_part(hosts[name]) for name in sorted(page.hosts())
            if name in hosts
        ],
    }


def vantage_part(vantage: VantagePoint) -> dict:
    return {
        "name": vantage.name,
        "rtt_scale": vantage.rtt_scale,
        "extra_delay_ms": vantage.extra_delay_ms,
    }


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


def paired_visit_key(
    config_part: dict,
    page_material: dict,
    vantage: VantagePoint,
    probe_index: int,
    derived_seed: int,
) -> str:
    """The store key for one paired (H2, H3) visit.

    ``config_part`` and ``page_material`` are precomputed via
    :func:`visit_config_part` / :func:`page_part` so campaign-scale key
    derivation hashes each config and page once, not once per slot.
    """
    material = {
        "schema": _schema_for(config_part),
        "kind": "paired",
        "mode": "h2+h3",
        "config": config_part,
        "page": page_material,
        "vantage": vantage_part(vantage),
        "probe_index": probe_index,
        "seed": derived_seed,
    }
    return blake2b_hex(canonical_json(material).encode())


def consecutive_key(
    mode: str,
    pages_material: list[dict],
    config_material: dict,
) -> str:
    """The store key for one whole consecutive-visit walk.

    Session tickets persist across the walk, so individual visits don't
    decompose — the unit of caching is the ordered walk under one mode.
    """
    material = {
        "schema": _schema_for(config_material),
        "kind": "consecutive",
        "mode": mode,
        "config": config_material,
        "pages": pages_material,
    }
    return blake2b_hex(canonical_json(material).encode())
