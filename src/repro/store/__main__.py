"""Entry point for ``python -m repro.store``."""

import sys

from repro.store.cli import main

sys.exit(main())
