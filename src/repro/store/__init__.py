"""Persistent results: content-addressed store, resume, regression diff.

This package makes measurement results durable and addressable:

* :mod:`repro.store.keys` — canonical serialization and BLAKE2b keying
  of visits (config + page + hosts + vantage + derived seed + schema
  version),
* :mod:`repro.store.store` — :class:`ResultStore`, a stdlib-``sqlite3``
  index over an append-only JSONL artifact file, with named runs, a
  per-visit write-ahead journal (resumable campaigns), ``verify`` and
  ``gc``,
* :mod:`repro.store.diff` — per-page PLT regression diffing between
  named runs with bootstrap confidence intervals (the CI perf gate),
* :mod:`repro.store.cli` — ``python -m repro.store``
  (``stats`` / ``verify`` / ``gc`` / ``diff``).

The core guarantee mirrors :mod:`repro.obs` and :mod:`repro.check`:
attaching a store is *observational*.  ``Campaign.run(store=...)``
executes cache misses exactly as a store-less run would and replays
hits bit-identically, so results never depend on what the store
happened to contain.
"""

from repro.store.diff import DEFAULT_THRESHOLD_MS, ModeDelta, PageDelta, RunDiff, diff_runs
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    campaign_config_hash,
    canonical_json,
    consecutive_key,
    paired_visit_key,
    visit_config_part,
)
from repro.store.stats import StoreStats
from repro.store.store import (
    GcReport,
    ResultStore,
    RunInfo,
    StoreError,
    VerifyProblem,
)

__all__ = [
    "DEFAULT_THRESHOLD_MS",
    "GcReport",
    "ModeDelta",
    "PageDelta",
    "ResultStore",
    "RunDiff",
    "RunInfo",
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "StoreStats",
    "VerifyProblem",
    "campaign_config_hash",
    "canonical_json",
    "consecutive_key",
    "diff_runs",
    "paired_visit_key",
    "visit_config_part",
]
