"""``python -m repro.store`` — inspect and maintain a result store.

Subcommands::

    stats  <store>                    inventory: entries, runs, bytes
    verify <store>                    re-hash payloads + HAR invariants
    gc     <store> [--dry-run]        prune entries unreachable from runs
    diff   <store> <runA> <runB>      per-page PLT deltas with bootstrap
                                      CIs; exits 1 on a regression

Exit codes: 0 clean, 1 verification failure or regression, 2 usage
errors (unknown store/run).  ``diff``'s non-zero-on-regression contract
is what lets CI pipelines use it as a perf gate between a baseline run
and a candidate run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.store.diff import DEFAULT_THRESHOLD_MS, diff_runs
from repro.store.store import ResultStore, StoreError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect and maintain a repro result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="store inventory")
    stats.add_argument("store", help="store directory")
    stats.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")

    verify = sub.add_parser(
        "verify", help="re-hash every payload and re-check HAR invariants"
    )
    verify.add_argument("store", help="store directory")

    gc = sub.add_parser(
        "gc", help="prune entries unreachable from named runs"
    )
    gc.add_argument("store", help="store directory")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be pruned without writing")

    diff = sub.add_parser(
        "diff", help="per-page PLT regression diff between two named runs"
    )
    diff.add_argument("store", help="store directory")
    diff.add_argument("run_a", help="baseline run name")
    diff.add_argument("run_b", help="candidate run name")
    diff.add_argument("--threshold-ms", type=float,
                      default=DEFAULT_THRESHOLD_MS,
                      help="mean slowdown (ms) the CI lower bound must clear "
                      f"to count as a regression (default {DEFAULT_THRESHOLD_MS:g})")
    diff.add_argument("--confidence", type=float, default=0.95,
                      help="bootstrap CI confidence level (default 0.95)")
    diff.add_argument("--seed", type=int, default=0,
                      help="bootstrap resampling seed (default 0)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as JSON")
    return parser


def _open_store(path: str) -> ResultStore:
    if not os.path.isdir(path):
        raise StoreError(f"not a store directory: {path}")
    return ResultStore(path)


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        summary = store.stats_summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"store {args.store} (schema v{summary['schema_version']})")
    print(f"  entries: {summary['entries']} "
          f"({', '.join(f'{k}={v}' for k, v in sorted(summary['entries_by_kind'].items())) or 'none'})")
    print(f"  artifacts: {summary['artifact_bytes']:,} bytes; "
          f"index: {summary['index_bytes']:,} bytes")
    for run in summary["runs"]:
        state = "complete" if run["complete"] else "interrupted"
        print(f"  run {run['name']!r}: {run['n_visits']} visits, "
              f"{run['journaled']} journaled, {state}, "
              f"config {run['config_hash'][:12]}")
    if not summary["runs"]:
        print("  (no named runs)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        n_entries = store.stats_summary()["entries"]
        problems = store.verify()
    if not problems:
        print(f"verify: {n_entries} entries ok")
        return 0
    print(f"verify: {len(problems)} problem(s) in {n_entries} entries",
          file=sys.stderr)
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    return 1


def _cmd_gc(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        report = store.gc(dry_run=args.dry_run)
    action = "would prune" if report.dry_run else "pruned"
    print(
        f"gc: {action} {report.entries_pruned} of {report.entries_before} "
        f"entries, reclaiming {report.bytes_reclaimed:,} bytes"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        result = diff_runs(
            store,
            args.run_a,
            args.run_b,
            threshold_ms=args.threshold_ms,
            confidence=args.confidence,
            seed=args.seed,
        )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 1 if result.regression else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "gc": _cmd_gc,
        "diff": _cmd_diff,
    }
    try:
        return handlers[args.command](args)
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
