"""The result store: sqlite index + JSONL artifact spill.

Layout of a store directory::

    <root>/index.sqlite3    entry index, named runs, visit journal
    <root>/artifacts.jsonl  append-only canonical-JSON payloads

The sqlite database is the source of truth: each ``entries`` row maps a
content-addressed key to a ``(offset, length, payload_hash)`` slice of
the artifact file.  Payloads are written append-only and committed
together with their index row, one transaction per visit — that
transaction sequence *is* the write-ahead journal that makes
interrupted campaigns resumable: a killed run leaves every completed
visit durable and replayable, and at worst one orphaned artifact line
(no index row), which ``gc`` compacts away.

Named runs map a label to the ordered key list of a finished campaign
(``run_visits``) plus the per-visit completion journal (``journal``).
``gc`` prunes entries reachable from neither; ``verify`` re-hashes
every payload against the index and re-checks the HAR invariants from
:mod:`repro.check`.

Single-writer by design: the campaign parent process is the only
writer (workers ship outcomes back over the pool), so there is no
cross-process locking beyond sqlite's own.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass, field

from repro.store.keys import STORE_SCHEMA_VERSION, blake2b_hex, canonical_json
from repro.store.stats import StoreStats

__all__ = [
    "GcReport",
    "ResultStore",
    "RunInfo",
    "StoreError",
    "StoreStats",
    "VerifyProblem",
]


class StoreError(Exception):
    """A store-level failure (schema mismatch, unknown run, corruption)."""


@dataclass(frozen=True)
class VerifyProblem:
    """One integrity failure found by :meth:`ResultStore.verify`."""

    key: str
    problem: str
    detail: str

    def __str__(self) -> str:
        return f"{self.key[:12]}…: {self.problem} — {self.detail}"


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass did (or would do)."""

    entries_before: int = 0
    entries_pruned: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    dry_run: bool = False

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


@dataclass(frozen=True)
class RunInfo:
    """One named run's index record."""

    name: str
    config_hash: str
    complete: bool
    n_visits: int
    journaled: int
    created_unix: float = field(compare=False, default=0.0)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    payload_hash TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    page_url TEXT,
    probe TEXT,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    name TEXT PRIMARY KEY,
    config_hash TEXT NOT NULL,
    created_unix REAL NOT NULL,
    complete INTEGER NOT NULL DEFAULT 0,
    n_visits INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS run_visits (
    run_name TEXT NOT NULL,
    position INTEGER NOT NULL,
    key TEXT NOT NULL,
    PRIMARY KEY (run_name, position)
);
CREATE TABLE IF NOT EXISTS journal (
    run_name TEXT NOT NULL,
    seq INTEGER NOT NULL,
    key TEXT NOT NULL,
    source TEXT NOT NULL,
    created_unix REAL NOT NULL,
    PRIMARY KEY (run_name, seq)
);
CREATE INDEX IF NOT EXISTS idx_run_visits_key ON run_visits (key);
CREATE INDEX IF NOT EXISTS idx_journal_key ON journal (key);
"""


class ResultStore:
    """Content-addressed persistence for measurement results."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.index_path = os.path.join(root, "index.sqlite3")
        self.artifacts_path = os.path.join(root, "artifacts.jsonl")
        self._db = sqlite3.connect(self.index_path)
        self._db.executescript(_SCHEMA)
        self._check_schema_version()
        # Append handle (created lazily so read-only consumers never
        # touch the artifact file) and a separate read handle.
        self._append = None
        self._read = None
        #: Instance-wide accounting; campaign runners additionally keep
        #: per-campaign :class:`StoreStats`.
        self.stats = StoreStats()

    # -- lifecycle -----------------------------------------------------

    def _check_schema_version(self) -> None:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            with self._db:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
        elif int(row[0]) != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{self.index_path}: store schema v{row[0]} != "
                f"supported v{STORE_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        if self._append is not None:
            self._append.close()
            self._append = None
        if self._read is not None:
            self._read.close()
            self._read = None
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw payload I/O ----------------------------------------------

    def _append_handle(self):
        if self._append is None:
            self._append = open(self.artifacts_path, "ab")
        return self._append

    def _read_payload(self, offset: int, length: int) -> bytes:
        if self._append is not None:
            self._append.flush()
        if self._read is None:
            self._read = open(self.artifacts_path, "rb")
        self._read.seek(offset)
        return self._read.read(length)

    # -- entries -------------------------------------------------------

    def contains(self, key: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM entries WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def get(self, key: str) -> dict | None:
        """The payload document for ``key``, or ``None`` on a miss.

        Every read re-hashes the payload against the index — a silently
        corrupted artifact file raises :class:`StoreError` instead of
        replaying garbage into a campaign.
        """
        row = self._db.execute(
            "SELECT offset, length, payload_hash FROM entries WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        offset, length, payload_hash = row
        payload = self._read_payload(offset, length)
        if len(payload) != length or blake2b_hex(payload) != payload_hash:
            raise StoreError(
                f"artifact corruption for key {key}: payload hash mismatch "
                f"(run `python -m repro.store verify`)"
            )
        self.stats.hits += 1
        return json.loads(payload)

    def put(
        self,
        key: str,
        document: dict,
        *,
        kind: str,
        config_hash: str,
        page_url: str | None = None,
        probe: str | None = None,
    ) -> bool:
        """Durably store ``document`` under ``key``; idempotent.

        Returns ``False`` (writing nothing) when the key already exists
        — content addressing makes re-puts of the same key equivalent.
        The artifact append and the index insert commit in one
        transaction, which is the per-visit write-ahead step.
        """
        if self.contains(key):
            return False
        payload = (canonical_json(document) + "\n").encode()
        handle = self._append_handle()
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        handle.write(payload)
        handle.flush()
        with self._db:
            self._db.execute(
                "INSERT INTO entries (key, kind, offset, length, payload_hash,"
                " config_hash, page_url, probe, created_unix)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    kind,
                    offset,
                    len(payload),
                    blake2b_hex(payload),
                    config_hash,
                    page_url,
                    probe,
                    time.time(),
                ),
            )
        self.stats.writes += 1
        return True

    # -- named runs and the visit journal ------------------------------

    def begin_run(
        self, name: str, *, config_hash: str, resume: bool = False
    ) -> set[str]:
        """Open (or reopen) a named run; returns prior journaled keys.

        Without ``resume`` any earlier run record and journal under
        ``name`` is discarded and the returned set is empty.  With
        ``resume`` the prior journal survives and its key set is
        returned, so the caller can tell recovered visits (store hits
        that a crashed invocation already completed) from replays of
        older runs.
        """
        prior: set[str] = set()
        with self._db:
            if resume:
                prior = {
                    row[0]
                    for row in self._db.execute(
                        "SELECT key FROM journal WHERE run_name = ?", (name,)
                    )
                }
            else:
                self._db.execute(
                    "DELETE FROM journal WHERE run_name = ?", (name,)
                )
            self._db.execute(
                "DELETE FROM run_visits WHERE run_name = ?", (name,)
            )
            self._db.execute(
                "INSERT OR REPLACE INTO runs"
                " (name, config_hash, created_unix, complete, n_visits)"
                " VALUES (?, ?, ?, 0, 0)",
                (name, config_hash, time.time()),
            )
        return prior

    def journal_visit(self, name: str, key: str, source: str = "fresh") -> None:
        """Journal one completed visit (committed immediately)."""
        with self._db:
            row = self._db.execute(
                "SELECT COALESCE(MAX(seq), -1) + 1 FROM journal"
                " WHERE run_name = ?",
                (name,),
            ).fetchone()
            self._db.execute(
                "INSERT INTO journal (run_name, seq, key, source, created_unix)"
                " VALUES (?, ?, ?, ?, ?)",
                (name, row[0], key, source, time.time()),
            )

    def put_batch(
        self,
        entries: list[dict],
        *,
        journal: list[tuple[str, str, str]] = (),
        run_visits: list[tuple[str, int, str]] = (),
    ) -> int:
        """Write several entries + journal rows in **one** transaction.

        ``entries`` items carry the same fields as :meth:`put` keyword
        arguments (``key``, ``document``, ``kind``, ``config_hash``,
        optional ``page_url``/``probe``); existing keys are skipped.
        ``journal`` rows are ``(run_name, key, source)`` triples and
        ``run_visits`` rows are ``(run_name, position, key)`` — both
        commit atomically with the entry index, so a batch is either
        fully durable or (at worst) orphaned artifact bytes that ``gc``
        compacts away.  This is the streaming executor's write-through
        batching: one fsync-ish commit per *batch* instead of per visit.

        Returns the number of new entries written.
        """
        new_rows: list[tuple] = []
        seen: set[str] = set()
        handle = None
        for item in entries:
            key = item["key"]
            if key in seen or self.contains(key):
                continue
            seen.add(key)
            payload = (canonical_json(item["document"]) + "\n").encode()
            if handle is None:
                handle = self._append_handle()
                handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            handle.write(payload)
            new_rows.append(
                (
                    key,
                    item["kind"],
                    offset,
                    len(payload),
                    blake2b_hex(payload),
                    item["config_hash"],
                    item.get("page_url"),
                    item.get("probe"),
                    time.time(),
                )
            )
        if handle is not None:
            handle.flush()
        with self._db:
            if new_rows:
                self._db.executemany(
                    "INSERT INTO entries (key, kind, offset, length,"
                    " payload_hash, config_hash, page_url, probe,"
                    " created_unix) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    new_rows,
                )
            next_seq: dict[str, int] = {}
            for run_name, key, source in journal:
                if run_name not in next_seq:
                    next_seq[run_name] = self._db.execute(
                        "SELECT COALESCE(MAX(seq), -1) + 1 FROM journal"
                        " WHERE run_name = ?",
                        (run_name,),
                    ).fetchone()[0]
                self._db.execute(
                    "INSERT INTO journal (run_name, seq, key, source,"
                    " created_unix) VALUES (?, ?, ?, ?, ?)",
                    (run_name, next_seq[run_name], key, source, time.time()),
                )
                next_seq[run_name] += 1
            if run_visits:
                self._db.executemany(
                    "INSERT OR REPLACE INTO run_visits"
                    " (run_name, position, key) VALUES (?, ?, ?)",
                    list(run_visits),
                )
        self.stats.writes += len(new_rows)
        return len(new_rows)

    def mark_run_complete(self, name: str, n_visits: int) -> None:
        """Flip a run to complete once its visit list has been streamed.

        The streaming executor appends ``run_visits`` rows batch by
        batch (via :meth:`put_batch`) instead of handing
        :meth:`finish_run` an O(visits) key list; this is the closing
        bookend.
        """
        with self._db:
            self._db.execute(
                "UPDATE runs SET complete = 1, n_visits = ? WHERE name = ?",
                (n_visits, name),
            )

    def journal_keys(self, name: str) -> list[str]:
        """Journaled visit keys of ``name``, in completion order."""
        return [
            row[0]
            for row in self._db.execute(
                "SELECT key FROM journal WHERE run_name = ? ORDER BY seq",
                (name,),
            )
        ]

    def finish_run(self, name: str, keys: list[str]) -> None:
        """Record the complete, ordered visit list of a finished run."""
        with self._db:
            self._db.execute(
                "DELETE FROM run_visits WHERE run_name = ?", (name,)
            )
            self._db.executemany(
                "INSERT INTO run_visits (run_name, position, key)"
                " VALUES (?, ?, ?)",
                [(name, position, key) for position, key in enumerate(keys)],
            )
            self._db.execute(
                "UPDATE runs SET complete = 1, n_visits = ? WHERE name = ?",
                (len(keys), name),
            )

    def run_names(self) -> list[str]:
        return [
            row[0]
            for row in self._db.execute("SELECT name FROM runs ORDER BY name")
        ]

    def run_info(self, name: str) -> RunInfo | None:
        row = self._db.execute(
            "SELECT config_hash, complete, n_visits, created_unix"
            " FROM runs WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            return None
        journaled = self._db.execute(
            "SELECT COUNT(*) FROM journal WHERE run_name = ?", (name,)
        ).fetchone()[0]
        return RunInfo(
            name=name,
            config_hash=row[0],
            complete=bool(row[1]),
            n_visits=row[2],
            journaled=journaled,
            created_unix=row[3],
        )

    def run_keys(self, name: str) -> list[str]:
        """The ordered visit keys of a *complete* named run."""
        info = self.run_info(name)
        if info is None:
            raise StoreError(
                f"unknown run {name!r}; known: {', '.join(self.run_names()) or '(none)'}"
            )
        return [
            row[0]
            for row in self._db.execute(
                "SELECT key FROM run_visits WHERE run_name = ?"
                " ORDER BY position",
                (name,),
            )
        ]

    def run_outcomes(self, name: str) -> list[dict]:
        """Every stored payload of a named run, in visit order."""
        documents = []
        for key in self.run_keys(name):
            document = self.get(key)
            if document is None:
                raise StoreError(
                    f"run {name!r} references missing entry {key} "
                    "(gc'd or never finished?)"
                )
            documents.append(document)
        return documents

    # -- maintenance ---------------------------------------------------

    def stats_summary(self) -> dict:
        """Store-wide inventory (the ``stats`` subcommand's payload)."""
        kinds = dict(
            self._db.execute(
                "SELECT kind, COUNT(*) FROM entries GROUP BY kind"
            ).fetchall()
        )
        if self._append is not None:
            self._append.flush()
        artifact_bytes = (
            os.path.getsize(self.artifacts_path)
            if os.path.exists(self.artifacts_path)
            else 0
        )
        return {
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": sum(kinds.values()),
            "entries_by_kind": kinds,
            "artifact_bytes": artifact_bytes,
            "index_bytes": (
                os.path.getsize(self.index_path)
                if os.path.exists(self.index_path)
                else 0
            ),
            "runs": [
                {
                    "name": info.name,
                    "config_hash": info.config_hash,
                    "complete": info.complete,
                    "n_visits": info.n_visits,
                    "journaled": info.journaled,
                }
                for info in (
                    self.run_info(name) for name in self.run_names()
                )
                if info is not None
            ],
        }

    def verify(self) -> list[VerifyProblem]:
        """Re-hash every payload and re-check stored HAR invariants.

        Two layers: byte-level integrity (payload length and BLAKE2b
        hash against the index row) and semantic integrity (each stored
        visit's HAR must still satisfy the :mod:`repro.check` timing
        invariants — the same ones strict mode enforces at collection
        time).  Returns every problem found; an empty list means clean.
        """
        from repro.check.context import CheckContext
        from repro.check.visit import check_har

        problems: list[VerifyProblem] = []
        rows = self._db.execute(
            "SELECT key, kind, offset, length, payload_hash FROM entries"
            " ORDER BY offset"
        ).fetchall()
        for key, kind, offset, length, payload_hash in rows:
            try:
                payload = self._read_payload(offset, length)
            except OSError as exc:
                problems.append(VerifyProblem(key, "unreadable", str(exc)))
                continue
            if len(payload) != length:
                problems.append(
                    VerifyProblem(
                        key, "truncated",
                        f"expected {length} bytes, read {len(payload)}",
                    )
                )
                continue
            if blake2b_hex(payload) != payload_hash:
                problems.append(
                    VerifyProblem(key, "hash_mismatch", "payload re-hash differs")
                )
                continue
            try:
                document = json.loads(payload)
            except ValueError as exc:
                problems.append(VerifyProblem(key, "bad_json", str(exc)))
                continue
            for visit_doc in _visit_documents(kind, document):
                try:
                    from repro.browser.browser import PageVisit

                    visit = PageVisit.from_dict(visit_doc)
                except (KeyError, ValueError) as exc:
                    problems.append(
                        VerifyProblem(key, "bad_visit", f"{type(exc).__name__}: {exc}")
                    )
                    continue
                check = CheckContext(mode="collect")
                check_har(check, visit.har)
                for violation in check.violations:
                    problems.append(
                        VerifyProblem(key, "har_invariant", str(violation))
                    )
        return problems

    def reachable_keys(self) -> set[str]:
        """Keys referenced by any named run or any run's journal.

        Journal references keep an *interrupted* run's completed visits
        alive, so a gc between the crash and the ``--resume`` never
        throws the recoverable work away.
        """
        reachable = {
            row[0] for row in self._db.execute("SELECT key FROM run_visits")
        }
        reachable.update(
            row[0] for row in self._db.execute("SELECT key FROM journal")
        )
        return reachable

    def gc(self, dry_run: bool = False) -> GcReport:
        """Prune entries unreachable from named runs; compact artifacts.

        Reachability is defined by :meth:`reachable_keys`.  The artifact
        file is rewritten with only surviving payloads (offsets updated
        atomically with the rewrite), so reclaimed bytes are actually
        returned to the filesystem rather than left as dead weight.
        """
        if self._append is not None:
            self._append.flush()
        report = GcReport(dry_run=dry_run)
        report.bytes_before = (
            os.path.getsize(self.artifacts_path)
            if os.path.exists(self.artifacts_path)
            else 0
        )
        rows = self._db.execute(
            "SELECT key, offset, length FROM entries ORDER BY offset"
        ).fetchall()
        report.entries_before = len(rows)
        reachable = self.reachable_keys()
        keep = [row for row in rows if row[0] in reachable]
        report.entries_pruned = len(rows) - len(keep)
        report.bytes_after = sum(length for __, __, length in keep)
        if dry_run or not rows:
            return report

        # Rewrite artifacts with survivors only, then swap in the new
        # offsets and file in one transaction + atomic rename.
        if self._read is not None:
            self._read.close()
            self._read = None
        if self._append is not None:
            self._append.close()
            self._append = None
        compact_path = self.artifacts_path + ".gc"
        new_offsets: list[tuple[int, str]] = []
        with open(compact_path, "wb") as compact:
            with open(self.artifacts_path, "rb") as source:
                for key, offset, length in keep:
                    source.seek(offset)
                    new_offsets.append((compact.tell(), key))
                    compact.write(source.read(length))
        with self._db:
            self._db.execute(
                "DELETE FROM entries WHERE key NOT IN (SELECT key FROM"
                " run_visits UNION SELECT key FROM journal)"
            )
            self._db.executemany(
                "UPDATE entries SET offset = ? WHERE key = ?", new_offsets
            )
        os.replace(compact_path, self.artifacts_path)
        self._db.execute("VACUUM")
        return report


def _visit_documents(kind: str, document: dict) -> list[dict]:
    """The PageVisit sub-documents a stored payload carries."""
    if kind == "paired":
        return [
            doc for doc in (document.get("h2"), document.get("h3"))
            if doc is not None
        ]
    if kind == "consecutive":
        return list(document.get("visits", ()))
    return []
