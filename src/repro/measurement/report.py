"""Campaign reporting: summary statistics over a finished campaign.

Produces the numbers the paper reports about its *collection* (Section
III/IV): request counts, protocol mix, per-mode PLT statistics, the
PLT-reduction distribution with a bootstrap confidence interval, and
the traffic-volume accounting from the ethics discussion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.bootstrap import ConfidenceInterval, bootstrap_ci
from repro.analysis.stats import mean, median, quantile
from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.measurement.campaign import CampaignResult
from repro.measurement.summary import CampaignSummary, ModeFold

if TYPE_CHECKING:  # leaf-module import would still cycle via repro.store
    from repro.store.stats import StoreStats


@dataclass(frozen=True)
class ModeSummary:
    """Aggregates for one protocol mode's recorded visits."""

    mode: str
    pages: int
    requests: int
    mean_plt_ms: float
    median_plt_ms: float
    p90_plt_ms: float
    reused_requests: int
    resumed_requests: int
    bytes_transferred: int


@dataclass(frozen=True)
class CampaignReport:
    """The full digest of one campaign."""

    pages_measured: int
    total_requests: int
    h2: ModeSummary
    h3: ModeSummary
    plt_reduction_ci: ConfidenceInterval
    pages_h3_wins: int
    #: Store hit/miss accounting, when the campaign ran against a
    #: :class:`~repro.store.ResultStore` (``None`` otherwise).
    store: "StoreStats | None" = None

    @property
    def h3_win_rate(self) -> float:
        return self.pages_h3_wins / self.pages_measured if self.pages_measured else 0.0

    def render(self, include_store: bool = True) -> str:
        """Human-readable digest.

        ``include_store=False`` drops the store-accounting line — the
        measurement lines are bit-identical between a fresh run and a
        warm-store replay, and determinism tests compare exactly that.
        """
        lines = [
            f"campaign: {self.pages_measured} paired page measurements, "
            f"{self.total_requests} requests",
        ]
        for summary in (self.h2, self.h3):
            lines.append(
                f"  {summary.mode:11s} PLT mean {summary.mean_plt_ms:7.1f} ms "
                f"(median {summary.median_plt_ms:7.1f}, p90 {summary.p90_plt_ms:7.1f}); "
                f"{summary.reused_requests} reused / {summary.resumed_requests} resumed "
                f"requests; {summary.bytes_transferred / 1e6:.1f} MB"
            )
        lines.append(
            f"  PLT reduction: {self.plt_reduction_ci} ms; "
            f"H3 wins on {self.h3_win_rate:.0%} of pages"
        )
        if include_store and self.store is not None:
            lines.append(
                f"  store: {self.store.hits} hits / {self.store.misses} misses "
                f"({self.store.hit_rate:.0%} hit rate), "
                f"{self.store.resumed} resumed, {self.store.writes} written"
            )
        return "\n".join(lines)


def _summarize_mode(result: CampaignResult, mode: str) -> ModeSummary:
    visits = result.visits(mode)
    plts = [visit.plt_ms for visit in visits]
    entries = [entry for visit in visits for entry in visit.entries]
    return ModeSummary(
        mode=mode,
        pages=len(visits),
        requests=len(entries),
        mean_plt_ms=mean(plts),
        median_plt_ms=median(plts),
        p90_plt_ms=quantile(plts, 0.9),
        reused_requests=sum(1 for entry in entries if entry.used_reused_connection),
        resumed_requests=sum(1 for entry in entries if entry.resumed),
        bytes_transferred=sum(entry.response_bytes for entry in entries),
    )


def _mode_from_fold(fold: ModeFold) -> ModeSummary:
    """Lift a streaming :class:`ModeFold` into a :class:`ModeSummary`.

    Mean/total counts are exact; median and p90 come from the fixed-grid
    PLT histogram (deterministic, accurate to one bin width).
    """
    return ModeSummary(
        mode=fold.mode,
        pages=fold.visits,
        requests=fold.har_entries,
        mean_plt_ms=fold.plt.mean,
        median_plt_ms=fold.plt.quantile(0.5),
        p90_plt_ms=fold.plt.quantile(0.9),
        reused_requests=fold.reused_requests,
        resumed_requests=fold.resumed_requests,
        bytes_transferred=fold.bytes_transferred,
    )


def summary_report(
    summary: CampaignSummary, store: "StoreStats | None" = None
) -> CampaignReport:
    """Build a :class:`CampaignReport` from a folded streaming summary.

    The materialized path bootstraps its PLT-reduction CI from the raw
    per-visit reductions; those are gone in summary-only mode, so the
    CI is the normal approximation from the fold's exact running
    moments (``resamples=0`` marks the difference).
    """
    if summary.visits_recorded == 0:
        raise ValueError("cannot report on an empty campaign")
    reduction = summary.reduction
    point = reduction.mean
    half = (
        1.96 * reduction.stdev / math.sqrt(reduction.n) if reduction.n > 1 else 0.0
    )
    return CampaignReport(
        pages_measured=summary.visits_recorded,
        total_requests=summary.h2.pool_requests + summary.h3.pool_requests,
        h2=_mode_from_fold(summary.h2),
        h3=_mode_from_fold(summary.h3),
        plt_reduction_ci=ConfidenceInterval(
            point=point,
            low=point - half,
            high=point + half,
            confidence=0.95,
            resamples=0,
        ),
        pages_h3_wins=summary.h3_wins,
        store=store,
    )


def campaign_report(result: CampaignResult, seed: int = 0) -> CampaignReport:
    """Summarize ``result`` (bootstrap CI on the mean PLT reduction).

    Summary-only streaming results (no materialized ``paired_visits``)
    are reported from their folded :class:`CampaignSummary` instead.
    """
    if not result.paired_visits:
        if result.summary is not None and result.summary.visits_recorded:
            return summary_report(result.summary, store=result.store_stats)
        raise ValueError("cannot report on an empty campaign")
    reductions = [pv.plt_reduction_ms for pv in result.paired_visits]
    return CampaignReport(
        pages_measured=len(result.paired_visits),
        total_requests=sum(
            pv.h2.pool_stats.requests + pv.h3.pool_stats.requests
            for pv in result.paired_visits
        ),
        h2=_summarize_mode(result, H2_ONLY),
        h3=_summarize_mode(result, H3_ENABLED),
        plt_reduction_ci=bootstrap_ci(reductions, seed=seed),
        pages_h3_wins=sum(1 for r in reductions if r > 0),
        store=result.store_stats,
    )
