"""The measurement campaign: the paper's Section III-B protocol, end to end.

A :class:`Campaign` visits every target page from every probe, once per
protocol mode (H2 baseline and H3-enabled), using the double-visit
trick to warm edge caches, and collects one :class:`PairedVisit` per
(probe, page).  The result object is what all Table II / Fig. 2–7
analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.browser.browser import H2_ONLY, H3_ENABLED, PageVisit
from repro.cdn.compression import CompressionConfig
from repro.cdn.hierarchy import HierarchyConfig
from repro.faults import FaultProfile
from repro.measurement.outcome import VisitFailure
from repro.measurement.summary import CampaignSummary
from repro.measurement.vantage import VantagePoint, default_vantage_points
from repro.netsim.proxy import ProxyConfig
from repro.transport.config import TransportConfig
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

if TYPE_CHECKING:  # leaf-module import would still cycle via repro.store
    from repro.store.stats import StoreStats


@dataclass(frozen=True)
class SimConfig:
    """Everything that shapes *what a visit measures*.

    These are exactly the store-keyed knobs plus the knobs that select
    which visits run: changing any of them changes the simulation (or
    the set of simulations), so two campaigns agree bit-for-bit iff
    their ``SimConfig``s agree.  Pair with a :class:`TelemetryConfig`
    via :meth:`bundle` (or ``CampaignConfig.from_groups``) to obtain a
    full campaign configuration.
    """

    #: Visits per page per mode; the last one is recorded (paper: 2).
    visits_per_page: int = 2
    #: Probes per vantage point (paper: 3).
    probes_per_vantage: int = 1
    #: Limit to the first N vantage points (None = all three).
    max_vantage_points: int | None = 1
    #: netem loss imposed at every probe (the Fig. 9 knob).
    loss_rate: float = 0.0
    #: Probe access-link rate.
    rate_mbps: float | None = 50.0
    #: Pre-seed edge caches with popular objects before measuring.
    warm_popular: bool = True
    #: Base seed; probes derive their own streams from it.
    seed: int = 0
    #: Transport-level configuration shared by all probes.
    transport_config: TransportConfig = field(default_factory=TransportConfig)
    #: Disable TLS session tickets everywhere (ablation).
    use_session_tickets: bool = True
    #: Scripted fault profile applied at every probe.
    fault_profile: FaultProfile | None = None
    #: Proxy hop on every probe↔host path (``None`` = direct paths).
    proxy: ProxyConfig | None = None
    #: Multi-tier cache chain on every edge (``None`` = flat LRU,
    #: bit-identical to pre-hierarchy builds).
    cache_hierarchy: "HierarchyConfig | None" = None
    #: Compression/format negotiation (``None`` = encoding-oblivious
    #: serving, bit-identical to pre-compression builds).
    compression: "CompressionConfig | None" = None

    def bundle(self, telemetry: "TelemetryConfig | None" = None) -> "CampaignConfig":
        """Combine with a telemetry group into a full campaign config."""
        return CampaignConfig.from_groups(self, telemetry)


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything observe-only: instrumentation that never changes results.

    Each knob here carries the same guarantee as :mod:`repro.obs` —
    toggling it leaves every simulated timing, HAR and counter-relevant
    outcome bit-identical.  (Note ``collect_counters``/``trace``/
    ``strict`` *do* participate in store content keys for historical
    reasons — the stored documents carry the collected telemetry — so
    flipping them changes cache hits, never results.)
    """

    #: Collect a per-visit counter registry (handshakes, 0-RTT, HoL).
    collect_counters: bool = False
    #: Attach a qlog-style event tracer to every connection.
    trace: bool = False
    #: Run every visit under the :mod:`repro.check` invariant checker.
    strict: bool = False
    #: Sim-time metrics sampling interval (ms); ``None`` disables.
    metrics_interval_ms: float | None = None
    #: Ring-buffer capacity per metrics sampler.
    metrics_max_samples: int = 512
    #: Record hierarchical spans (visit → phase → transfer) per visit.
    spans: bool = False
    #: Enable event-loop callback profiling on every probe.
    profile_loop: bool = False
    #: Emit live progress heartbeats to stderr while the campaign runs.
    progress: bool = False


#: Flat CampaignConfig fields that belong to each group (the facade's
#: decomposition map; store keys keep reading the flat names).
SIM_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(SimConfig))
TELEMETRY_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(TelemetryConfig))


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs — a facade over :class:`SimConfig` + :class:`TelemetryConfig`.

    .. deprecated::
        New code should compose the two frozen groups and pass them to
        ``execute(CampaignPlan(...))``::

            plan = CampaignPlan(universe, sim=SimConfig(loss_rate=0.01),
                                telemetry=TelemetryConfig(collect_counters=True))

        The flat dataclass stays fully functional — ``dataclasses.replace``
        on flat fields, store keys (which read the flat attributes) and
        manifests are unchanged — so existing configs keep working
        verbatim.  Use :attr:`sim` / :attr:`telemetry` to decompose and
        :meth:`from_groups` / :meth:`from_flat` to construct.
    """

    #: Visits per page per mode; the last one is recorded (paper: 2).
    visits_per_page: int = 2
    #: Probes per vantage point (paper: 3). The default of 1 keeps the
    #: standard campaign tractable; analyses aggregate across probes.
    probes_per_vantage: int = 1
    #: Limit to the first N vantage points (None = all three).
    max_vantage_points: int | None = 1
    #: netem loss imposed at every probe (the Fig. 9 knob).
    loss_rate: float = 0.0
    #: Probe access-link rate.
    rate_mbps: float | None = 50.0
    #: Pre-seed edge caches with popular objects before measuring.
    warm_popular: bool = True
    #: Base seed; probes derive their own streams from it.
    seed: int = 0
    #: Transport-level configuration shared by all probes.
    transport_config: TransportConfig = field(default_factory=TransportConfig)
    #: Disable TLS session tickets everywhere (ablation).
    use_session_tickets: bool = True
    #: Collect a per-visit counter registry (handshakes, 0-RTT, HoL,
    #: packets).  Purely observational: results are bit-identical on/off.
    collect_counters: bool = False
    #: Attach a qlog-style event tracer to every connection and carry
    #: the per-visit traces in the results (implies heavier visits).
    trace: bool = False
    #: Scripted fault profile applied at every probe (``None`` keeps
    #: the fault machinery dormant; results are then bit-identical to
    #: fault-free builds).
    fault_profile: FaultProfile | None = None
    #: Run every visit under the :mod:`repro.check` invariant checker;
    #: the first violation raises.  Observe-only: results with strict
    #: on are identical to strict off.
    strict: bool = False
    #: Sim-time metrics sampling interval (ms) for the
    #: :mod:`repro.obs.metrics` samplers; ``None`` disables sampling.
    #: Observe-only and excluded from store content keys.
    metrics_interval_ms: float | None = None
    #: Ring-buffer capacity per metrics sampler.
    metrics_max_samples: int = 512
    #: Record hierarchical spans (visit → phase → transfer) per visit.
    #: Observe-only and excluded from store content keys.
    spans: bool = False
    #: Enable event-loop callback profiling on every probe and carry
    #: the per-visit profiles in the outcomes (wall-clock diagnostics;
    #: stripped before store writes).
    profile_loop: bool = False
    #: Emit live progress heartbeats to stderr while the campaign runs
    #: and record a progress summary on the result.  Wall-clock only;
    #: never affects results or store keys.
    progress: bool = False
    #: Proxy hop on every probe↔host path (``None`` = direct paths).
    #: Result-affecting: part of the store content key.
    proxy: ProxyConfig | None = None
    #: Multi-tier cache chain on every edge (``None`` = flat LRU).
    #: Result-affecting: part of the store content key (schema v3).
    cache_hierarchy: "HierarchyConfig | None" = None
    #: Compression/format negotiation (``None`` = encoding-oblivious).
    #: Result-affecting: part of the store content key (schema v3).
    compression: "CompressionConfig | None" = None

    # -- group facade --------------------------------------------------

    @property
    def sim(self) -> SimConfig:
        """The simulation-shaping knobs as a :class:`SimConfig` group."""
        return SimConfig(**{name: getattr(self, name) for name in SIM_FIELDS})

    @property
    def telemetry(self) -> TelemetryConfig:
        """The observe-only knobs as a :class:`TelemetryConfig` group."""
        return TelemetryConfig(
            **{name: getattr(self, name) for name in TELEMETRY_FIELDS}
        )

    @classmethod
    def from_groups(
        cls,
        sim: SimConfig | None = None,
        telemetry: TelemetryConfig | None = None,
    ) -> "CampaignConfig":
        """Compose the two frozen groups into a flat config."""
        sim = sim or SimConfig()
        telemetry = telemetry or TelemetryConfig()
        knobs = {name: getattr(sim, name) for name in SIM_FIELDS}
        knobs.update({name: getattr(telemetry, name) for name in TELEMETRY_FIELDS})
        return cls(**knobs)

    @classmethod
    def from_flat(cls, **knobs) -> "CampaignConfig":
        """Shim for callers holding a flat knob dict (manifests, CLIs)."""
        return cls(**knobs)


@dataclass
class PairedVisit:
    """One page measured under both protocol modes by one probe."""

    page: Webpage
    probe_name: str
    h2: PageVisit
    h3: PageVisit
    #: Event-loop callback profile for this visit's simulation
    #: (``config.profile_loop``): ``{qualname: {"count", "total_ms"}}``.
    #: Wall-clock — diagnostic only, never stored or compared.
    loop_profile: dict | None = None

    @property
    def plt_reduction_ms(self) -> float:
        """The paper's PLT_reduction = PLT_H2 − PLT_H3 (positive ⇒ H3 wins)."""
        return self.h2.plt_ms - self.h3.plt_ms


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    universe: WebUniverse
    config: CampaignConfig
    paired_visits: list[PairedVisit]
    #: Visits that could not be measured at all (fault injection only);
    #: a failed visit is recorded here instead of poisoning the run.
    failures: list[VisitFailure] = field(default_factory=list)
    #: Store hit/miss/resume accounting when the campaign ran against a
    #: :class:`~repro.store.ResultStore` (``None`` otherwise).  Kept off
    #: the counter registry so counter totals stay bit-identical between
    #: warm-store and fresh runs.
    store_stats: StoreStats | None = None
    #: Constant-memory fold of every outcome, populated by the
    #: streaming executor.  In ``summary_only`` mode this is the *only*
    #: record of the measurements (``paired_visits`` stays empty); in
    #: materialized mode it equals ``CampaignSummary.from_result(self)``
    #: field for field.
    summary: CampaignSummary | None = None
    #: Streaming-executor diagnostics (in-flight high-water, reorder
    #: backlog, unit counts).  Wall-clock/scheduling only — never part
    #: of results.
    exec_stats: dict | None = None
    #: Merged event-loop callback profile (``config.profile_loop``):
    #: ``{qualname: {"count", "total_ms"}}`` in canonical visit order,
    #: sorted by cumulative time.  Wall-clock — diagnostic only.
    loop_profile: dict | None = None
    #: Live-progress summary (``config.progress``): visits/s, events/s,
    #: peak RSS, wall-clock.  Diagnostic only.
    progress: dict | None = None

    def degraded_visits(self) -> list[PairedVisit]:
        """Paired visits where either mode was degraded by faults."""
        return [
            pv
            for pv in self.paired_visits
            if pv.h2.status != "ok" or pv.h3.status != "ok"
        ]

    def visits(self, mode: str) -> list[PageVisit]:
        """All recorded visits for one protocol mode."""
        if mode == H2_ONLY:
            return [pv.h2 for pv in self.paired_visits]
        if mode == H3_ENABLED:
            return [pv.h3 for pv in self.paired_visits]
        raise ValueError(f"unknown mode {mode!r}")

    def entries(self, mode: str):
        """Flat iterator over HAR entries for one mode."""
        for visit in self.visits(mode):
            yield from visit.entries

    @property
    def pages_measured(self) -> int:
        if not self.paired_visits and self.summary is not None:
            return self.summary.pages_measured
        return len({pv.page.url for pv in self.paired_visits})

    def counter_totals(self):
        """Merged counter registry across every recorded visit.

        Visits are merged in canonical (vantage, probe, page) order —
        the order ``paired_visits`` already has regardless of worker
        count — so the totals are deterministic and identical for any
        parallelism.
        """
        from repro.obs.counters import CounterRegistry

        totals = CounterRegistry()
        for paired in self.paired_visits:
            for visit in (paired.h2, paired.h3):
                if visit.counters:
                    totals.merge_dict(visit.counters)
        return totals

    def trace_events(self):
        """Flat iterator over trace events, tagged with visit context."""
        for paired in self.paired_visits:
            for mode, visit in (("h2-only", paired.h2), ("h3-enabled", paired.h3)):
                if not visit.trace:
                    continue
                for event in visit.trace:
                    yield {
                        "page": paired.page.url,
                        "probe": paired.probe_name,
                        "mode": mode,
                        **event,
                    }

    def metrics_events(self):
        """Flat iterator over metrics samples, tagged with visit context.

        Canonical (vantage, probe, page) order, the same discipline as
        :meth:`counter_totals` — deterministic for any worker count.
        """
        for paired in self.paired_visits:
            for mode, visit in (("h2-only", paired.h2), ("h3-enabled", paired.h3)):
                if not visit.metrics:
                    continue
                for record in visit.metrics:
                    yield {
                        "page": paired.page.url,
                        "probe": paired.probe_name,
                        "mode": mode,
                        **record,
                    }

    def span_records(self):
        """Flat iterator over spans, tagged with visit context.

        Span ids restart per visit; the (page, probe, mode) tags make
        each visit's id space unambiguous.  Sim-time fields are
        deterministic; ``wall_ms`` is host-dependent by nature.
        """
        for paired in self.paired_visits:
            for mode, visit in (("h2-only", paired.h2), ("h3-enabled", paired.h3)):
                if not visit.spans:
                    continue
                for span in visit.spans:
                    yield {
                        "page": paired.page.url,
                        "probe": paired.probe_name,
                        "mode": mode,
                        **span,
                    }


class Campaign:
    """Runs the full measurement over a universe."""

    def __init__(
        self,
        universe: WebUniverse,
        config: CampaignConfig | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
    ) -> None:
        self.universe = universe
        self.config = config or CampaignConfig()
        vps = vantage_points if vantage_points is not None else default_vantage_points()
        if self.config.max_vantage_points is not None:
            vps = vps[: self.config.max_vantage_points]
        self.vantage_points = vps

    def run(
        self,
        pages: tuple[Webpage, ...] | None = None,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
        store=None,
        run_name: str | None = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Measure ``pages`` (default: the whole universe) everywhere.

        Every ``(vantage, probe, page)`` paired visit runs in its own
        isolated simulation with a seed derived from that triple, each
        page under H2 then H3 (separate browser instances), with edge
        caches optionally pre-warmed.  ``workers > 1`` shards the visits
        across a process pool; results are identical for any worker
        count (see :mod:`repro.measurement.parallel`).

        With a :class:`~repro.store.ResultStore` attached, visits whose
        content-addressed key is already stored are replayed instead of
        re-simulated (bit-identically), fresh visits are journaled as
        they complete, and the finished visit list is recorded under
        ``run_name``.  ``resume=True`` continues an interrupted run of
        the same name, executing only the missing visits.

        .. deprecated::
            This is now a facade over the streaming executor; prefer
            ``execute(CampaignPlan(universe, sim=..., telemetry=...))``
            from :mod:`repro.measurement.executor`.
        """
        import warnings

        from repro.measurement.executor import CampaignPlan, execute

        warnings.warn(
            "Campaign.run() is deprecated; use "
            "execute(CampaignPlan(...)) from repro.measurement.executor",
            DeprecationWarning,
            stacklevel=2,
        )
        return execute(
            CampaignPlan(
                universe=self.universe,
                sim=self.config,
                pages=pages,
                vantage_points=self.vantage_points,
                workers=workers,
                chunk_size=chunk_size,
                start_method=start_method,
                store=store,
                run_name=run_name,
                resume=resume,
            )
        )
