"""The streaming campaign executor and the unified ``execute`` entry point.

This module is the one engine behind every way of running
measurements:

* ``execute(CampaignPlan)`` — one campaign, streaming.
* ``execute(MultiCampaignPlan)`` — several configs over one shared
  worker pool (the Fig. 9 loss sweep, the fallback sweep).
* ``execute(ConsecutivePlan)`` — ordered consecutive-visit walks
  (Fig. 8 / Table III).

The legacy surfaces (``Campaign.run``, ``run_campaigns``,
``ParallelCampaign``, ``ConsecutiveVisitRunner.run``) all delegate
here with a ``DeprecationWarning``.

Streaming
=========

The old runner materialized every slot, every work unit and every
``PairedVisit`` before merging — peak RSS was O(visits).  The executor
instead *streams*:

1. A generator enumerates ``(config, vantage, probe, page)`` slots in
   canonical order, assigning each a global sequence number.  Nothing
   is materialized; with a lazy universe the pages themselves are
   generated on demand.
2. Store lookups happen per slot as it is enumerated; hits become
   immediately-available outcomes, misses accumulate into bounded work
   units that feed the pool through a **bounded in-flight window**
   (``max_in_flight`` units submitted-but-unconsumed; the enumerator
   blocks when the window is full — that is the backpressure).
3. Outcomes are folded into a :class:`~repro.measurement.summary.
   CampaignSummary` **in canonical slot order** (a small reorder
   buffer bridges completion order to slot order; float folds are
   order-sensitive, canonical order is what makes workers=1 == N).
4. Store write-through is batched: entries, journal rows and the
   ordered ``run_visits`` list commit one batch at a time
   (:meth:`~repro.store.store.ResultStore.put_batch`), and a
   ``finally`` flush preserves per-visit durability when an
   interruption propagates — mid-stream resume picks up from the
   journal exactly as before.

With ``summary_only=True`` no ``PairedVisit`` is retained at all:
``CampaignResult.paired_visits`` stays empty and analyses consume
``CampaignResult.summary``.  Peak RSS is then bounded by the window,
not the page count — the ``bench_campaign.py --sections memory``
section measures exactly that.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from functools import singledispatch
from typing import Hashable

from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.measurement import parallel as parallel_mod
from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    PairedVisit,
    SimConfig,
    TelemetryConfig,
)
from repro.measurement.consecutive import ConsecutiveRun, ConsecutiveVisitRunner
from repro.measurement.outcome import VisitFailure, VisitOutcome
from repro.measurement.summary import CampaignSummary
from repro.measurement.vantage import VantagePoint, default_vantage_points
from repro.store.stats import StoreStats
from repro.web.page import Webpage

#: Cap on automatically chosen work-unit size.  The legacy default
#: (``n_pages / (workers * 4)``) is unbounded in the page count, which
#: would let a 100k-page campaign put thousands of visits in flight;
#: explicit ``chunk_size`` values are honored as-is.
MAX_AUTO_CHUNK = 64

#: Default store write-through batch (visits per commit).
DEFAULT_STORE_BATCH = 16


def _as_campaign_config(
    sim: "SimConfig | CampaignConfig",
    telemetry: TelemetryConfig | None,
) -> CampaignConfig:
    if isinstance(sim, CampaignConfig):
        if telemetry is not None:
            return CampaignConfig.from_groups(sim.sim, telemetry)
        return sim
    return CampaignConfig.from_groups(sim, telemetry)


@dataclass(frozen=True)
class CampaignPlan:
    """Everything needed to run one campaign, declaratively.

    ``sim`` may be a composed :class:`SimConfig` (paired with
    ``telemetry``) or a legacy flat :class:`CampaignConfig`.  Pages
    default to the whole universe; ``page_count`` selects the first N
    pages without materializing them (the lazy-universe path).
    """

    universe: object
    sim: "SimConfig | CampaignConfig" = field(default_factory=SimConfig)
    telemetry: TelemetryConfig | None = None
    pages: tuple[Webpage, ...] | None = None
    page_count: int | None = None
    vantage_points: tuple[VantagePoint, ...] | None = None
    workers: int = 1
    chunk_size: int | None = None
    start_method: str | None = None
    store: object | None = None
    run_name: str | None = None
    resume: bool = False
    #: Keep only the folded :class:`CampaignSummary`; ``paired_visits``
    #: stays empty and peak RSS is bounded by the in-flight window.
    summary_only: bool = False
    #: Maximum work units submitted-but-unconsumed (default
    #: ``max(2, 2 * workers)``).
    max_in_flight: int | None = None
    #: Visits per store write-through commit.
    store_batch: int = DEFAULT_STORE_BATCH

    @property
    def config(self) -> CampaignConfig:
        return _as_campaign_config(self.sim, self.telemetry)


@dataclass(frozen=True)
class MultiCampaignPlan:
    """Several configs drained over one shared pool (sweeps)."""

    universe: object
    configs: dict[Hashable, CampaignConfig] = field(default_factory=dict)
    pages: tuple[Webpage, ...] | None = None
    page_count: int | None = None
    vantage_points: tuple[VantagePoint, ...] | None = None
    workers: int = 1
    chunk_size: int | None = None
    start_method: str | None = None
    store: object | None = None
    run_prefix: str | None = None
    resume: bool = False
    summary_only: bool = False
    max_in_flight: int | None = None
    store_batch: int = DEFAULT_STORE_BATCH


@dataclass(frozen=True)
class ConsecutivePlan:
    """An ordered consecutive-visit walk (tickets persist across pages)."""

    universe: object
    pages: tuple[Webpage, ...] = ()
    modes: tuple[str, ...] = (H2_ONLY, H3_ENABLED)
    net_profile: object | None = None
    seed: int = 0
    transport_config: object | None = None
    use_session_tickets: bool = True
    warm_edges_first: bool = True
    strict: bool = False
    store: object | None = None
    run_name: str | None = None


@singledispatch
def execute(plan):
    """Run a measurement plan; the single entry point for all runners."""
    raise TypeError(f"execute() does not understand plan type {type(plan)!r}")


@execute.register
def _execute_campaign(plan: CampaignPlan) -> CampaignResult:
    results = _stream_campaigns(
        plan.universe,
        {"campaign": plan.config},
        pages=plan.pages,
        page_count=plan.page_count,
        vantage_points=plan.vantage_points,
        workers=plan.workers,
        chunk_size=plan.chunk_size,
        start_method=plan.start_method,
        store=plan.store,
        run_prefix=plan.run_name,
        resume=plan.resume,
        summary_only=plan.summary_only,
        max_in_flight=plan.max_in_flight,
        store_batch=plan.store_batch,
    )
    return results["campaign"]


@execute.register
def _execute_multi(plan: MultiCampaignPlan) -> dict:
    return _stream_campaigns(
        plan.universe,
        plan.configs,
        pages=plan.pages,
        page_count=plan.page_count,
        vantage_points=plan.vantage_points,
        workers=plan.workers,
        chunk_size=plan.chunk_size,
        start_method=plan.start_method,
        store=plan.store,
        run_prefix=plan.run_prefix,
        resume=plan.resume,
        summary_only=plan.summary_only,
        max_in_flight=plan.max_in_flight,
        store_batch=plan.store_batch,
    )


@execute.register
def _execute_consecutive(plan: ConsecutivePlan):
    runner = ConsecutiveVisitRunner(
        plan.universe,
        net_profile=plan.net_profile,
        seed=plan.seed,
        transport_config=plan.transport_config,
        use_session_tickets=plan.use_session_tickets,
        warm_edges_first=plan.warm_edges_first,
        strict=plan.strict,
        store=plan.store,
        run_name=plan.run_name,
    )
    runs = tuple(runner._run_mode(plan.pages, mode) for mode in plan.modes)
    return runs[0] if len(runs) == 1 else runs


# ----------------------------------------------------------------------
# Page sources
# ----------------------------------------------------------------------


class PageSource:
    """Resolves page indices to pages, materialized or lazily.

    Picklable; installed into workers in place of the old page tuple
    (``_run_unit`` only ever does ``pages[index]``).  With an explicit
    page tuple this is exactly the legacy behavior; with ``pages=None``
    indices resolve through ``universe.page_at`` so a lazy universe
    never materializes its page list on either side of the process
    boundary.
    """

    def __init__(self, universe, pages=None, count=None):
        self._universe = universe
        self._pages = tuple(pages) if pages is not None else None
        if self._pages is not None:
            self._count = len(self._pages)
        elif count is not None:
            self._count = int(count)
        else:
            self._count = universe.page_count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> Webpage:
        if self._pages is not None:
            return self._pages[index]
        return self._universe.page_at(index)


# ----------------------------------------------------------------------
# Store write-through batching
# ----------------------------------------------------------------------


class _StoreBatcher:
    """Groups store writes into one transaction per ``batch`` visits.

    Entries, journal rows and ordered ``run_visits`` rows all commit
    together, so a flushed batch is durable as a unit; the executor's
    ``finally`` flush keeps interrupt semantics per-visit for the
    serial path (everything folded before the exception is flushed).
    """

    def __init__(self, store, batch: int) -> None:
        self.store = store
        self.batch = max(1, batch)
        self._entries: list[dict] = []
        self._journal: list[tuple[str, str, str]] = []
        self._run_visits: list[tuple[str, int, str]] = []
        self._queued: set[str] = set()
        self._pending_visits = 0

    def add_fresh(
        self,
        visit_key: str,
        document: dict,
        *,
        config_hash: str,
        page_url: str | None,
        probe: str | None,
        run_name: str | None,
    ) -> bool:
        """Queue one fresh outcome; returns True if it will write."""
        will_write = (
            visit_key not in self._queued
            and not self.store.contains(visit_key)
        )
        if will_write:
            self._queued.add(visit_key)
            self._entries.append(
                {
                    "key": visit_key,
                    "document": document,
                    "kind": "paired",
                    "config_hash": config_hash,
                    "page_url": page_url,
                    "probe": probe,
                }
            )
        if run_name is not None:
            self._journal.append((run_name, visit_key, "fresh"))
        return will_write

    def add_run_visit(self, run_name: str, position: int, visit_key: str) -> None:
        self._run_visits.append((run_name, position, visit_key))

    def visit_done(self) -> None:
        """Count one folded visit; flush when the batch is full."""
        self._pending_visits += 1
        if self._pending_visits >= self.batch:
            self.flush()

    def flush(self) -> None:
        if not (self._entries or self._journal or self._run_visits):
            self._pending_visits = 0
            return
        self.store.put_batch(
            self._entries, journal=self._journal, run_visits=self._run_visits
        )
        self._entries = []
        self._journal = []
        self._run_visits = []
        self._queued = set()
        self._pending_visits = 0


# ----------------------------------------------------------------------
# The streaming engine
# ----------------------------------------------------------------------


class _KeyState:
    """Per-config accumulation state during one streaming run."""

    __slots__ = (
        "config", "vps", "summary", "paired", "failures", "stats",
        "run_name", "config_hash", "config_part", "profile_merge",
        "prior", "position", "n_slots",
    )

    def __init__(self, config: CampaignConfig, vps) -> None:
        self.config = config
        self.vps = vps
        self.summary = CampaignSummary()
        self.paired: list[PairedVisit] = []
        self.failures: list[VisitFailure] = []
        self.stats: StoreStats | None = None
        self.run_name: str | None = None
        self.config_hash: str = ""
        self.config_part: dict | None = None
        self.profile_merge: dict[str, list] = {}
        self.prior: set[str] = set()
        self.position = 0
        self.n_slots = 0


def _stream_campaigns(
    universe,
    configs: dict[Hashable, CampaignConfig],
    *,
    pages=None,
    page_count=None,
    vantage_points=None,
    workers: int = 1,
    chunk_size: int | None = None,
    start_method: str | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
    summary_only: bool = False,
    max_in_flight: int | None = None,
    store_batch: int = DEFAULT_STORE_BATCH,
) -> dict[Hashable, CampaignResult]:
    """The engine: enumerate → (replay | simulate) → fold, streaming."""
    source = PageSource(universe, pages=pages, count=page_count)
    n_pages = len(source)
    all_vps = tuple(
        vantage_points if vantage_points is not None else default_vantage_points()
    )

    # -- per-config setup ---------------------------------------------
    states: dict[Hashable, _KeyState] = {}
    for key, config in configs.items():
        vps = all_vps
        if config.max_vantage_points is not None:
            vps = vps[: config.max_vantage_points]
        state = states[key] = _KeyState(config, vps)
        state.n_slots = len(vps) * config.probes_per_vantage * n_pages
        if store is not None:
            from repro.store.keys import campaign_config_hash, visit_config_part

            state.stats = StoreStats()
            state.config_part = visit_config_part(config)
            state.config_hash = campaign_config_hash(config)
            state.run_name = parallel_mod._run_name_for(
                run_prefix, key, multi=len(configs) > 1
            )
            if state.run_name is not None:
                state.prior = store.begin_run(
                    state.run_name, config_hash=state.config_hash, resume=resume
                )

    if store is not None:
        from repro.store.keys import page_part, paired_visit_key

        # Page key material is config-independent; cache it with a
        # bounded LRU so the streaming path stays O(window), not O(pages).
        from collections import OrderedDict

        page_materials: OrderedDict[int, dict] = OrderedDict()
        material_cap = max(256, 4 * MAX_AUTO_CHUNK)

        def material_for(page_index: int) -> dict:
            material = page_materials.get(page_index)
            if material is None:
                material = page_part(source[page_index], universe.hosts)
                page_materials[page_index] = material
                if len(page_materials) > material_cap:
                    page_materials.popitem(last=False)
            else:
                page_materials.move_to_end(page_index)
            return material

    batcher = _StoreBatcher(store, store_batch) if store is not None else None

    # -- progress ------------------------------------------------------
    progress = None
    if any(config.progress for config in configs.values()):
        from repro.obs.progress import ProgressReporter

        progress = ProgressReporter(
            total=sum(state.n_slots for state in states.values()),
            workers=max(1, workers),
        )

    # -- chunking and windowing ----------------------------------------
    if chunk_size is not None:
        per_chunk = chunk_size
    else:
        per_chunk = min(
            parallel_mod._default_chunk_size(n_pages, workers), MAX_AUTO_CHUNK
        )
    per_chunk = max(1, per_chunk)
    pooled = workers > 1
    max_units = max_in_flight if max_in_flight is not None else max(2, 2 * workers)
    ready_cap = max(256, 2 * max_units * per_chunk)

    exec_stats = {
        "mode": "pool" if pooled else "serial",
        "workers": workers,
        "chunk_size": per_chunk,
        "max_in_flight": max_units,
        "max_in_flight_seen": 0,
        "max_ready_backlog": 0,
        "units_submitted": 0,
        "fresh_visits": 0,
        "replayed_visits": 0,
    }

    #: seq -> (slot, outcome); the reorder buffer bridging completion
    #: order back to canonical fold order.
    ready: dict[int, tuple[tuple, VisitOutcome]] = {}
    fold_frontier = 0
    in_flight: deque = deque()  # (seqs, page_indices, slot_group, async_result)

    def _fold_one(slot, outcome: VisitOutcome) -> None:
        key, vp_index, probe_index, page_index = slot
        state = states[key]
        probe_name = f"{state.vps[vp_index].name}-{probe_index}"
        state.summary.add_outcome(outcome, probe_name, universe)
        if outcome.source == "replay":
            exec_stats["replayed_visits"] += 1
            if progress is not None:
                progress.add_replayed(1)
        else:
            exec_stats["fresh_visits"] += 1
            if progress is not None:
                progress.add_outcome(outcome)
        if outcome.status == "failed":
            state.failures.append(
                VisitFailure(
                    page_url=source[outcome.page_index].url,
                    probe_name=probe_name,
                    error=outcome.error or "unknown",
                )
            )
        elif not summary_only:
            state.paired.append(
                PairedVisit(
                    page=source[outcome.page_index],
                    probe_name=probe_name,
                    h2=outcome.h2,
                    h3=outcome.h3,
                    loop_profile=outcome.profile,
                )
            )
        if state.config.profile_loop and outcome.profile:
            for name, entry in outcome.profile.items():
                merged = state.profile_merge.get(name)
                if merged is None:
                    state.profile_merge[name] = [
                        entry["count"], entry["total_ms"]
                    ]
                else:
                    merged[0] += entry["count"]
                    merged[1] += entry["total_ms"]
        if batcher is not None:
            visit_key = _slot_keys.pop(slot)
            if outcome.source == "fresh":
                document = outcome.to_dict()
                # The loop profile is wall-clock noise: strip it so
                # stored documents stay host-independent.
                document.pop("profile", None)
                wrote = batcher.add_fresh(
                    visit_key,
                    document,
                    config_hash=state.config_hash,
                    page_url=source[page_index].url,
                    probe=probe_name,
                    run_name=state.run_name,
                )
                if wrote:
                    state.stats.writes += 1
            if state.run_name is not None:
                batcher.add_run_visit(state.run_name, state.position, visit_key)
            state.position += 1
            batcher.visit_done()

    def _fold_ready() -> None:
        nonlocal fold_frontier
        while fold_frontier in ready:
            slot, outcome = ready.pop(fold_frontier)
            _fold_one(slot, outcome)
            fold_frontier += 1

    #: store key per pending slot (popped at fold time; bounded by the
    #: window plus the reorder backlog).
    _slot_keys: dict[tuple, str] = {}

    def _drain_one() -> None:
        """Block on the oldest in-flight unit and stage its outcomes."""
        seqs, page_indices, (key, vp_index, probe_index), async_result = (
            in_flight.popleft()
        )
        documents = async_result.get()
        for seq, page_index, document in zip(seqs, page_indices, documents):
            outcome = VisitOutcome.from_dict(document)
            ready[seq] = ((key, vp_index, probe_index, page_index), outcome)
        exec_stats["max_ready_backlog"] = max(
            exec_stats["max_ready_backlog"], len(ready)
        )

    pool = None
    interrupted = False
    try:
        if pooled:
            ctx = multiprocessing.get_context(start_method)
            pool = ctx.Pool(
                processes=workers,
                initializer=parallel_mod._init_worker,
                initargs=(universe, all_vps, configs, source),
            )

        open_group: tuple | None = None  # (key, vp_index, probe_index)
        open_indices: list[int] = []
        open_seqs: list[int] = []

        def _flush_unit() -> None:
            """Submit the accumulating (possibly partial) unit to the pool."""
            nonlocal open_indices, open_seqs
            if not open_indices:
                return
            key, vp_index, probe_index = open_group
            exec_stats["units_submitted"] += 1
            unit = (key, vp_index, probe_index, tuple(open_indices))
            in_flight.append(
                (
                    tuple(open_seqs),
                    tuple(open_indices),
                    open_group,
                    pool.apply_async(parallel_mod._run_unit, (unit,)),
                )
            )
            exec_stats["max_in_flight_seen"] = max(
                exec_stats["max_in_flight_seen"], len(in_flight)
            )
            open_indices = []
            open_seqs = []

        seq = 0
        for key, state in states.items():
            config = state.config
            for vp_index in range(len(state.vps)):
                for probe_index in range(config.probes_per_vantage):
                    group = (key, vp_index, probe_index)
                    if open_group != group:
                        if pool is not None:
                            _flush_unit()
                        open_group = group
                    for page_index in range(n_pages):
                        slot = (key, vp_index, probe_index, page_index)
                        staged = False
                        if store is not None:
                            visit_key = paired_visit_key(
                                state.config_part,
                                material_for(page_index),
                                all_vps[vp_index],
                                probe_index,
                                parallel_mod.derive_seed(
                                    config.seed, vp_index, probe_index, page_index
                                ),
                            )
                            _slot_keys[slot] = visit_key
                            document = store.get(visit_key)
                            if document is not None:
                                outcome = VisitOutcome.from_dict(document)
                                outcome.source = "replay"
                                ready[seq] = (slot, outcome)
                                state.stats.hits += 1
                                if visit_key in state.prior:
                                    state.stats.resumed += 1
                                    store.stats.resumed += 1
                                staged = True
                            else:
                                state.stats.misses += 1
                        if not staged:
                            if pool is None:
                                # Serial: simulate right here, one visit
                                # at a time — folding (and the store
                                # write-through) keeps the legacy
                                # per-visit journal granularity.
                                exec_stats["units_submitted"] += 1
                                outcome = parallel_mod.measure_visit_outcome(
                                    universe,
                                    all_vps[vp_index],
                                    vp_index,
                                    probe_index,
                                    config,
                                    source[page_index],
                                    page_index,
                                )
                                ready[seq] = (slot, outcome)
                            else:
                                open_indices.append(page_index)
                                open_seqs.append(seq)
                                if len(open_indices) >= per_chunk:
                                    _flush_unit()
                        seq += 1
                        if pool is not None:
                            # Backpressure: bound the submitted window
                            # and the reorder backlog.  A backlog at cap
                            # means the fold frontier is stuck behind
                            # the open (partial) unit — flush it so the
                            # frontier can advance, then drain.
                            if len(ready) >= ready_cap:
                                _flush_unit()
                            while len(in_flight) >= max_units or (
                                in_flight and len(ready) >= ready_cap
                            ):
                                _drain_one()
                        exec_stats["max_ready_backlog"] = max(
                            exec_stats["max_ready_backlog"], len(ready)
                        )
                        _fold_ready()
        if pool is not None:
            _flush_unit()
        while in_flight:
            _drain_one()
            _fold_ready()
        _fold_ready()
    except (KeyboardInterrupt, Exception):
        interrupted = True
        raise
    finally:
        if pool is not None:
            if interrupted:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        # Durability on interrupt: everything folded so far commits, so
        # the journal reflects every completed visit (per-visit in the
        # serial path) and a --resume run recovers it.
        if batcher is not None:
            batcher.flush()

    progress_summary = progress.finish() if progress is not None else None

    # -- result assembly ----------------------------------------------
    results: dict[Hashable, CampaignResult] = {}
    for key, state in states.items():
        result = CampaignResult(
            universe,
            state.config,
            state.paired,
            failures=state.failures,
            summary=state.summary,
            exec_stats=dict(exec_stats),
        )
        if state.config.profile_loop:
            result.loop_profile = {
                name: {"count": count, "total_ms": total_ms}
                for name, (count, total_ms) in sorted(
                    state.profile_merge.items(), key=lambda item: -item[1][1]
                )
            }
        if state.config.progress:
            result.progress = progress_summary
        if store is not None:
            result.store_stats = state.stats
            if state.run_name is not None:
                store.mark_run_complete(state.run_name, state.n_slots)
        results[key] = result
    return results


__all__ = [
    "CampaignPlan",
    "ConsecutivePlan",
    "ConsecutiveRun",
    "MultiCampaignPlan",
    "PageSource",
    "execute",
]
