"""A probe: one measurement machine with its own clock and browsers.

Each probe owns an isolated event loop (its simulation is independent
of other probes, exactly as separate CloudLab machines are), a server
farm view of the universe, and one browser instance per protocol mode
(the paper uses separate Chrome user-data directories to keep H2 and
H3 state apart).
"""

from __future__ import annotations

import random

from repro.browser.browser import (
    H2_ONLY,
    H3_ENABLED,
    Browser,
    BrowserConfig,
    PageVisit,
)
from repro.events import EventLoop
from repro.faults import FaultInjector, FaultProfile
from repro.measurement.farm import ProbeNetProfile, ServerFarm
from repro.netsim.proxy import ProxyConfig
from repro.transport.config import TransportConfig
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


class Probe:
    """One probe machine, bound to a vantage point's network profile."""

    def __init__(
        self,
        name: str,
        universe: WebUniverse,
        net_profile: ProbeNetProfile | None = None,
        seed: int = 0,
        transport_config: TransportConfig | None = None,
        use_session_tickets: bool = True,
        obs=None,
        fault_profile: FaultProfile | None = None,
        check=None,
        proxy: ProxyConfig | None = None,
        cache_hierarchy=None,
        compression=None,
    ) -> None:
        self.name = name
        self.universe = universe
        self.loop = EventLoop()
        #: Optional :class:`repro.obs.ObsContext` shared by both
        #: browsers; each visit drains it into its own PageVisit.
        self.obs = obs
        #: Optional :class:`repro.check.CheckContext` (strict mode),
        #: shared by the loop and both browsers.
        self.check = check
        if check:
            self.loop.set_check(check)
        if obs is not None and obs.profile_loop:
            self.loop.enable_profiling()
        #: Optional fault injector, shared by both browsers so the H2
        #: and H3 lanes experience the same scripted faults.
        self.faults = (
            FaultInjector(fault_profile, self.loop, obs=obs)
            if fault_profile is not None
            else None
        )
        self.rng = random.Random(seed)
        self.farm = ServerFarm(
            self.loop,
            universe.hosts,
            net_profile,
            rng=random.Random(self.rng.getrandbits(64)),
            proxy=proxy,
            hierarchy=cache_hierarchy,
            compression=compression,
        )
        transport_config = transport_config or TransportConfig()
        self.browsers = {
            mode: Browser(
                self.loop,
                self.farm,
                BrowserConfig(
                    protocol_mode=mode,
                    transport_config=transport_config,
                    use_session_tickets=use_session_tickets,
                    compression=compression,
                ),
                rng=random.Random(self.rng.getrandbits(64)),
                obs=obs,
                faults=self.faults,
                check=check,
            )
            for mode in (H2_ONLY, H3_ENABLED)
        }

    def warm_edges(self, pages) -> None:
        """Seed edge caches with popular objects (long-lived content)."""
        self.farm.warm_caches(pages)

    def measure_page(
        self, page: Webpage, mode: str, visits: int = 2
    ) -> PageVisit:
        """Measure one page under ``mode``, paper-style.

        The page is visited ``visits`` times; the first visit warms the
        edge caches and the *last* visit is the measurement.  Between
        visits all connections are torn down (each visit uses a fresh
        pool) and browser state — HTTP cache is not modelled, session
        tickets and Alt-Svc are — is cleared, per Section III-B.
        """
        if visits < 1:
            raise ValueError("visits must be >= 1")
        browser = self.browsers[mode]
        result: PageVisit | None = None
        for _ in range(visits):
            browser.clear_session_state()
            result = browser.visit(page)
        assert result is not None
        return result

    def visit_once(self, page: Webpage, mode: str) -> PageVisit:
        """Single visit *without* clearing session state beforehand
        (the consecutive-visit primitive)."""
        return self.browsers[mode].visit(page)

    def clear_session_state(self) -> None:
        for browser in self.browsers.values():
            browser.clear_session_state()

    def average_traffic_kbps(self) -> float:
        """Mean traffic rate this probe has generated so far.

        The paper's ethics section reports 126.7 Kbps per nearby CDN
        server; this is the analogous probe-level figure for the
        simulated campaign (kilobits per second over simulated time).
        """
        if self.loop.now <= 0.0:
            return 0.0
        bits = self.farm.total_bytes_transferred() * 8
        return bits / self.loop.now  # bits per ms == kilobits per second

    def __repr__(self) -> str:
        return f"<Probe {self.name} t={self.loop.now:.0f}ms>"
