"""Consecutive-visit measurement (paper Section VI-D).

Pages are visited in a fixed order.  Between pages, connections are
terminated and the HTTP cache is cleared — but the browser's TLS
session-ticket store survives, so a connection to a CDN hostname
already seen on an *earlier page* can resume (H3: 0-RTT; H2: TCP round
trip + TLS early data).  This is the mechanism behind the paper's
Fig. 8 and the Table III case study.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.browser.browser import H2_ONLY, H3_ENABLED, PageVisit
from repro.measurement.farm import ProbeNetProfile
from repro.measurement.probe import Probe
from repro.transport.config import TransportConfig
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse

#: Serialization format of a stored consecutive walk.
WALK_FORMAT = "repro-h3cdn-walk/1"


@dataclass
class ConsecutiveRun:
    """Per-page visits of one ordered walk under one protocol mode."""

    mode: str
    visits: list[PageVisit]
    #: ``"fresh"`` or ``"replay"`` (served from a result store).
    source: str = "fresh"

    def resumed_connections(self) -> list[int]:
        """Per page: entries served on ticket-resumed connections."""
        return [v.har.resumed_connection_count() for v in self.visits]

    def to_dict(self) -> dict:
        """Store payload (``source`` is provenance, never serialized)."""
        return {
            "format": WALK_FORMAT,
            "mode": self.mode,
            "visits": [visit.to_dict() for visit in self.visits],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ConsecutiveRun":
        if document.get("format") != WALK_FORMAT:
            raise ValueError(
                f"unrecognized walk format: {document.get('format')!r}"
            )
        return cls(
            mode=document["mode"],
            visits=[PageVisit.from_dict(doc) for doc in document["visits"]],
        )


class ConsecutiveVisitRunner:
    """Walks an ordered page list with session state carried across pages."""

    def __init__(
        self,
        universe: WebUniverse,
        net_profile: ProbeNetProfile | None = None,
        seed: int = 0,
        transport_config: TransportConfig | None = None,
        use_session_tickets: bool = True,
        warm_edges_first: bool = True,
        strict: bool = False,
        store=None,
        run_name: str | None = None,
    ) -> None:
        self.universe = universe
        self.net_profile = net_profile
        self.seed = seed
        self.transport_config = transport_config
        self.use_session_tickets = use_session_tickets
        self.warm_edges_first = warm_edges_first
        self.strict = strict
        self.store = store
        self.run_name = run_name

    def _walk_key(self, pages, mode: str) -> str:
        """Content-addressed key for one whole walk under one mode.

        Session tickets carry state from page to page, so individual
        visits don't cache independently — the ordered walk is the unit.
        """
        from repro.store.keys import consecutive_key, page_part, transport_part

        config_material = {
            "net_profile": (
                dataclasses.asdict(self.net_profile)
                if self.net_profile is not None
                else None
            ),
            "seed": self.seed,
            "transport": (
                transport_part(self.transport_config)
                if self.transport_config is not None
                else None
            ),
            "use_session_tickets": self.use_session_tickets,
            "warm_edges_first": self.warm_edges_first,
            "strict": self.strict,
        }
        return consecutive_key(
            mode,
            [page_part(page, self.universe.hosts) for page in pages],
            config_material,
        )

    def _run_mode(
        self, pages: list[Webpage] | tuple[Webpage, ...], mode: str
    ) -> ConsecutiveRun:
        """Visit ``pages`` in order under ``mode``; tickets persist.

        A fresh probe (fresh clock, caches and ticket store) is built
        per run so that H2 and H3 walks are independent, mirroring the
        paper's separate browser instances.  With a store attached, a
        previously completed identical walk is replayed bit-identically
        instead of re-simulated.
        """
        if mode not in (H2_ONLY, H3_ENABLED):
            raise ValueError(f"unknown mode {mode!r}")
        walk_key = None
        if self.store is not None:
            walk_key = self._walk_key(pages, mode)
            document = self.store.get(walk_key)
            if document is not None:
                run = ConsecutiveRun.from_dict(document)
                run.source = "replay"
                if self.run_name is not None:
                    self.store.journal_visit(self.run_name, walk_key, "replay")
                return run
        check = None
        if self.strict:
            from repro.check import CheckContext

            check = CheckContext()
        probe = Probe(
            name=f"consecutive-{mode}",
            universe=self.universe,
            net_profile=self.net_profile,
            seed=self.seed,
            transport_config=self.transport_config,
            use_session_tickets=self.use_session_tickets,
            check=check,
        )
        if self.warm_edges_first:
            probe.warm_edges(pages)
        probe.clear_session_state()
        visits = [probe.visit_once(page, mode) for page in pages]
        run = ConsecutiveRun(mode=mode, visits=visits)
        if self.store is not None and walk_key is not None:
            self.store.put(
                walk_key,
                run.to_dict(),
                kind="consecutive",
                config_hash="",
                page_url=pages[0].url if pages else None,
                probe=f"consecutive-{mode}",
            )
            if self.run_name is not None:
                self.store.journal_visit(self.run_name, walk_key, "fresh")
        return run

    def run(
        self, pages: list[Webpage] | tuple[Webpage, ...], mode: str
    ) -> ConsecutiveRun:
        """Deprecated: use ``execute(ConsecutivePlan(...))`` instead."""
        warnings.warn(
            "ConsecutiveVisitRunner.run() is deprecated; use "
            "repro.measurement.executor.execute(ConsecutivePlan(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_mode(pages, mode)

    def run_both(self, pages) -> tuple[ConsecutiveRun, ConsecutiveRun]:
        """Deprecated: use ``execute(ConsecutivePlan(...))`` instead."""
        warnings.warn(
            "ConsecutiveVisitRunner.run_both() is deprecated; use "
            "repro.measurement.executor.execute(ConsecutivePlan(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_mode(pages, H2_ONLY), self._run_mode(pages, H3_ENABLED)
