"""Consecutive-visit measurement (paper Section VI-D).

Pages are visited in a fixed order.  Between pages, connections are
terminated and the HTTP cache is cleared — but the browser's TLS
session-ticket store survives, so a connection to a CDN hostname
already seen on an *earlier page* can resume (H3: 0-RTT; H2: TCP round
trip + TLS early data).  This is the mechanism behind the paper's
Fig. 8 and the Table III case study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.browser import H2_ONLY, H3_ENABLED, PageVisit
from repro.measurement.farm import ProbeNetProfile
from repro.measurement.probe import Probe
from repro.transport.config import TransportConfig
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


@dataclass
class ConsecutiveRun:
    """Per-page visits of one ordered walk under one protocol mode."""

    mode: str
    visits: list[PageVisit]

    def resumed_connections(self) -> list[int]:
        """Per page: entries served on ticket-resumed connections."""
        return [v.har.resumed_connection_count() for v in self.visits]


class ConsecutiveVisitRunner:
    """Walks an ordered page list with session state carried across pages."""

    def __init__(
        self,
        universe: WebUniverse,
        net_profile: ProbeNetProfile | None = None,
        seed: int = 0,
        transport_config: TransportConfig | None = None,
        use_session_tickets: bool = True,
        warm_edges_first: bool = True,
        strict: bool = False,
    ) -> None:
        self.universe = universe
        self.net_profile = net_profile
        self.seed = seed
        self.transport_config = transport_config
        self.use_session_tickets = use_session_tickets
        self.warm_edges_first = warm_edges_first
        self.strict = strict

    def run(self, pages: list[Webpage] | tuple[Webpage, ...], mode: str) -> ConsecutiveRun:
        """Visit ``pages`` in order under ``mode``; tickets persist.

        A fresh probe (fresh clock, caches and ticket store) is built
        per run so that H2 and H3 walks are independent, mirroring the
        paper's separate browser instances.
        """
        if mode not in (H2_ONLY, H3_ENABLED):
            raise ValueError(f"unknown mode {mode!r}")
        check = None
        if self.strict:
            from repro.check import CheckContext

            check = CheckContext()
        probe = Probe(
            name=f"consecutive-{mode}",
            universe=self.universe,
            net_profile=self.net_profile,
            seed=self.seed,
            transport_config=self.transport_config,
            use_session_tickets=self.use_session_tickets,
            check=check,
        )
        if self.warm_edges_first:
            probe.warm_edges(pages)
        probe.clear_session_state()
        visits = [probe.visit_once(page, mode) for page in pages]
        return ConsecutiveRun(mode=mode, visits=visits)

    def run_both(self, pages) -> tuple[ConsecutiveRun, ConsecutiveRun]:
        """Run the walk under H2 and under H3-enabled."""
        return self.run(pages, H2_ONLY), self.run(pages, H3_ENABLED)
