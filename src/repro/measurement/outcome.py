"""Typed visit outcomes: the worker→parent campaign boundary.

Before this module, the parallel campaign runner shipped bare
``(page_index, h2_dict, h3_dict)`` tuples across the process boundary
and reassembled them positionally.  :class:`VisitOutcome` replaces that
with one typed value carrying an explicit ok/degraded/failed status and
a single ``to_dict``/``from_dict`` pair — the only serialization code
the boundary has.

Status semantics:

``ok``
    Both modes measured cleanly.
``degraded``
    Both modes completed, but fault injection forced retries, H3→H2
    fallback, resets or individual fetch failures in at least one mode
    (the per-mode detail lives on each :class:`PageVisit`).
``failed``
    The visit raised out of the simulator entirely; ``error`` carries
    the reason and no visits are attached.  Only possible when a fault
    profile is active — fault-free runs propagate exceptions so real
    bugs stay loud.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.browser import PageVisit

#: Serialization format tag (bump on incompatible changes).
OUTCOME_FORMAT = "repro-h3cdn-outcome/1"

#: The closed set of outcome statuses.
STATUSES = ("ok", "degraded", "failed")


@dataclass(frozen=True)
class VisitFailure:
    """A visit that produced no measurement (campaign-level record)."""

    page_url: str
    probe_name: str
    error: str


@dataclass
class VisitOutcome:
    """One paired (H2, H3) page visit, as it crosses the process gap."""

    page_index: int
    status: str = "ok"
    h2: PageVisit | None = None
    h3: PageVisit | None = None
    error: str | None = None
    #: Provenance: ``"fresh"`` (just measured) or ``"replay"`` (served
    #: from a :class:`~repro.store.ResultStore`).  Never serialized —
    #: stored payloads stay bit-identical to fresh ones.
    source: str = "fresh"
    #: Event-loop callback profile (``config.profile_loop``); wall-clock
    #: only.  Carried across the process gap but stripped before store
    #: writes so stored documents stay host-independent.
    profile: dict | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {self.status!r}"
            )
        if self.status == "failed":
            if self.h2 is not None or self.h3 is not None:
                raise ValueError("a failed outcome carries no visits")
        elif self.h2 is None or self.h3 is None:
            raise ValueError(f"a {self.status!r} outcome needs both visits")

    @classmethod
    def from_visits(
        cls,
        page_index: int,
        h2: PageVisit,
        h3: PageVisit,
        profile: dict | None = None,
    ) -> "VisitOutcome":
        """Wrap two measured visits, deriving the paired status."""
        status = "ok"
        if h2.status != "ok" or h3.status != "ok":
            status = "degraded"
        return cls(
            page_index=page_index, status=status, h2=h2, h3=h3, profile=profile
        )

    @classmethod
    def from_error(cls, page_index: int, error: str) -> "VisitOutcome":
        return cls(page_index=page_index, status="failed", error=error)

    # -- the single serialization pair --------------------------------

    def to_dict(self) -> dict:
        """Picklable rendering (plain dicts all the way down)."""
        document = {
            "format": OUTCOME_FORMAT,
            "pageIndex": self.page_index,
            "status": self.status,
            "h2": self.h2.to_dict() if self.h2 is not None else None,
            "h3": self.h3.to_dict() if self.h3 is not None else None,
            "error": self.error,
        }
        if self.profile is not None:
            document["profile"] = self.profile
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "VisitOutcome":
        if document.get("format") != OUTCOME_FORMAT:
            raise ValueError(
                f"unrecognized outcome format: {document.get('format')!r}"
            )
        h2 = document.get("h2")
        h3 = document.get("h3")
        return cls(
            page_index=document["pageIndex"],
            status=document["status"],
            h2=PageVisit.from_dict(h2) if h2 is not None else None,
            h3=PageVisit.from_dict(h3) if h3 is not None else None,
            error=document.get("error"),
            profile=document.get("profile"),
        )
