"""The server farm: live servers + network paths, as one probe sees them.

A farm instantiates the universe's declarative :class:`~repro.web.hosts.
HostSpec` inventory into live edge/origin servers (fresh caches) and
builds one shared :class:`~repro.netsim.path.NetworkPath` per hostname.
Sharing the path between connections to the same host means concurrent
H2+H3 connections contend for the same bottleneck, as they would from a
real probe.

The probe's own network conditions — its distance scaling and any
``tc netem`` impairment (the Fig. 9 loss sweep) — are expressed as a
:class:`ProbeNetProfile` overlaid on each host's base RTT.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cdn.edge import EdgeServer
from repro.cdn.origin import OriginServer
from repro.events import EventLoop
from repro.netsim.netem import NetemProfile
from repro.netsim.path import NetworkPath
from repro.netsim.proxy import ProxyConfig, SegmentedPath
from repro.web.hosts import HostSpec
from repro.web.page import Webpage


@dataclass(frozen=True)
class ProbeNetProfile:
    """One probe's network conditions, overlaid on per-host base RTTs."""

    #: Multiplier on each host's base RTT (vantage-point distance).
    rtt_scale: float = 1.0
    #: Additive one-way delay (last-mile).
    extra_delay_ms: float = 0.0
    #: Loss imposed by ``tc netem`` (per direction).
    loss_rate: float = 0.0
    #: Bottleneck rate of the probe's access link.
    rate_mbps: float | None = 50.0
    #: Uniform jitter bound per direction.
    jitter_ms: float = 0.0
    #: Use bursty (Gilbert–Elliott) instead of i.i.d. loss.
    bursty_loss: bool = False

    def netem_for(self, host: HostSpec) -> NetemProfile:
        """The concrete path conditions to one host."""
        one_way = (host.base_rtt_ms / 2.0) * self.rtt_scale + self.extra_delay_ms
        return NetemProfile(
            delay_ms=one_way,
            jitter_ms=self.jitter_ms,
            loss_rate=self.loss_rate,
            rate_mbps=self.rate_mbps,
            bursty_loss=self.bursty_loss,
        )


class ServerFarm:
    """Lazy inventory of live servers and paths for one probe run."""

    def __init__(
        self,
        loop: EventLoop,
        hosts: dict[str, HostSpec],
        net_profile: ProbeNetProfile | None = None,
        rng: random.Random | None = None,
        proxy: ProxyConfig | None = None,
        hierarchy=None,
        compression=None,
    ) -> None:
        self.loop = loop
        self.specs = hosts
        self.net_profile = net_profile or ProbeNetProfile()
        self.rng = rng or random.Random(0)
        #: Optional proxy hop: every path becomes a two-segment chain
        #: (client→proxy access leg, proxy→edge shaped leg).
        self.proxy = proxy
        #: Optional cache hierarchy / compression configs handed to
        #: every instantiated edge (``None`` keeps legacy behaviour).
        self.hierarchy = hierarchy
        self.compression = compression
        #: Proxy-side response cache, shared by both protocol modes
        #: (like edge caches, it belongs to the farm and persists across
        #: the probe's visits).  Only a TCP-terminating CONNECT tunnel
        #: can cache; a MASQUE relay forwards opaque end-to-end QUIC.
        self.proxy_cache = None
        if (
            proxy is not None
            and proxy.model == "connect-tunnel"
            and getattr(proxy, "cache_mb", 0.0) > 0
        ):
            from repro.cdn.hierarchy import LruCache

            self.proxy_cache = LruCache(int(proxy.cache_mb * 1024 * 1024))
        self._servers: dict[str, EdgeServer | OriginServer] = {}
        self._paths: dict[str, NetworkPath | SegmentedPath] = {}

    def server(self, hostname: str) -> EdgeServer | OriginServer:
        """The live server for ``hostname`` (instantiated on first use)."""
        if hostname not in self._servers:
            self._servers[hostname] = self.specs[hostname].instantiate(
                hierarchy=self.hierarchy, compression=self.compression
            )
        return self._servers[hostname]

    def path(self, hostname: str) -> NetworkPath | SegmentedPath:
        """The shared probe↔host network path.

        Exactly one RNG draw happens per host regardless of topology,
        so switching a proxy on or off never perturbs the seed stream
        of later hosts.
        """
        if hostname not in self._paths:
            spec = self.specs[hostname]
            path_rng = random.Random(self.rng.getrandbits(64))
            if self.proxy is not None:
                # The campaign's netem shaping (vantage distance, loss
                # sweep) rides the proxy→edge leg — that is where the
                # testbed impairment sits; the access leg to a nearby
                # proxy comes from the proxy config.
                self._paths[hostname] = SegmentedPath(
                    self.loop,
                    (self.proxy.client_profile, self.net_profile.netem_for(spec)),
                    rng=path_rng,
                    name=hostname,
                    forward_delay_ms=self.proxy.forward_delay_ms,
                    proxy_model=self.proxy.model,
                )
            else:
                self._paths[hostname] = NetworkPath(
                    self.loop,
                    self.net_profile.netem_for(spec),
                    rng=path_rng,
                    name=hostname,
                )
        return self._paths[hostname]

    def warm_caches(self, pages: tuple[Webpage, ...] | list[Webpage]) -> None:
        """Pre-seed edge caches with the popular objects of ``pages``.

        This models the paper's observation that its target pages are
        popular enough to live at the edges long-term; the double-visit
        protocol then makes even the unpopular tail warm.
        """
        for page in pages:
            for resource in page.cdn_resources:
                if not resource.popular:
                    continue
                server = self.server(resource.host)
                if isinstance(server, EdgeServer):
                    server.warm(
                        resource.url, resource.size_bytes, rtype=resource.rtype.value
                    )

    def clear_caches(self) -> None:
        """Drop every edge cache (fresh-cache experiment variants)."""
        for hostname, server in self._servers.items():
            if isinstance(server, EdgeServer):
                spec = self.specs[hostname]
                self._servers[hostname] = spec.instantiate(
                    hierarchy=self.hierarchy, compression=self.compression
                )

    def total_bytes_transferred(self) -> int:
        """Across all paths, both directions (ethics accounting)."""
        return sum(path.total_bytes_transferred() for path in self._paths.values())

    def __repr__(self) -> str:
        return (
            f"<ServerFarm hosts={len(self.specs)} live={len(self._servers)} "
            f"profile={self.net_profile}>"
        )
