"""Parallel campaign execution: sharding paired visits across processes.

The paper's protocol is embarrassingly parallel: every ``(vantage,
probe, page)`` paired visit is an isolated simulation with its own
:class:`~repro.events.loop.EventLoop` and RNG stream.  This module
exploits that:

* **Work units** are ``(campaign, vantage, probe, page-chunk)`` tuples.
  A worker process replays each page's paired visit (H2 then H3,
  ``visits_per_page`` times each, edge caches warmed per page) in a
  fresh single-page simulation.
* **Seeding** is derived per ``(campaign seed, vantage, probe, page)``
  with a stable hash — not Python's process-randomized ``hash()`` — so
  any worker count, chunking, or scheduling order reproduces the
  ``workers=1`` run bit-for-bit.
* **The process boundary** carries typed
  :class:`~repro.measurement.outcome.VisitOutcome` values rendered to
  compact dicts via their single ``to_dict``/``from_dict`` pair, never
  live simulation object graphs.
* **Multiple campaigns** (e.g. every loss rate × repetition of the
  Fig. 9 sweep) can share one pool: :func:`run_campaigns` takes a dict
  of configs and every paired visit of every config becomes one more
  independent shard.

``workers <= 1`` falls back to an in-process loop over the same work
units — no pool, no serialization round trip, identical results.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Hashable, Iterable, Sequence

from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.check.context import InvariantViolation
from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    PairedVisit,
)
from repro.measurement.outcome import VisitFailure, VisitOutcome
from repro.measurement.probe import Probe
from repro.measurement.vantage import VantagePoint, default_vantage_points
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


def derive_seed(
    base_seed: int, vp_index: int, probe_index: int, page_index: int
) -> int:
    """Stable per-visit seed for ``(campaign, vantage, probe, page)``.

    Uses BLAKE2b (not ``hash()``, which is randomized per process) so
    every process — and every future session — derives the same stream.
    """
    key = f"{base_seed}:{vp_index}:{probe_index}:{page_index}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def measure_paired_visit(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> PairedVisit:
    """Measure one page from one probe in a fresh, isolated simulation.

    This is *the* unit of campaign work — the serial fallback and the
    worker processes both call it, which is what makes parallel runs
    reproduce serial ones exactly: nothing (event-loop clock, RNG
    position, cache state) leaks between pages.  When the config asks
    for counters or traces, a per-visit-scoped ``ObsContext`` rides
    along; its payloads cross the process gap inside the visit dicts.
    """
    obs = None
    if (
        config.collect_counters
        or config.trace
        or config.spans
        or config.profile_loop
        or config.metrics_interval_ms is not None
    ):
        from repro.obs import ObsContext

        obs = ObsContext(
            trace=config.trace,
            profile_loop=config.profile_loop,
            # Counters keep their historical trigger (counters or trace);
            # metrics/spans/profile-only runs leave visit.counters None
            # so existing payload shapes are untouched.
            counters=config.collect_counters or config.trace,
            metrics_interval_ms=config.metrics_interval_ms,
            metrics_max_samples=config.metrics_max_samples,
            spans=config.spans,
        )
    check = None
    if config.strict:
        from repro.check import CheckContext

        check = CheckContext()
    probe = Probe(
        name=f"{vantage.name}-{probe_index}",
        universe=universe,
        net_profile=vantage.net_profile(
            loss_rate=config.loss_rate, rate_mbps=config.rate_mbps
        ),
        seed=derive_seed(config.seed, vp_index, probe_index, page_index),
        transport_config=config.transport_config,
        use_session_tickets=config.use_session_tickets,
        obs=obs,
        fault_profile=config.fault_profile,
        check=check,
    )
    if config.warm_popular:
        probe.warm_edges((page,))
    h2 = probe.measure_page(page, H2_ONLY, visits=config.visits_per_page)
    h3 = probe.measure_page(page, H3_ENABLED, visits=config.visits_per_page)
    loop_profile = probe.loop.profile_stats() if config.profile_loop else None
    return PairedVisit(
        page=page, probe_name=probe.name, h2=h2, h3=h3,
        loop_profile=loop_profile,
    )


def measure_visit_outcome(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> VisitOutcome:
    """Measure one paired visit and wrap it as a :class:`VisitOutcome`.

    Graceful degradation lives here: with a fault profile active, a
    visit that raises out of the simulator becomes a ``failed`` outcome
    (recorded campaign-side as a :class:`VisitFailure`) instead of
    poisoning the whole run.  Fault-free runs deliberately get *no*
    exception handling — a crash there is a bug and must stay loud.
    """
    if config.fault_profile is None:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
        return VisitOutcome.from_visits(
            page_index, paired.h2, paired.h3, profile=paired.loop_profile
        )
    try:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
    except InvariantViolation:
        # A failed invariant is a simulator bug, not a simulated fault:
        # it must stay loud even under graceful degradation.
        raise
    except Exception as exc:  # noqa: BLE001 — degrade, don't poison the run
        return VisitOutcome.from_error(
            page_index, f"{type(exc).__name__}: {exc}"
        )
    return VisitOutcome.from_visits(
        page_index, paired.h2, paired.h3, profile=paired.loop_profile
    )


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

#: Per-worker context installed by the pool initializer.  Module-level so
#: it survives both ``fork`` (inherited) and ``spawn`` (re-initialized in
#: the fresh interpreter) start methods.
_WORKER_CTX: dict = {}

#: A work unit: ``(config key, vp_index, probe_index, page indices)``.
_WorkUnit = tuple[Hashable, int, int, tuple[int, ...]]


def _init_worker(
    universe: WebUniverse,
    vantage_points: tuple[VantagePoint, ...],
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...],
) -> None:
    _WORKER_CTX["universe"] = universe
    _WORKER_CTX["vantage_points"] = vantage_points
    _WORKER_CTX["configs"] = configs
    _WORKER_CTX["pages"] = pages


def _run_unit(unit: _WorkUnit) -> list[dict]:
    """Replay one work unit; outcomes cross the process gap as dicts."""
    key, vp_index, probe_index, page_indices = unit
    universe = _WORKER_CTX["universe"]
    vantage = _WORKER_CTX["vantage_points"][vp_index]
    config = _WORKER_CTX["configs"][key]
    pages = _WORKER_CTX["pages"]
    return [
        measure_visit_outcome(
            universe, vantage, vp_index, probe_index, config,
            pages[page_index], page_index,
        ).to_dict()
        for page_index in page_indices
    ]


def _chunked(indices: Sequence[int], chunk_size: int) -> Iterable[tuple[int, ...]]:
    for start in range(0, len(indices), chunk_size):
        yield tuple(indices[start : start + chunk_size])


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def _format_run_key(key: Hashable) -> str:
    """A stable, readable run-name suffix for one config key."""
    if isinstance(key, tuple):
        return "-".join(str(part) for part in key)
    return str(key)


def _run_name_for(run_prefix: str | None, key: Hashable, multi: bool) -> str | None:
    if run_prefix is None:
        return None
    return f"{run_prefix}/{_format_run_key(key)}" if multi else run_prefix


def run_campaigns(
    universe: WebUniverse,
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...] | None = None,
    vantage_points: tuple[VantagePoint, ...] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    start_method: str | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> dict[Hashable, CampaignResult]:
    """Run one or more campaigns over shared worker processes.

    Every ``(config, vantage, probe, page-chunk)`` becomes an
    independent shard; results come back keyed like ``configs``, with
    each campaign's paired visits in the canonical serial order
    (vantage-major, then probe, then page).  With ``workers <= 1`` the
    same units run in-process, in the same order, with the same derived
    seeds — so worker count never changes a single result.

    With a :class:`~repro.store.ResultStore` attached, every slot is
    first looked up by its content-addressed key; only misses become
    work units, and each fresh outcome is written (and journaled) as
    soon as it crosses back from its worker — per visit when serial,
    per chunk when pooled — so an interrupted campaign resumes from its
    last durable visit.  ``run_prefix`` names the runs (one per config;
    multi-config dicts get ``prefix/<key>``); ``resume`` keeps a prior
    interrupted journal under the same name alive so recovered visits
    are counted as resumed.  Replayed results are bit-identical to
    fresh execution, and ``store=None`` leaves behavior exactly as
    before.
    """
    target_pages = tuple(pages if pages is not None else universe.pages)
    all_vps = tuple(
        vantage_points if vantage_points is not None else default_vantage_points()
    )

    if store is not None:
        from repro.store.keys import (
            campaign_config_hash,
            page_part,
            paired_visit_key,
            visit_config_part,
        )
        from repro.store.store import StoreStats

        # Page key material is config-independent; hash each page once.
        page_materials: dict[int, dict] = {}

        def material_for(page_index: int) -> dict:
            material = page_materials.get(page_index)
            if material is None:
                material = page_materials[page_index] = page_part(
                    target_pages[page_index], universe.hosts
                )
            return material

    # Deterministic slot list per config (vantage-major, then probe,
    # then page) — the canonical order results are assembled in.
    _Slot = tuple[int, int, int]
    slots_by_key: dict[Hashable, list[_Slot]] = {}
    outcome_by_slot: dict[tuple, VisitOutcome] = {}
    slot_store_key: dict[tuple, str] = {}
    stats_by_key: dict[Hashable, "StoreStats"] = {}
    run_name_by_key: dict[Hashable, str | None] = {}
    config_hash_by_key: dict[Hashable, str] = {}
    units: list[_WorkUnit] = []

    for key, config in configs.items():
        vps = all_vps
        if config.max_vantage_points is not None:
            vps = vps[: config.max_vantage_points]
        slots: list[_Slot] = [
            (vp_index, probe_index, page_index)
            for vp_index in range(len(vps))
            for probe_index in range(config.probes_per_vantage)
            for page_index in range(len(target_pages))
        ]
        slots_by_key[key] = slots
        per_chunk = chunk_size if chunk_size is not None else _default_chunk_size(
            len(target_pages), workers
        )

        pending: dict[tuple[int, int], list[int]] = {}
        if store is None:
            for vp_index, probe_index, page_index in slots:
                pending.setdefault((vp_index, probe_index), []).append(page_index)
        else:
            config_part = visit_config_part(config)
            config_hash_by_key[key] = campaign_config_hash(config)
            run_name = _run_name_for(run_prefix, key, multi=len(configs) > 1)
            run_name_by_key[key] = run_name
            prior: set[str] = set()
            if run_name is not None:
                prior = store.begin_run(
                    run_name, config_hash=config_hash_by_key[key], resume=resume
                )
            stats = stats_by_key[key] = StoreStats()
            for vp_index, probe_index, page_index in slots:
                visit_key = paired_visit_key(
                    config_part,
                    material_for(page_index),
                    all_vps[vp_index],
                    probe_index,
                    derive_seed(config.seed, vp_index, probe_index, page_index),
                )
                slot = (key, vp_index, probe_index, page_index)
                slot_store_key[slot] = visit_key
                document = store.get(visit_key)
                if document is not None:
                    outcome = VisitOutcome.from_dict(document)
                    outcome.source = "replay"
                    outcome_by_slot[slot] = outcome
                    stats.hits += 1
                    if visit_key in prior:
                        stats.resumed += 1
                        store.stats.resumed += 1
                else:
                    stats.misses += 1
                    pending.setdefault((vp_index, probe_index), []).append(page_index)
        for (vp_index, probe_index), page_indices in pending.items():
            for chunk in _chunked(page_indices, per_chunk):
                units.append((key, vp_index, probe_index, chunk))

    # Live progress (config.progress on any campaign): wall-clock only,
    # observes finished outcomes, never touches a running simulation.
    progress = None
    if any(config.progress for config in configs.values()):
        from repro.obs.progress import ProgressReporter

        progress = ProgressReporter(
            total=sum(len(slots) for slots in slots_by_key.values()),
            workers=max(1, workers),
        )
        if outcome_by_slot:
            progress.add_replayed(len(outcome_by_slot))

    def consume(unit: _WorkUnit, outcomes: list[VisitOutcome]) -> None:
        """Record one unit's fresh outcomes; write-through when stored."""
        key, vp_index, probe_index, page_indices = unit
        for page_index, outcome in zip(page_indices, outcomes):
            slot = (key, vp_index, probe_index, page_index)
            outcome_by_slot[slot] = outcome
            if progress is not None:
                progress.add_outcome(outcome)
            if store is not None:
                visit_key = slot_store_key[slot]
                document = outcome.to_dict()
                # The loop profile is wall-clock noise: strip it so
                # stored documents stay host-independent and replayed
                # payloads stay bit-identical to profile-off runs.
                document.pop("profile", None)
                wrote = store.put(
                    visit_key,
                    document,
                    kind="paired",
                    config_hash=config_hash_by_key[key],
                    page_url=target_pages[page_index].url,
                    probe=f"{all_vps[vp_index].name}-{probe_index}",
                )
                if wrote:
                    stats_by_key[key].writes += 1
                run_name = run_name_by_key[key]
                if run_name is not None:
                    store.journal_visit(run_name, visit_key, source="fresh")

    if workers <= 1:
        # In-process, one visit at a time: with a store attached this is
        # what gives the write-ahead journal per-visit granularity.
        for unit in units:
            key, vp_index, probe_index, page_indices = unit
            config = configs[key]
            for page_index in page_indices:
                outcome = measure_visit_outcome(
                    universe, all_vps[vp_index], vp_index, probe_index,
                    config, target_pages[page_index], page_index,
                )
                consume((key, vp_index, probe_index, (page_index,)), [outcome])
    else:
        ctx = multiprocessing.get_context(start_method)
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(universe, all_vps, configs, target_pages),
        ) as pool:
            # imap (not map): chunk results stream back in input order,
            # so store writes and journal entries land as work finishes
            # instead of all at once at the end.
            for unit, chunk_result in zip(units, pool.imap(_run_unit, units)):
                consume(
                    unit,
                    [VisitOutcome.from_dict(doc) for doc in chunk_result],
                )

    progress_summary = progress.finish() if progress is not None else None

    # Reassemble per campaign by walking the canonical slot order —
    # identical whether an outcome was replayed or freshly measured.
    results: dict[Hashable, CampaignResult] = {}
    for key, config in configs.items():
        paired: list[PairedVisit] = []
        failures: list[VisitFailure] = []
        for vp_index, probe_index, page_index in slots_by_key[key]:
            outcome = outcome_by_slot[(key, vp_index, probe_index, page_index)]
            probe_name = f"{all_vps[vp_index].name}-{probe_index}"
            if outcome.status == "failed":
                failures.append(
                    VisitFailure(
                        page_url=target_pages[outcome.page_index].url,
                        probe_name=probe_name,
                        error=outcome.error or "unknown",
                    )
                )
                continue
            paired.append(
                PairedVisit(
                    page=target_pages[outcome.page_index],
                    probe_name=probe_name,
                    h2=outcome.h2,
                    h3=outcome.h3,
                    loop_profile=outcome.profile,
                )
            )
        result = CampaignResult(universe, config, paired, failures=failures)
        if config.profile_loop:
            result.loop_profile = _merge_profiles(
                pv.loop_profile for pv in paired
            )
        if config.progress:
            result.progress = progress_summary
        if store is not None:
            result.store_stats = stats_by_key[key]
            run_name = run_name_by_key[key]
            if run_name is not None:
                store.finish_run(
                    run_name,
                    [
                        slot_store_key[(key, vp_index, probe_index, page_index)]
                        for vp_index, probe_index, page_index in slots_by_key[key]
                    ],
                )
        results[key] = result
    return results


def _merge_profiles(profiles) -> dict:
    """Merge per-visit loop profiles into campaign totals.

    Profiles are merged in canonical visit order and rendered sorted by
    cumulative time, so the *structure* is deterministic for any worker
    count even though the wall-clock values themselves are not.
    Replayed visits carry no profile (stripped before store writes) and
    contribute nothing.
    """
    merged: dict[str, list] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, entry in profile.items():
            slot = merged.get(name)
            if slot is None:
                merged[name] = [entry["count"], entry["total_ms"]]
            else:
                slot[0] += entry["count"]
                slot[1] += entry["total_ms"]
    return {
        name: {"count": count, "total_ms": total_ms}
        for name, (count, total_ms) in sorted(
            merged.items(), key=lambda item: -item[1][1]
        )
    }


def _default_chunk_size(n_pages: int, workers: int) -> int:
    """A few chunks per worker balances load against pool overhead."""
    if workers <= 1:
        return max(1, n_pages)
    return max(1, -(-n_pages // (workers * 4)))


class ParallelCampaign:
    """A :class:`~repro.measurement.campaign.Campaign` with a worker pool.

    Thin convenience wrapper over :func:`run_campaigns` for the common
    one-config case::

        result = ParallelCampaign(universe, config, workers=4).run()
    """

    def __init__(
        self,
        universe: WebUniverse,
        config: CampaignConfig | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.universe = universe
        self.config = config or CampaignConfig()
        self.vantage_points = (
            vantage_points if vantage_points is not None else default_vantage_points()
        )
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method

    def run(self, pages: tuple[Webpage, ...] | None = None) -> CampaignResult:
        results = run_campaigns(
            self.universe,
            {"campaign": self.config},
            pages=pages,
            vantage_points=self.vantage_points,
            workers=self.workers,
            chunk_size=self.chunk_size,
            start_method=self.start_method,
        )
        return results["campaign"]
