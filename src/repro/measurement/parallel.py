"""Parallel campaign execution: sharding paired visits across processes.

The paper's protocol is embarrassingly parallel: every ``(vantage,
probe, page)`` paired visit is an isolated simulation with its own
:class:`~repro.events.loop.EventLoop` and RNG stream.  This module
exploits that:

* **Work units** are ``(campaign, vantage, probe, page-chunk)`` tuples.
  A worker process replays each page's paired visit (H2 then H3,
  ``visits_per_page`` times each, edge caches warmed per page) in a
  fresh single-page simulation.
* **Seeding** is derived per ``(campaign seed, vantage, probe, page)``
  with a stable hash — not Python's process-randomized ``hash()`` — so
  any worker count, chunking, or scheduling order reproduces the
  ``workers=1`` run bit-for-bit.
* **The process boundary** carries typed
  :class:`~repro.measurement.outcome.VisitOutcome` values rendered to
  compact dicts via their single ``to_dict``/``from_dict`` pair, never
  live simulation object graphs.
* **Multiple campaigns** (e.g. every loss rate × repetition of the
  Fig. 9 sweep) can share one pool: :func:`run_campaigns` takes a dict
  of configs and every paired visit of every config becomes one more
  independent shard.

``workers <= 1`` falls back to an in-process loop over the same work
units — no pool, no serialization round trip, identical results.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Hashable, Iterable, Sequence

from repro.browser.browser import H2_ONLY, H3_ENABLED
from repro.check.context import InvariantViolation
from repro.measurement.campaign import (
    CampaignConfig,
    CampaignResult,
    PairedVisit,
)
from repro.measurement.outcome import VisitFailure, VisitOutcome
from repro.measurement.probe import Probe
from repro.measurement.vantage import VantagePoint, default_vantage_points
from repro.web.page import Webpage
from repro.web.topsites import WebUniverse


def derive_seed(
    base_seed: int, vp_index: int, probe_index: int, page_index: int
) -> int:
    """Stable per-visit seed for ``(campaign, vantage, probe, page)``.

    Uses BLAKE2b (not ``hash()``, which is randomized per process) so
    every process — and every future session — derives the same stream.
    """
    key = f"{base_seed}:{vp_index}:{probe_index}:{page_index}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def measure_paired_visit(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> PairedVisit:
    """Measure one page from one probe in a fresh, isolated simulation.

    This is *the* unit of campaign work — the serial fallback and the
    worker processes both call it, which is what makes parallel runs
    reproduce serial ones exactly: nothing (event-loop clock, RNG
    position, cache state) leaks between pages.  When the config asks
    for counters or traces, a per-visit-scoped ``ObsContext`` rides
    along; its payloads cross the process gap inside the visit dicts.
    """
    obs = None
    if (
        config.collect_counters
        or config.trace
        or config.spans
        or config.profile_loop
        or config.metrics_interval_ms is not None
    ):
        from repro.obs import ObsContext

        obs = ObsContext(
            trace=config.trace,
            profile_loop=config.profile_loop,
            # Counters keep their historical trigger (counters or trace);
            # metrics/spans/profile-only runs leave visit.counters None
            # so existing payload shapes are untouched.
            counters=config.collect_counters or config.trace,
            metrics_interval_ms=config.metrics_interval_ms,
            metrics_max_samples=config.metrics_max_samples,
            spans=config.spans,
        )
    check = None
    if config.strict:
        from repro.check import CheckContext

        check = CheckContext()
    probe = Probe(
        name=f"{vantage.name}-{probe_index}",
        universe=universe,
        net_profile=vantage.net_profile(
            loss_rate=config.loss_rate, rate_mbps=config.rate_mbps
        ),
        seed=derive_seed(config.seed, vp_index, probe_index, page_index),
        transport_config=config.transport_config,
        use_session_tickets=config.use_session_tickets,
        obs=obs,
        fault_profile=config.fault_profile,
        check=check,
        proxy=config.proxy,
        cache_hierarchy=config.cache_hierarchy,
        compression=config.compression,
    )
    if config.warm_popular:
        probe.warm_edges((page,))
    h2 = probe.measure_page(page, H2_ONLY, visits=config.visits_per_page)
    h3 = probe.measure_page(page, H3_ENABLED, visits=config.visits_per_page)
    loop_profile = probe.loop.profile_stats() if config.profile_loop else None
    return PairedVisit(
        page=page, probe_name=probe.name, h2=h2, h3=h3,
        loop_profile=loop_profile,
    )


def measure_visit_outcome(
    universe: WebUniverse,
    vantage: VantagePoint,
    vp_index: int,
    probe_index: int,
    config: CampaignConfig,
    page: Webpage,
    page_index: int,
) -> VisitOutcome:
    """Measure one paired visit and wrap it as a :class:`VisitOutcome`.

    Graceful degradation lives here: with a fault profile active, a
    visit that raises out of the simulator becomes a ``failed`` outcome
    (recorded campaign-side as a :class:`VisitFailure`) instead of
    poisoning the whole run.  Fault-free runs deliberately get *no*
    exception handling — a crash there is a bug and must stay loud.
    """
    if config.fault_profile is None:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
        return VisitOutcome.from_visits(
            page_index, paired.h2, paired.h3, profile=paired.loop_profile
        )
    try:
        paired = measure_paired_visit(
            universe, vantage, vp_index, probe_index, config, page, page_index
        )
    except InvariantViolation:
        # A failed invariant is a simulator bug, not a simulated fault:
        # it must stay loud even under graceful degradation.
        raise
    except Exception as exc:  # noqa: BLE001 — degrade, don't poison the run
        return VisitOutcome.from_error(
            page_index, f"{type(exc).__name__}: {exc}"
        )
    return VisitOutcome.from_visits(
        page_index, paired.h2, paired.h3, profile=paired.loop_profile
    )


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

#: Per-worker context installed by the pool initializer.  Module-level so
#: it survives both ``fork`` (inherited) and ``spawn`` (re-initialized in
#: the fresh interpreter) start methods.
_WORKER_CTX: dict = {}

#: A work unit: ``(config key, vp_index, probe_index, page indices)``.
_WorkUnit = tuple[Hashable, int, int, tuple[int, ...]]


def _init_worker(
    universe: WebUniverse,
    vantage_points: tuple[VantagePoint, ...],
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...],
) -> None:
    _WORKER_CTX["universe"] = universe
    _WORKER_CTX["vantage_points"] = vantage_points
    _WORKER_CTX["configs"] = configs
    _WORKER_CTX["pages"] = pages


def _run_unit(unit: _WorkUnit) -> list[dict]:
    """Replay one work unit; outcomes cross the process gap as dicts."""
    key, vp_index, probe_index, page_indices = unit
    universe = _WORKER_CTX["universe"]
    vantage = _WORKER_CTX["vantage_points"][vp_index]
    config = _WORKER_CTX["configs"][key]
    pages = _WORKER_CTX["pages"]
    return [
        measure_visit_outcome(
            universe, vantage, vp_index, probe_index, config,
            pages[page_index], page_index,
        ).to_dict()
        for page_index in page_indices
    ]


def _chunked(indices: Sequence[int], chunk_size: int) -> Iterable[tuple[int, ...]]:
    for start in range(0, len(indices), chunk_size):
        yield tuple(indices[start : start + chunk_size])


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def _format_run_key(key: Hashable) -> str:
    """A stable, readable run-name suffix for one config key."""
    if isinstance(key, tuple):
        return "-".join(str(part) for part in key)
    return str(key)


def _run_name_for(run_prefix: str | None, key: Hashable, multi: bool) -> str | None:
    if run_prefix is None:
        return None
    return f"{run_prefix}/{_format_run_key(key)}" if multi else run_prefix


def run_campaigns(
    universe: WebUniverse,
    configs: dict[Hashable, CampaignConfig],
    pages: tuple[Webpage, ...] | None = None,
    vantage_points: tuple[VantagePoint, ...] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    start_method: str | None = None,
    store=None,
    run_prefix: str | None = None,
    resume: bool = False,
) -> dict[Hashable, CampaignResult]:
    """Run one or more campaigns over shared worker processes.

    Every ``(config, vantage, probe, page-chunk)`` becomes an
    independent shard; results come back keyed like ``configs``, with
    each campaign's paired visits in the canonical serial order
    (vantage-major, then probe, then page).  With ``workers <= 1`` the
    same units run in-process, in the same order, with the same derived
    seeds — so worker count never changes a single result.

    With a :class:`~repro.store.ResultStore` attached, every slot is
    first looked up by its content-addressed key; only misses become
    work units, and each fresh outcome is written (and journaled) as
    soon as it crosses back from its worker — per visit when serial,
    per batch when pooled — so an interrupted campaign resumes from its
    last durable visit.  ``run_prefix`` names the runs (one per config;
    multi-config dicts get ``prefix/<key>``); ``resume`` keeps a prior
    interrupted journal under the same name alive so recovered visits
    are counted as resumed.  Replayed results are bit-identical to
    fresh execution, and ``store=None`` leaves behavior exactly as
    before.

    .. deprecated::
        This delegates to the streaming executor; prefer
        ``execute(MultiCampaignPlan(...))`` from
        :mod:`repro.measurement.executor`.
    """
    import warnings

    from repro.measurement.executor import MultiCampaignPlan, execute

    warnings.warn(
        "run_campaigns() is deprecated; use "
        "execute(MultiCampaignPlan(...)) from repro.measurement.executor",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute(
        MultiCampaignPlan(
            universe=universe,
            configs=configs,
            pages=tuple(pages) if pages is not None else None,
            vantage_points=vantage_points,
            workers=workers,
            chunk_size=chunk_size,
            start_method=start_method,
            store=store,
            run_prefix=run_prefix,
            resume=resume,
        )
    )


def _merge_profiles(profiles) -> dict:
    """Merge per-visit loop profiles into campaign totals.

    Profiles are merged in canonical visit order and rendered sorted by
    cumulative time, so the *structure* is deterministic for any worker
    count even though the wall-clock values themselves are not.
    Replayed visits carry no profile (stripped before store writes) and
    contribute nothing.
    """
    merged: dict[str, list] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, entry in profile.items():
            slot = merged.get(name)
            if slot is None:
                merged[name] = [entry["count"], entry["total_ms"]]
            else:
                slot[0] += entry["count"]
                slot[1] += entry["total_ms"]
    return {
        name: {"count": count, "total_ms": total_ms}
        for name, (count, total_ms) in sorted(
            merged.items(), key=lambda item: -item[1][1]
        )
    }


def _default_chunk_size(n_pages: int, workers: int) -> int:
    """A few chunks per worker balances load against pool overhead."""
    if workers <= 1:
        return max(1, n_pages)
    return max(1, -(-n_pages // (workers * 4)))


class ParallelCampaign:
    """A :class:`~repro.measurement.campaign.Campaign` with a worker pool.

    Thin convenience wrapper over :func:`run_campaigns` for the common
    one-config case::

        result = ParallelCampaign(universe, config, workers=4).run()
    """

    def __init__(
        self,
        universe: WebUniverse,
        config: CampaignConfig | None = None,
        vantage_points: tuple[VantagePoint, ...] | None = None,
        workers: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.universe = universe
        self.config = config or CampaignConfig()
        self.vantage_points = (
            vantage_points if vantage_points is not None else default_vantage_points()
        )
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method

    def run(self, pages: tuple[Webpage, ...] | None = None) -> CampaignResult:
        import warnings

        from repro.measurement.executor import CampaignPlan, execute

        warnings.warn(
            "ParallelCampaign is deprecated; use "
            "execute(CampaignPlan(...)) from repro.measurement.executor",
            DeprecationWarning,
            stacklevel=2,
        )
        return execute(
            CampaignPlan(
                universe=self.universe,
                sim=self.config,
                pages=pages,
                vantage_points=self.vantage_points,
                workers=self.workers,
                chunk_size=self.chunk_size,
                start_method=self.start_method,
            )
        )
